"""Benchmark: regenerate MG1 (compression-aware merging ablation)."""

from conftest import run_and_print

from repro.experiments import mg1_merging_ablation


def test_mg1_merging_ablation(benchmark, bench_scale):
    result = run_and_print(
        benchmark, mg1_merging_ablation.run, scale=bench_scale
    )
    aware = result.column("cf-aware-merge")
    plain = result.column("plain-merge")
    # The reshaped candidates only *add* options the optimizer can
    # decline, so compression-aware merging never loses materially.
    assert all(a >= p - 0.5 for a, p in zip(aware, plain))
