"""Benchmark: regenerate VL1 (ground-truth recommendation validation)."""

from conftest import run_and_print

from repro.experiments import vl1_validation


def test_vl1_validation(benchmark, bench_scale):
    result = run_and_print(benchmark, vl1_validation.run, scale=bench_scale)
    true_impr = result.column("true-impr%")
    est_impr = result.column("est-impr%")
    budget_ok = result.column("budget-ok")
    # Recommendations must survive deployment: positive improvement with
    # physically built structures, budget respected, estimates close.
    assert all(t > 0 for t in true_impr)
    assert all(ok == "True" for ok in budget_ok)
    assert all(abs(t - e) < 20.0 for t, e in zip(true_impr, est_impr))
