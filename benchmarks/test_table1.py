"""Benchmark: regenerate Table 1 (MV row-count estimation errors)."""

from conftest import run_and_print

from repro.experiments import table1_mv_rowcount


def test_table1_mv_rowcount(benchmark, bench_scale):
    result = run_and_print(benchmark, table1_mv_rowcount.run,
                           scale=bench_scale)
    errors = dict(zip(result.column("Estimator"), result.column("AvgError%")))
    # Paper shape: AE << Optimizer << Multiply.
    assert errors["AE"] < errors["Optimizer"] < errors["Multiply"]
