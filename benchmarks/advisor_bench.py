#!/usr/bin/env python
"""Advisor benchmark runner: emits ``BENCH_advisor.json``.

Measures the parallel candidate-evaluation engine against the
sequential path and tracks the numbers across PRs:

* **advisor** — one full DTAc tuning session on the Sales workload,
  ``workers=1`` vs ``--workers N``, asserting byte-identical
  recommendations and recording wall time + candidates/sec.
* **algorithms** — every registered selection algorithm (greedy
  backtracking, IBM-style knapsack, drop-based relaxation, anytime
  greedy) on the same session: improvement %, wall time, budget
  compliance, the undominated quality-vs-wall frontier, and an
  identity check that the default algorithm through the registry
  reproduces the advisor section's run bit-for-bit;
  ``compare_bench.py`` gates the default's recommendation against the
  baseline and every algorithm's budget compliance.
* **incremental** — the same session with delta-aware workload costing
  off (full recost of every candidate configuration) vs on
  (statement-level memoization + access-path probes + plan patching +
  bound pruning), asserting byte-identical recommendations and
  recording the speedup; the acceptance bar is >=3x candidates/sec
  over the full-recost path, gated by ``compare_bench.py``.
* **drift** — continuous tuning under workload drift: a session
  cold-tunes drift phase 0, the workload shifts to phase 2 (disjoint
  hot set), and the incremental retune from the previous configuration
  races a cold tune of the shifted workload; ``compare_bench.py``
  gates retune wall <= 0.5x cold at <= 1.05x the cold tune's final
  cost with at least one structure provably dropped.
* **cache** — the same session cold vs warm through the persistent
  :class:`EstimationCache`, recording the warm hit rate.
* **sweep** — a 3-budget x 2-seed sweep through the sweep orchestration
  API: run-level sharding (workers=1 vs N) checked byte-identical
  against a sequential per-run ``tune()`` loop, then cold vs warm
  through the persistent what-if :class:`CostCache` with the warm
  cost-cache hit rate recorded.
* **fig9** — the paper's Figure 9 SampleCF error sweep (TPC-H index
  population x sampling fractions), the estimation-bound workload where
  the fan-out pays off most, sequential vs parallel with an
  element-wise identity check on the error table.
* **service** — the job-based serving layer: two-context overlap
  (concurrent jobs on two scheduler lanes vs the same jobs truly
  serialized; on hosts with >=4 cores ``compare_bench.py`` gates the
  concurrent arm not-slower, below that the ratio is recorded for the
  trend series only — oversubscribed lanes honestly lose) and warm
  session affinity (two same-context tunes through one lane: the
  second must be granted warm reuse of the dormant engine pool,
  ``warm_runs >= 1`` and ``pools_reused >= 1``, gated) — with every
  job result checked byte-identical to a direct sequential ``tune()``.

Everything under ``"results"``-style keys (recommendations, error rows,
hit rates, identity flags) is deterministic run-to-run — datasets and
samples are generated from explicit seeds.  Wall-clock figures
naturally vary with the machine; ``meta.cpu_count`` records how many
cores the speedup had to work with (on a single-core runner the
parallel path degrades gracefully to ~1x).

Usage::

    PYTHONPATH=src python benchmarks/advisor_bench.py \
        --workers 4 --scale 0.2 --output BENCH_advisor.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro.advisor import algorithms  # noqa: E402
from repro.api import Session  # noqa: E402
from repro.api import tune  # noqa: E402
from repro.api import run_sweep  # noqa: E402
from repro.compression.base import CompressionMethod  # noqa: E402
from repro.datasets.sales import sales_database, sales_workload  # noqa: E402
from repro.experiments.common import (  # noqa: E402
    TPCH_ERROR_KEYSETS,
    get_tpch,
    index_population,
)
from repro.experiments.samplecf_errors import ErrorLab  # noqa: E402
from repro.experiments.table2_error_fit import FRACTIONS  # noqa: E402
from repro.parallel.engine import (  # noqa: E402
    ParallelEngine,
    effective_cpu_count,
    fork_available,
)
from repro.sampling.sample_manager import (  # noqa: E402
    DEFAULT_SAMPLE_SEED,
    SampleManager,
)
from repro.sizeest.estimator import SizeEstimator  # noqa: E402
from repro.workload.drift import DriftSpec, DriftingWorkload  # noqa: E402

#: The sweep grid: the acceptance bar is >=3 budgets x 2 seeds.
SWEEP_BUDGET_FRACTIONS = (0.1, 0.15, 0.2)
SWEEP_SEEDS = (DEFAULT_SAMPLE_SEED, DEFAULT_SAMPLE_SEED + 1)

#: Greedy acceptance threshold for the incremental section's "pruned"
#: sub-arm: coarse enough that the delta coster's sound lower bounds
#: (atomic-config floors) exceed the required improvement for some
#: candidates, so ``pruned_bound`` provably fires on the stock bench —
#: compare_bench gates it > 0 with recommendations still identical to
#: the full-recost path at the same threshold.
PRUNED_MIN_IMPROVEMENT = 0.05


def _fig9_task(lab: ErrorLab, index) -> list[float]:
    """Worker task: one index's SampleCF errors at every fraction (the
    ground-truth full build is computed once per index, inside the
    task, so no worker repeats another's truth)."""
    return [lab.samplecf_error(index, f) for f in FRACTIONS]


def _config_names(result) -> list[str]:
    return sorted(ix.display_name() for ix in result.configuration)


#: Walls in the advisor/incremental sections are the best of this many
#: runs: the advisor is deterministic, so the minimum is the least-noise
#: estimate of what the machine can do and the trend chain stops
#: tracking load spikes.
ADVISOR_TRIALS = 2
INCREMENTAL_TRIALS = 3


def _best_of(trials: int, fn):
    """(best wall seconds, last result) over ``trials`` runs of fn()."""
    best = None
    result = None
    for _ in range(trials):
        t0 = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
    return best, result


def run_advisor_section(args) -> dict:
    db = sales_database(scale=args.scale, seed=args.seed)
    wl = sales_workload(db)
    budget = db.total_data_bytes() * args.budget

    seq_wall, seq = _best_of(
        ADVISOR_TRIALS,
        lambda: tune(db, wl, budget, variant=args.variant, workers=1))

    par_wall, par = _best_of(
        ADVISOR_TRIALS,
        lambda: tune(db, wl, budget, variant=args.variant,
                     workers=args.workers))

    identical = (
        seq.configuration == par.configuration
        and seq.final_cost == par.final_cost
    )
    return {
        "dataset": "sales",
        "scale": args.scale,
        "budget_fraction": args.budget,
        "variant": args.variant,
        "sequential": {
            "wall_seconds": round(seq_wall, 4),
            "candidates_per_sec": round(seq.candidate_count / seq_wall, 2),
            "kernel": seq.kernel_stats,
        },
        "parallel": {
            "workers": args.workers,
            "wall_seconds": round(par_wall, 4),
            "candidates_per_sec": round(par.candidate_count / par_wall, 2),
            "engine": par.engine_stats,
        },
        "speedup": round(seq_wall / par_wall, 3),
        "identical_recommendations": identical,
        "result": {
            "improvement_pct": seq.improvement_pct,
            "final_cost": seq.final_cost,
            "candidate_count": seq.candidate_count,
            "pool_size": seq.pool_size,
            "configuration": _config_names(seq),
        },
    }


def run_incremental_section(args) -> dict:
    """Delta-aware costing off vs on: identical recommendations, >=3x
    candidates/sec (sequential, so the ratio is same-machine
    normalized)."""
    db = sales_database(scale=args.scale, seed=args.seed)
    wl = sales_workload(db)
    budget = db.total_data_bytes() * args.budget

    full_wall, full = _best_of(
        INCREMENTAL_TRIALS,
        lambda: tune(db, wl, budget, variant=args.variant,
                     delta_costing=False))

    inc_wall, inc = _best_of(
        INCREMENTAL_TRIALS,
        lambda: tune(db, wl, budget, variant=args.variant,
                     delta_costing=True))

    full_cps = round(full.candidate_count / full_wall, 2)
    inc_cps = round(inc.candidate_count / inc_wall, 2)

    # Pruned sub-arm: the same session at a coarse acceptance threshold
    # where the delta coster's lower bounds bind, so bound pruning
    # (pruned_bound) fires on the stock bench; its A/B baseline is the
    # full-recost path at the *same* threshold.
    pruned_wall, pruned = _best_of(
        INCREMENTAL_TRIALS,
        lambda: tune(db, wl, budget, variant=args.variant,
                     delta_costing=True,
                     min_improvement=PRUNED_MIN_IMPROVEMENT))
    pruned_full = tune(db, wl, budget, variant=args.variant,
                       delta_costing=False,
                       min_improvement=PRUNED_MIN_IMPROVEMENT)

    return {
        "dataset": "sales",
        "scale": args.scale,
        "budget_fraction": args.budget,
        "variant": args.variant,
        "full_recost": {
            "wall_seconds": round(full_wall, 4),
            "candidates_per_sec": full_cps,
            "optimizer_calls": full.optimizer_calls,
            "kernel": full.kernel_stats,
        },
        "incremental": {
            "wall_seconds": round(inc_wall, 4),
            "candidates_per_sec": inc_cps,
            "optimizer_calls": inc.optimizer_calls,
            "delta": inc.delta_stats,
            "kernel": inc.kernel_stats,
        },
        "speedup": round(full_wall / inc_wall, 3),
        "candidates_per_sec_ratio": round(
            inc_cps / full_cps, 3
        ) if full_cps else 0.0,
        "identical_recommendations": (
            full.configuration == inc.configuration
            and full.final_cost == inc.final_cost
            and full.base_cost == inc.base_cost
            and full.steps == inc.steps
        ),
        "pruned": {
            "min_improvement": PRUNED_MIN_IMPROVEMENT,
            "wall_seconds": round(pruned_wall, 4),
            "pruned_bound": pruned.delta_stats.get("pruned_bound", 0),
            "pruned_zero_delta": pruned.delta_stats.get(
                "pruned_zero_delta", 0
            ),
            "identical_recommendations": (
                pruned.configuration == pruned_full.configuration
                and pruned.final_cost == pruned_full.final_cost
            ),
        },
    }


#: The drift arm's scenario: phases 0 and 2 of this spec pick disjoint
#: hot sets with weights extreme enough that the shift strands part of
#: the phase-0 recommendation — the drop provably fires.
DRIFT_SPEC = dict(seed=0, hot_fraction=0.2, hot_weight=20.0,
                  cold_weight=0.01)
DRIFT_PHASES = (0, 2)
#: pinned like the sweep grid — the drop/speedup gate is calibrated to
#: this scenario, independent of ``--budget``.
DRIFT_BUDGET_FRACTION = 0.15


def run_drift_section(args) -> dict:
    """Continuous tuning under workload drift: a session cold-tunes
    phase 0, the workload shifts to phase 2, and the incremental retune
    must land at the cold-tune-from-scratch answer at a fraction of its
    wall (the retune reuses the session's warm caches and the previous
    configuration; the cold arm pays full price every trial)."""
    db = sales_database(scale=args.scale, seed=args.seed)
    drifting = DriftingWorkload(sales_workload(db),
                                DriftSpec(**DRIFT_SPEC))
    first, last = DRIFT_PHASES

    session = Session(db, budget_fraction=DRIFT_BUDGET_FRACTION,
                      variant=args.variant, workers=args.workers)
    session.tune(workload=drifting.phase(first))
    previous = session.configuration

    def one_retune():
        session.configuration = previous
        session.generation = 1
        return session.retune(workload=drifting.phase(last))

    retune_wall, retuned = _best_of(INCREMENTAL_TRIALS, one_retune)

    cold_wall, cold = _best_of(
        INCREMENTAL_TRIALS,
        lambda: Session(db, drifting.phase(last),
                        budget_fraction=DRIFT_BUDGET_FRACTION,
                        variant=args.variant,
                        workers=args.workers).tune())

    return {
        "dataset": "sales",
        "scale": args.scale,
        "budget_fraction": DRIFT_BUDGET_FRACTION,
        "variant": args.variant,
        "drift": dict(DRIFT_SPEC),
        "phases": list(DRIFT_PHASES),
        "cold": {
            "wall_seconds": round(cold_wall, 4),
            "final_cost": cold.final_cost,
            "improvement": cold.improvement,
            "configuration": _config_names(cold),
        },
        "retune": {
            "wall_seconds": round(retune_wall, 4),
            "final_cost": retuned.result.final_cost,
            "improvement": retuned.improvement,
            "configuration": _config_names(retuned.result),
            "generation": retuned.generation,
            "dropped": sorted(ix.display_name()
                              for ix in retuned.dropped),
            "added": sorted(ix.display_name()
                            for ix in retuned.added),
        },
        "retune_speedup": round(cold_wall / retune_wall, 3),
        "drops_fired": len(retuned.dropped),
        "quality_ratio": round(
            retuned.result.final_cost / cold.final_cost, 6
        ),
    }


def run_cache_section(args) -> dict:
    db = sales_database(scale=args.scale, seed=args.seed)
    wl = sales_workload(db)
    budget = db.total_data_bytes() * args.budget
    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-bench-cache-")

    t0 = time.perf_counter()
    cold = tune(db, wl, budget, variant=args.variant, cache_dir=cache_dir)
    cold_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = tune(db, wl, budget, variant=args.variant, cache_dir=cache_dir)
    warm_wall = time.perf_counter() - t0

    return {
        "cache_dir": cache_dir,
        "cold": {
            "wall_seconds": round(cold_wall, 4),
            "stats": cold.cache_stats,
        },
        "warm": {
            "wall_seconds": round(warm_wall, 4),
            "stats": warm.cache_stats,
        },
        "warm_hit_rate": warm.cache_stats.get("hit_rate", 0.0),
        "warm_speedup": round(cold_wall / warm_wall, 3),
        "identical_recommendations": (
            cold.configuration == warm.configuration
            and cold.final_cost == warm.final_cost
        ),
    }


def _same_results(a, b) -> bool:
    if len(a) != len(b):
        return False
    return all(
        ra.configuration == rb.configuration
        and ra.final_cost == rb.final_cost
        and ra.base_cost == rb.base_cost
        and ra.consumed_bytes == rb.consumed_bytes
        and ra.steps == rb.steps
        for ra, rb in zip(a, b)
    )


def run_sweep_section(args) -> dict:
    """The sweep orchestration benchmark: sequential tune() loop vs the
    sharded sweep API (identity checked), then cold vs warm through the
    persistent what-if cost cache."""
    db = sales_database(scale=args.scale, seed=args.seed)
    wl = sales_workload(db)
    total = db.total_data_bytes()
    budgets = [total * fraction for fraction in SWEEP_BUDGET_FRACTIONS]
    variant = args.variant

    # Ground truth: independent per-run tune() calls, fresh estimator
    # per (seed, budget), exactly what the sweep must reproduce.
    t0 = time.perf_counter()
    loop_results = []
    for seed in SWEEP_SEEDS:
        for budget in budgets:
            estimator = SizeEstimator(
                db, manager=SampleManager(db, seed=seed)
            )
            loop_results.append(
                tune(db, wl, budget, variant=variant, estimator=estimator)
            )
    loop_wall = time.perf_counter() - t0

    cache_dir = args.sweep_cache_dir or tempfile.mkdtemp(
        prefix="repro-bench-sweep-"
    )
    # workers=1 arm doubles as the cold-cache arm: cold units see the
    # empty pre-sweep snapshot, so caching cannot move their results.
    t0 = time.perf_counter()
    cold = run_sweep(
        db, wl, budgets, seeds=SWEEP_SEEDS, variant=variant,
        workers=1, cache_dir=cache_dir,
    )
    cold_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = run_sweep(
        db, wl, budgets, seeds=SWEEP_SEEDS, variant=variant,
        workers=args.workers,
    )
    sharded_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_sweep(
        db, wl, budgets, seeds=SWEEP_SEEDS, variant=variant,
        workers=1, cache_dir=cache_dir,
    )
    warm_wall = time.perf_counter() - t0

    return {
        "dataset": "sales",
        "scale": args.scale,
        "variant": variant,
        "budget_fractions": list(SWEEP_BUDGET_FRACTIONS),
        "seeds": list(SWEEP_SEEDS),
        "runs": len(cold.runs),
        "tune_loop_wall_seconds": round(loop_wall, 4),
        "sweep_workers1_wall_seconds": round(cold_wall, 4),
        "sweep_sharded": {
            "workers": args.workers,
            "wall_seconds": round(sharded_wall, 4),
            "engine": sharded.engine_stats,
            "speedup_vs_loop": round(loop_wall / sharded_wall, 3),
        },
        "identical_to_tune_loop": _same_results(
            [run.result for run in cold.runs], loop_results
        ),
        "identical_across_workers": _same_results(
            [run.result for run in cold.runs],
            [run.result for run in sharded.runs],
        ),
        "cache_dir": cache_dir,
        "cold": {
            "wall_seconds": round(cold_wall, 4),
            "cost_cache": cold.cost_cache_stats,
            "estimation_cache": cold.estimation_cache_stats,
        },
        "warm": {
            "wall_seconds": round(warm_wall, 4),
            "cost_cache": warm.cost_cache_stats,
            "estimation_cache": warm.estimation_cache_stats,
        },
        "warm_cost_hit_rate": warm.cost_cache_stats.get("hit_rate", 0.0),
        "warm_speedup": round(cold_wall / warm_wall, 3),
        "identical_cold_vs_warm": _same_results(
            [run.result for run in cold.runs],
            [run.result for run in warm.runs],
        ),
        "results": [
            {
                "seed": run.seed,
                "budget_fraction": round(run.budget_bytes / total, 6),
                "improvement_pct": run.result.improvement_pct,
                "final_cost": run.result.final_cost,
                "consumed_bytes": run.result.consumed_bytes,
                "configuration": _config_names(run.result),
            }
            for run in cold.runs
        ],
    }


def run_algorithms_section(args, advisor_section: dict) -> dict:
    """Every registered selection algorithm on the same tuning session:
    quality (improvement %) vs wall time, the frontier of undominated
    algorithms, and per-algorithm budget compliance.

    The recommendations are deterministic (gated against the baseline
    for the default search; budget compliance gated for all); the
    frontier is derived from wall-clock and recorded for the trend
    series only — which algorithm "wins" on speed is a machine fact.
    """
    db = sales_database(scale=args.scale, seed=args.seed)
    wl = sales_workload(db)
    budget = db.total_data_bytes() * args.budget

    entries = []
    for name in algorithms.names():
        t0 = time.perf_counter()
        result = tune(db, wl, budget, variant=args.variant,
                      algorithm=name, workers=1)
        wall = time.perf_counter() - t0
        entries.append({
            "algorithm": name,
            "wall_seconds": round(wall, 4),
            "improvement_pct": result.improvement_pct,
            "final_cost": result.final_cost,
            "consumed_bytes": result.consumed_bytes,
            "budget_respected": result.consumed_bytes <= budget + 1e-6,
            "structures": len(list(result.configuration)),
            "configuration": _config_names(result),
        })

    # Undominated quality-vs-wall frontier: an algorithm is on the
    # frontier unless some other is at least as fast AND at least as
    # good, strictly better in one.
    frontier = [
        entry["algorithm"] for entry in entries
        if not any(
            other["wall_seconds"] <= entry["wall_seconds"]
            and other["improvement_pct"] >= entry["improvement_pct"]
            and (other["wall_seconds"] < entry["wall_seconds"]
                 or other["improvement_pct"] > entry["improvement_pct"])
            for other in entries if other is not entry
        )
    ]

    default = next(
        entry for entry in entries
        if entry["algorithm"] == algorithms.DEFAULT_ALGORITHM
    )
    advisor_result = advisor_section["result"]
    return {
        "dataset": "sales",
        "scale": args.scale,
        "budget_fraction": args.budget,
        "variant": args.variant,
        "default_algorithm": algorithms.DEFAULT_ALGORITHM,
        "results": entries,
        "frontier": frontier,
        # The default algorithm through the new registry must equal the
        # advisor section's run of the same session (the historical
        # code path) — the refactor's no-behavior-change invariant.
        "identical_default_to_advisor": (
            default["configuration"] == advisor_result["configuration"]
            and default["final_cost"] == advisor_result["final_cost"]
        ),
    }


def run_fig9_section(args) -> dict:
    db = get_tpch(args.fig9_scale)
    indexes = index_population(db, TPCH_ERROR_KEYSETS)

    seq_lab = ErrorLab(db)
    t0 = time.perf_counter()
    seq_errors = [_fig9_task(seq_lab, ix) for ix in indexes]
    seq_wall = time.perf_counter() - t0

    par_lab = ErrorLab(db)
    engine = ParallelEngine(args.workers)
    # Warm the per-fraction samples in the parent: workers inherit them
    # at fork instead of each deriving a private copy.
    for ix in indexes:
        for f in FRACTIONS:
            par_lab.manager.table_sample(ix.table, f)
    t0 = time.perf_counter()
    try:
        with engine.session(par_lab):
            par_errors = engine.map(_fig9_task, indexes, context=par_lab)
    finally:
        engine.shutdown()
    par_wall = time.perf_counter() - t0

    rows = []
    for fi, fraction in enumerate(FRACTIONS):
        ns = [
            errs[fi] for ix, errs in zip(indexes, seq_errors)
            if ix.method is CompressionMethod.ROW
        ]
        ld = [
            errs[fi] for ix, errs in zip(indexes, seq_errors)
            if ix.method is not CompressionMethod.ROW
        ]
        mean = lambda xs: sum(xs) / len(xs) if xs else 0.0  # noqa: E731
        rows.append({
            "fraction": fraction,
            "ns_bias_pct": round(100 * mean(ns), 4),
            "ld_bias_pct": round(100 * mean(ld), 4),
        })

    return {
        "dataset": "tpch",
        "scale": args.fig9_scale,
        "population": len(indexes),
        "fractions": list(FRACTIONS),
        "sequential_wall_seconds": round(seq_wall, 4),
        "parallel_wall_seconds": round(par_wall, 4),
        "workers": args.workers,
        "speedup": round(seq_wall / par_wall, 3),
        "samplecf_runs_per_sec": round(
            len(indexes) * len(FRACTIONS) / par_wall, 2
        ),
        "identical_errors": par_errors == seq_errors,
        "rows": rows,
    }


def run_service_section(args) -> dict:
    """Job-based serving: two-context overlap and warm pool affinity.

    Overlap arm: one tune job on each of two registered contexts,
    submitted concurrently (per-context lanes) vs awaited one after the
    other — wall ratio recorded; each lane's engine uses ``--workers``
    processes, which is where multi-core hosts overlap for real (lane
    threads alone share the GIL).  Warm arm: two same-context tunes at
    different budgets through one lane; the second run's wiring matches,
    so it must reuse the dormant pool instead of re-forking.
    Durability arm: one job through a journal-backed service, then a
    second service life over the same cache dir — the restored record
    must come back terminal with the identical result payload.
    """
    import asyncio
    import tempfile

    from repro.service import AdvisorService, serialize_result
    from repro.stats.column_stats import DatabaseStats

    db_a = sales_database(scale=args.scale, seed=args.seed)
    wl_a = sales_workload(db_a)
    db_b = sales_database(scale=args.scale, seed=args.seed + 1)
    wl_b = sales_workload(db_b)
    payload = dict(budget_fraction=args.budget, variant=args.variant)
    warm_payload = dict(budget_fraction=args.budget / 2,
                        variant=args.variant)

    async def overlap(concurrent: bool):
        service = AdvisorService(workers=args.workers)
        service.register("ctx_a", db_a, wl_a)
        service.register("ctx_b", db_b, wl_b)
        await service.start()
        try:
            t0 = time.perf_counter()
            if concurrent:
                jobs = [service.submit_job("tune", name, payload)
                        for name in ("ctx_a", "ctx_b")]
                await asyncio.gather(*[
                    _drain_job(service, job) for job in jobs
                ])
            else:
                # Truly serialized: the second job is submitted only
                # after the first is terminal — submitting both up
                # front would start them on their two lanes at once.
                jobs = []
                for name in ("ctx_a", "ctx_b"):
                    job = service.submit_job("tune", name, payload)
                    await _drain_job(service, job)
                    jobs.append(job)
            wall = time.perf_counter() - t0
            return wall, [job.result for job in jobs]
        finally:
            await service.stop()

    async def _drain_job(service, job):
        async for _ in service.job_events(job.id):
            pass

    async def warm():
        service = AdvisorService(workers=args.workers)
        service.register("ctx_a", db_a, wl_a)
        await service.start()
        try:
            first = await service.tune("ctx_a", **payload)
            second = await service.tune("ctx_a", **warm_payload)
            return first, second, service.stats()
        finally:
            await service.stop()

    async def durability(cache_dir: str):
        # First life: journal one job end to end, then stop cleanly.
        service = AdvisorService(workers=args.workers,
                                 cache_dir=cache_dir)
        service.register("ctx_a", db_a, wl_a)
        await service.start()
        try:
            job = service.submit_job("tune", "ctx_a", warm_payload)
            await _drain_job(service, job)
            first = job.snapshot()
            appended = service.stats()["jobs"]["journal"]["appended"]
        finally:
            await service.stop()
        # Second life over the same journal: recovery must restore the
        # terminal record — result and event log intact, no live lease.
        service = AdvisorService(workers=args.workers,
                                 cache_dir=cache_dir)
        service.register("ctx_a", db_a, wl_a)
        await service.start()
        try:
            record = service.job(job.id)
            restored = record.snapshot()
            seqs = [e["seq"] for e in record.events]
            stats = service.stats()["jobs"]
        finally:
            await service.stop()
        return {
            "journal_appends": appended,
            "jobs_restored": stats["retained"],
            "live_leases": stats["journal"]["live_leases"],
            "restored_seq_gapless":
                seqs == list(range(1, len(seqs) + 1)),
            "identical_restored_result":
                restored["state"] == "done"
                and restored["result"] == first["result"],
        }

    # NOTE: per-context lanes serialize *jobs submitted in order on one
    # lane*, so the serialized arm measures the same work end-to-end.
    serial_wall, serial_results = asyncio.run(overlap(False))
    conc_wall, conc_results = asyncio.run(overlap(True))
    warm_first, warm_second, warm_stats = asyncio.run(warm())
    with tempfile.TemporaryDirectory() as journal_dir:
        durable = asyncio.run(durability(journal_dir))

    # Ground truth: direct sequential tune() per context/budget.
    stats_a, stats_b = DatabaseStats(db_a), DatabaseStats(db_b)
    direct = {
        "ctx_a": tune(db_a, wl_a, db_a.total_data_bytes() * args.budget,
                      variant=args.variant, stats=stats_a),
        "ctx_b": tune(db_b, wl_b, db_b.total_data_bytes() * args.budget,
                      variant=args.variant, stats=stats_b),
        "warm": tune(db_a, wl_a,
                     db_a.total_data_bytes() * args.budget / 2,
                     variant=args.variant, stats=stats_a),
    }
    identical_jobs = all(
        result["result"] == serialize_result(direct[name])["result"]
        for results in (serial_results, conc_results)
        for name, result in zip(("ctx_a", "ctx_b"), results)
    )
    identical_warm = (
        warm_first["result"]
        == serialize_result(direct["ctx_a"])["result"]
        and warm_second["result"]
        == serialize_result(direct["warm"])["result"]
    )
    return {
        "dataset": "sales",
        "scale": args.scale,
        "budget_fraction": args.budget,
        "variant": args.variant,
        "workers": args.workers,
        "overlap": {
            "contexts": 2,
            "serialized_wall_seconds": round(serial_wall, 4),
            "concurrent_wall_seconds": round(conc_wall, 4),
            "speedup": round(serial_wall / conc_wall, 3),
        },
        "warm": {
            "pools_reused": warm_stats["pools_reused"],
            "warm_runs": warm_stats["scheduler"]["warm_runs"],
            "pools_forked": warm_stats["scheduler"]["pools_forked"],
        },
        "durability": durable,
        "identical_job_results": identical_jobs,
        "identical_warm_results": identical_warm,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Benchmark the parallel advisor engine "
                    "(emits BENCH_advisor.json)"
    )
    parser.add_argument("--workers", type=int, default=4,
                        help="pool size for the parallel runs "
                             "(0 = one per CPU)")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="sales dataset scale for the advisor runs")
    parser.add_argument("--budget", type=float, default=0.2,
                        help="storage budget as a fraction of raw data")
    parser.add_argument("--variant", default="dtac-both")
    parser.add_argument("--seed", type=int, default=20090101,
                        help="dataset generation seed")
    parser.add_argument("--fig9-scale", type=float, default=0.1,
                        help="TPC-H scale for the Fig. 9 SampleCF sweep")
    parser.add_argument("--skip-fig9", action="store_true")
    parser.add_argument("--skip-cache", action="store_true")
    parser.add_argument("--skip-sweep", action="store_true")
    parser.add_argument("--skip-incremental", action="store_true")
    parser.add_argument("--skip-drift", action="store_true")
    parser.add_argument("--skip-service", action="store_true")
    parser.add_argument("--skip-algorithms", action="store_true")
    parser.add_argument("--cache-dir", default=None,
                        help="reuse a cache directory instead of a "
                             "fresh temporary one")
    parser.add_argument("--sweep-cache-dir", default=None,
                        help="reuse a sweep cost-cache directory instead "
                             "of a fresh temporary one")
    parser.add_argument("--output", default="BENCH_advisor.json")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers == 0:
        args.workers = max(1, os.cpu_count() or 1)

    payload: dict = {
        "meta": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "cpu_count": os.cpu_count(),
            "effective_cpus": effective_cpu_count(),
            "fork_available": fork_available(),
            "workers": args.workers,
            "seed": args.seed,
        }
    }
    print(f"[bench] advisor: sales scale={args.scale} "
          f"workers={args.workers}", flush=True)
    payload["advisor"] = run_advisor_section(args)
    if not args.skip_algorithms:
        print(f"[bench] algorithms: {', '.join(algorithms.names())}",
              flush=True)
        payload["algorithms"] = run_algorithms_section(
            args, payload["advisor"]
        )
    if not args.skip_incremental:
        print("[bench] incremental: full recost vs delta costing",
              flush=True)
        payload["incremental"] = run_incremental_section(args)
    if not args.skip_drift:
        print(f"[bench] drift: phases {DRIFT_PHASES} retune vs cold",
              flush=True)
        payload["drift"] = run_drift_section(args)
    if not args.skip_cache:
        print("[bench] cache: cold vs warm", flush=True)
        payload["cache"] = run_cache_section(args)
    if not args.skip_sweep:
        print(f"[bench] sweep: {len(SWEEP_BUDGET_FRACTIONS)} budgets x "
              f"{len(SWEEP_SEEDS)} seeds", flush=True)
        payload["sweep"] = run_sweep_section(args)
    if not args.skip_fig9:
        print(f"[bench] fig9: tpch scale={args.fig9_scale}", flush=True)
        payload["fig9"] = run_fig9_section(args)
    if not args.skip_service:
        print("[bench] service: two-context overlap + warm affinity",
              flush=True)
        payload["service"] = run_service_section(args)

    out = Path(args.output)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    adv = payload["advisor"]
    print(f"[bench] wrote {out}")
    print(f"[bench] advisor speedup x{adv['speedup']} "
          f"(identical={adv['identical_recommendations']})")
    if "algorithms" in payload:
        alg = payload["algorithms"]
        for entry in alg["results"]:
            print(f"[bench] algorithm {entry['algorithm']:<16s} "
                  f"{entry['improvement_pct']:6.2f}% in "
                  f"{entry['wall_seconds']:.2f}s "
                  f"(budget_respected={entry['budget_respected']})")
        print(f"[bench] quality-vs-wall frontier: "
              f"{', '.join(alg['frontier'])} "
              f"(default identical={alg['identical_default_to_advisor']})")
    if "incremental" in payload:
        inc = payload["incremental"]
        print(f"[bench] incremental costing x{inc['speedup']} "
              f"({inc['full_recost']['candidates_per_sec']} -> "
              f"{inc['incremental']['candidates_per_sec']} cands/sec, "
              f"identical={inc['identical_recommendations']})")
        pruned = inc["pruned"]
        print(f"[bench] pruned arm (min_improvement="
              f"{pruned['min_improvement']}): "
              f"{pruned['pruned_bound']} bound-pruned, "
              f"identical={pruned['identical_recommendations']}")
    if "drift" in payload:
        dr = payload["drift"]
        print(f"[bench] drift retune x{dr['retune_speedup']} vs cold "
              f"({dr['retune']['wall_seconds']}s vs "
              f"{dr['cold']['wall_seconds']}s), "
              f"drops={dr['drops_fired']} "
              f"quality_ratio={dr['quality_ratio']}")
    if "cache" in payload:
        print(f"[bench] warm cache hit rate "
              f"{payload['cache']['warm_hit_rate']:.2%}")
    if "sweep" in payload:
        sw = payload["sweep"]
        print(f"[bench] sweep identical: tune-loop={sw['identical_to_tune_loop']} "
              f"workers={sw['identical_across_workers']} "
              f"warm={sw['identical_cold_vs_warm']}; "
              f"warm cost-cache hit rate {sw['warm_cost_hit_rate']:.2%} "
              f"(x{sw['warm_speedup']} faster warm)")
    if "fig9" in payload:
        print(f"[bench] fig9 speedup x{payload['fig9']['speedup']} "
              f"(identical={payload['fig9']['identical_errors']})")
    if "service" in payload:
        svc = payload["service"]
        print(f"[bench] service overlap x{svc['overlap']['speedup']} "
              f"(2 contexts), warm pools_reused="
              f"{svc['warm']['pools_reused']} "
              f"(identical jobs={svc['identical_job_results']} "
              f"warm={svc['identical_warm_results']})")
        dur = svc["durability"]
        print(f"[bench] service durability: restored="
              f"{dur['jobs_restored']} "
              f"(seq_gapless={dur['restored_seq_gapless']} "
              f"identical={dur['identical_restored_result']})")
    sweep_ok = all(
        payload.get("sweep", {}).get(flag, True)
        for flag in ("identical_to_tune_loop", "identical_across_workers",
                     "identical_cold_vs_warm")
    )
    ok = (
        adv["identical_recommendations"]
        and sweep_ok
        and payload.get("algorithms", {}).get(
            "identical_default_to_advisor", True
        )
        and all(
            entry["budget_respected"]
            for entry in payload.get("algorithms", {}).get("results", [])
        )
        and payload.get("incremental", {}).get(
            "identical_recommendations", True
        )
        and payload.get("incremental", {}).get("pruned", {}).get(
            "identical_recommendations", True
        )
        and payload.get("fig9", {}).get("identical_errors", True)
        and payload.get("service", {}).get("identical_job_results", True)
        and payload.get("service", {}).get("identical_warm_results", True)
        and payload.get("service", {}).get("durability", {}).get(
            "identical_restored_result", True
        )
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
