"""Benchmark: regenerate CS1 (RLE sort-order sensitivity, Section 8)."""

from conftest import run_and_print

from repro.experiments import cs1_sort_order


def test_cs1_sort_order(benchmark, bench_scale):
    result = run_and_print(benchmark, cs1_sort_order.run, scale=bench_scale)
    factors = result.column("x-smaller-lead")
    rle_totals = result.column("rle-bytes")
    best_totals = result.column("best-bytes")
    # Sorting by the 3-value l_returnflag collapses it by orders of
    # magnitude; sorting by the near-unique l_extendedprice cannot.
    assert factors[0] > 100.0
    assert factors[0] > 10.0 * factors[-1]
    # The best-encoding store never loses to the pure-RLE store.
    assert all(b <= r for b, r in zip(best_totals, rle_totals))
