"""Benchmark: regenerate Table 2 (SampleCF error fit across datasets)."""

from conftest import run_and_print

from repro.experiments import table2_error_fit


def test_table2_error_fit(benchmark, bench_scale):
    result = run_and_print(benchmark, table2_error_fit.run,
                           scale=bench_scale)
    measured = [row for row in result.rows if not row[0].startswith("paper")]
    # Paper shape: coefficients positive and stable across datasets
    # (LD stddev within a small factor between datasets).
    ld_std = [row[3] for row in measured]
    assert all(c > 0 for c in ld_std)
    assert max(ld_std) <= 4 * max(min(ld_std), 1e-4)
