"""Benchmark: regenerate Figure 9 (SampleCF error vs sampling ratio)."""

from conftest import run_and_print

from repro.experiments import fig09_samplecf_error


def test_fig09_samplecf_error(benchmark, bench_scale):
    result = run_and_print(benchmark, fig09_samplecf_error.run,
                           scale=bench_scale)
    ld_bias = result.column("LD-Bias%")
    ns_bias = result.column("NS-Bias%")
    # Paper shape: LD bias shrinks as f grows; NS bias stays near zero.
    assert abs(ld_bias[-1]) <= abs(ld_bias[0]) + 1.0
    assert all(abs(b) < 5.0 for b in ns_bias)
