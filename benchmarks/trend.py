#!/usr/bin/env python
"""Nightly bench trend tracking.

Appends one summary line per nightly run to a ``BENCH_trend.jsonl``
artifact (carried forward run-to-run by the workflow) and fails when the
fresh run's throughput regressed more than ``--max-regression`` against
the previous entry — wall-clock drift CI's per-PR gate deliberately
tolerates, but a *sustained* drop across nightlies on the same runner
class is a real regression signal.

Usage (what nightly.yml runs)::

    python benchmarks/trend.py --bench BENCH_nightly.json \
        --trend BENCH_trend.jsonl

The trend file is append-only: the workflow downloads the previous
nightly's artifact (when one exists), this script appends today's
summary, and the workflow re-uploads the grown file.  With no previous
entry the regression check is skipped — the first nightly seeds the
series.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: (summary key, path into the bench payload) throughput series tracked
#: and gated against regression.
_TRACKED = (
    ("advisor_candidates_per_sec",
     ("advisor", "sequential", "candidates_per_sec")),
    ("incremental_candidates_per_sec",
     ("incremental", "incremental", "candidates_per_sec")),
    ("fig9_samplecf_runs_per_sec",
     ("fig9", "samplecf_runs_per_sec")),
)

#: informational fields carried along but not gated.
_CONTEXT = (
    ("incremental_speedup", ("incremental", "speedup")),
    ("sweep_warm_cost_hit_rate", ("sweep", "warm_cost_hit_rate")),
    ("service_overlap_speedup", ("service", "overlap", "speedup")),
    ("service_pools_reused", ("service", "warm", "pools_reused")),
    ("cpu_count", ("meta", "cpu_count")),
    ("python", ("meta", "python")),
)


def _dig(payload: dict, path: tuple) -> object:
    node: object = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def summarize(bench: dict, run_id: str) -> dict:
    summary: dict = {"run_id": run_id}
    for key, path in _TRACKED + _CONTEXT:
        value = _dig(bench, path)
        if value is not None:
            summary[key] = value
    return summary


def last_entry(trend_path: Path) -> dict | None:
    if not trend_path.exists():
        return None
    lines = [
        line for line in trend_path.read_text().splitlines() if line.strip()
    ]
    if not lines:
        return None
    try:
        return json.loads(lines[-1])
    except json.JSONDecodeError:
        return None


def check_regression(previous: dict, fresh: dict,
                     max_regression: float) -> list[str]:
    failures = []
    for key, _path in _TRACKED:
        prev = previous.get(key)
        new = fresh.get(key)
        if not isinstance(prev, (int, float)) or prev <= 0:
            continue
        if not isinstance(new, (int, float)):
            failures.append(f"{key} vanished from the fresh run "
                            f"(was {prev})")
            continue
        floor = prev * (1.0 - max_regression)
        if new < floor:
            failures.append(
                f"{key} regressed {1.0 - new / prev:.1%} vs the previous "
                f"nightly: {prev} -> {new} "
                f"(floor at -{max_regression:.0%}: {floor:.2f})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Append a nightly bench summary to the trend series "
                    "and fail on throughput regressions"
    )
    parser.add_argument("--bench", required=True,
                        help="fresh BENCH_nightly.json")
    parser.add_argument("--trend", default="BENCH_trend.jsonl",
                        help="append-only JSONL trend series "
                             "(previous nightly's artifact, if any)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="max fractional candidates/sec drop vs the "
                             "previous nightly entry")
    parser.add_argument("--run-id",
                        default=os.environ.get("GITHUB_RUN_ID", "local"),
                        help="stamp recorded with the entry")
    args = parser.parse_args(argv)

    try:
        bench = json.loads(Path(args.bench).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"[trend] cannot load {args.bench}: {exc}")
        return 1

    trend_path = Path(args.trend)
    previous = last_entry(trend_path)
    summary = summarize(bench, args.run_id)
    with trend_path.open("a") as fh:
        fh.write(json.dumps(summary) + "\n")
    print(f"[trend] appended run {summary['run_id']} to {trend_path} "
          f"({sum(1 for _ in trend_path.open())} entries)")

    if previous is None:
        print("[trend] no previous nightly entry: seeding the series, "
              "regression check skipped")
        return 0
    failures = check_regression(previous, summary, args.max_regression)
    for failure in failures:
        print(f"[trend] FAIL: {failure}")
    if failures:
        return 1
    tracked = {k: summary.get(k) for k, _p in _TRACKED if k in summary}
    print(f"[trend] no regression vs run {previous.get('run_id')}: "
          f"{tracked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
