"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures and prints
it, so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
reproduction harness.  Scales are reduced relative to the experiments'
defaults to keep a full sweep in minutes; set REPRO_BENCH_SCALE to
override.
"""

import os
import pathlib

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))

_BENCH_DIR = pathlib.Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Every test in this directory regenerates a paper figure/table:
    mark them ``slow`` + ``bench`` so CI's fast tier can deselect the
    whole sweep with ``-m "not slow"``.  (The hook sees the entire
    session's items, so filter to this directory.)"""
    for item in items:
        path = pathlib.Path(str(item.fspath)).resolve()
        if _BENCH_DIR in path.parents:
            item.add_marker(pytest.mark.slow)
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def run_and_print(benchmark, fn, *args, **kwargs):
    """Run an experiment once under pytest-benchmark and print it."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1)
    print()
    result.print()
    return result
