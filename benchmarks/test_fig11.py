"""Benchmark: regenerate Figure 11 (size-estimation runtime breakdown)."""

from conftest import run_and_print

from repro.experiments import fig11_runtime_breakdown


def test_fig11_runtime_breakdown(benchmark, bench_scale):
    result = run_and_print(benchmark, fig11_runtime_breakdown.run,
                           scale=bench_scale)
    rows = {row[0]: row for row in result.rows}
    # Paper shape: deductions replace SampleCF runs.  (Wall-clock at
    # benchmark scale is sub-second and noisy, so the deterministic
    # check is the run count.)
    runs_without = rows["SampleCF-Runs"][1]
    runs_with = rows["SampleCF-Runs"][2]
    assert runs_with <= runs_without
