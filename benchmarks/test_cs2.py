"""Benchmark: regenerate CS2 (compression-aware projection design)."""

from conftest import run_and_print

from repro.experiments import cs2_columnstore_advisor


def test_cs2_columnstore_advisor(benchmark, bench_scale):
    result = run_and_print(
        benchmark, cs2_columnstore_advisor.run, scale=bench_scale
    )
    aware = result.column("aware")
    blind = result.column("blind")
    # Integrated design never loses, and wins somewhere.
    assert all(a >= b - 1e-6 for a, b in zip(aware, blind))
    assert max(a - b for a, b in zip(aware, blind)) > 1.0
