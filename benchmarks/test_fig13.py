"""Benchmark: regenerate Figure 13 (TPC-H INSERT ablation)."""

from conftest import run_and_print

from repro.experiments import (
    fig12_tpch_select_ablation,
    fig13_tpch_insert_ablation,
)


def test_fig13_tpch_insert_ablation(benchmark, bench_scale):
    result = run_and_print(
        benchmark, fig13_tpch_insert_ablation.run, scale=bench_scale
    )
    both = result.column("dtac-both")
    dta = result.column("dta")
    assert all(b >= d - 1e-6 for b, d in zip(both, dta))
    # Paper shape: INSERT-intensive improvements < SELECT-intensive ones.
    select = fig12_tpch_select_ablation.run(scale=bench_scale)
    assert max(both) <= max(select.column("dtac-both")) + 5.0
