"""Benchmark: regenerate Table 4 (graph algorithm quality)."""

import math

from conftest import run_and_print

from repro.experiments import table4_graph_quality


def test_table4_graph_quality(benchmark, bench_scale):
    result = run_and_print(benchmark, table4_graph_quality.run,
                           scale=bench_scale)
    for row in result.rows:
        _f, all_cost, greedy, optimal, _ratio = row
        if math.isinf(all_cost):
            continue
        # Paper shape: Optimal <= Greedy <= All, and Greedy never worse
        # than All (it can always fall back to sampling everything).
        assert optimal <= greedy + 1e-9
        assert greedy <= all_cost + 1e-9
