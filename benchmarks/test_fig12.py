"""Benchmark: regenerate Figure 12 (TPC-H SELECT ablation)."""

from conftest import run_and_print

from repro.experiments import fig12_tpch_select_ablation


def test_fig12_tpch_select_ablation(benchmark, bench_scale):
    result = run_and_print(
        benchmark, fig12_tpch_select_ablation.run, scale=bench_scale
    )
    both = result.column("dtac-both")
    dta = result.column("dta")
    # Paper shape: DTAc(Both) dominates DTA at every budget; the gap is
    # largest at the tightest budgets.
    assert all(b >= d - 1e-6 for b, d in zip(both, dta))
    assert both[0] - dta[0] >= both[-1] - dta[-1] - 5.0
