"""Benchmark: regenerate Figure 10 (deduction error vs #indexes)."""

from conftest import run_and_print

from repro.experiments import fig10_deduction_error


def test_fig10_deduction_error(benchmark, bench_scale):
    result = run_and_print(benchmark, fig10_deduction_error.run,
                           scale=bench_scale)
    # Paper shape: errors stay bounded per extrapolated index.  The
    # bound is loose at benchmark scale (tiny tables quantize hard).
    for row in result.rows:
        a = row[0]
        for value in row[1:]:
            assert abs(value) <= 20.0 * a
