"""Ablation benchmark (paper Example 2 / Section 7.1's anecdote): a
naive tool that decouples index selection from compression can make an
INSERT-intensive workload *worse*, while DTAc never does."""

from repro.api import tune, tune_decoupled
from repro.experiments.common import ExperimentResult, get_tpch
from repro.datasets import tpch_workload
from repro.sizeest import SizeEstimator
from repro.stats import DatabaseStats


def _run(bench_scale) -> ExperimentResult:
    database = get_tpch(bench_scale)
    workload = tpch_workload(database, select_weight=1.0, insert_weight=15.0)
    stats = DatabaseStats(database)
    estimator = SizeEstimator(database, stats=stats)
    budget = database.total_data_bytes() * 0.4
    result = ExperimentResult(
        name="Ablation: decoupled staging vs integrated DTAc "
             "(INSERT intensive, improvement %)",
        headers=("Tool", "Improvement%"),
    )
    dtac = tune(database, workload, budget, variant="dtac-both",
                estimator=estimator, stats=stats)
    staged = tune_decoupled(database, workload, budget,
                            estimator=estimator, stats=stats)
    result.rows.append(("DTAc (integrated)", dtac.improvement_pct))
    result.rows.append(("Decoupled (stage+compress)", staged.improvement_pct))
    result.notes.append(
        "paper shape: integrating compression beats staging it; blind "
        "compression of every index hurts update-heavy workloads"
    )
    return result


def test_decoupled_strawman(benchmark, bench_scale):
    result = benchmark.pedantic(_run, args=(bench_scale,), rounds=1,
                                iterations=1)
    print()
    result.print()
    rows = dict(result.rows)
    assert rows["DTAc (integrated)"] >= rows["Decoupled (stage+compress)"]
