"""Benchmark: regenerate Figure 16 (TPC-H SELECT, all features)."""

from conftest import run_and_print

from repro.experiments import fig16_tpch_select_full


def test_fig16_tpch_select_full(benchmark, bench_scale):
    result = run_and_print(benchmark, fig16_tpch_select_full.run,
                           scale=bench_scale)
    both = result.column("dtac-both")
    dta = result.column("dta")
    assert all(b >= d - 1e-6 for b, d in zip(both, dta))
