"""Benchmark: regenerate Table 3 (deduction error formulas)."""

from conftest import run_and_print

from repro.experiments import table3_deduction_fit


def test_table3_deduction_fit(benchmark, bench_scale):
    result = run_and_print(benchmark, table3_deduction_fit.run,
                           scale=bench_scale)
    rows = {row[0]: row for row in result.rows}
    # Paper shape: ColSet is (near) exact; ColExt errors are small per
    # extrapolated index (|bias| coefficient within a few percent).
    assert abs(rows["ColSet(NS)"][1]) < 0.01
    assert abs(rows["ColExt(NS)"][1]) < 0.08
    assert abs(rows["ColExt(LD)"][1]) < 0.12
