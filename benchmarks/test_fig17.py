"""Benchmark: regenerate Figure 17 (TPC-H INSERT, all features)."""

from conftest import run_and_print

from repro.experiments import fig17_tpch_insert_full


def test_fig17_tpch_insert_full(benchmark, bench_scale):
    result = run_and_print(benchmark, fig17_tpch_insert_full.run,
                           scale=bench_scale)
    both = result.column("dtac-both")
    dta = result.column("dta")
    assert all(b >= d - 1e-6 for b, d in zip(both, dta))
    # Paper shape: the DTAc/DTA gap narrows as budgets grow (compressed
    # structures are expensive to maintain under heavy bulk loads).
    gaps = [b - d for b, d in zip(both, dta)]
    assert gaps[-1] <= max(gaps) + 1e-6
