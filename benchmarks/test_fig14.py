"""Benchmark: regenerate Figure 14 (Sales SELECT intensive)."""

from conftest import run_and_print

from repro.experiments import fig14_sales_select


def test_fig14_sales_select(benchmark, bench_scale):
    result = run_and_print(benchmark, fig14_sales_select.run,
                           scale=bench_scale)
    both = result.column("dtac-both")
    dta = result.column("dta")
    # Paper shape: DTAc >= DTA everywhere, and DTAc produces a useful
    # design even at the 0% budget (by compressing base tables).
    assert all(b >= d - 1e-6 for b, d in zip(both, dta))
    assert both[0] > 10.0
