#!/usr/bin/env python
"""Bench-regression gate: diff a fresh ``BENCH_advisor.json`` against
the committed baseline and fail CI on real regressions.

Three classes of check, in decreasing strictness:

* **Determinism flags** (hard): every ``identical_*`` flag in the fresh
  run must be true — the parallel/sharded/cached paths must reproduce
  the sequential results on the runner, not just on the machine that
  committed the baseline.
* **Recommendation drift** (hard): the recommended configurations,
  final costs and improvement percentages must match the baseline —
  for the advisor section, every sweep run, and the *default*
  selection algorithm in the ``algorithms`` section (the registry must
  never move the historical search); the alternative algorithms are
  gated on budget compliance only, their quality-vs-wall frontier is
  recorded for the trend series.
  These are pure-Python deterministic given the committed seeds, so any
  drift is a behavior change that needs a deliberate baseline update
  (rerun the bench and commit the new file alongside the code change).
* **Incremental-costing speedup** (hard floor): the delta-aware coster
  must beat the full-recost path by at least
  ``--min-incremental-speedup`` on the runner itself (both arms run in
  the same process, so the ratio is machine-normalized).
* **Cache hit rates** (hard, small slack) and **wall time** (generous
  ratio): warm-cache hit rates must not regress beyond ``--hit-slack``;
  wall-clock may drift up to ``--wall-tolerance`` x the baseline, since
  runner hardware and core counts vary.

Usage::

    python benchmarks/compare_bench.py \
        --baseline BENCH_advisor.json --fresh BENCH_fresh.json

``--update-baseline`` regenerates the committed baseline at the smoke
parameters — the escape hatch for *deliberate* behavior changes (see
:func:`update_baseline` for when CI expects it).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Sections and the parameters that must agree before any comparison is
#: meaningful; a mismatch means the bench invocations differ, which the
#: gate treats as a configuration error, not a measurement.
_PARAM_KEYS = {
    "advisor": ("dataset", "scale", "budget_fraction", "variant"),
    "algorithms": ("dataset", "scale", "budget_fraction", "variant",
                   "default_algorithm"),
    "incremental": ("dataset", "scale", "budget_fraction", "variant"),
    "drift": ("dataset", "scale", "budget_fraction", "variant",
              "drift", "phases"),
    "cache": (),
    "sweep": ("dataset", "scale", "variant", "budget_fractions", "seeds"),
    "fig9": ("dataset", "scale", "population", "fractions"),
    "service": ("dataset", "scale", "budget_fraction", "variant",
                "workers"),
}

#: (section, key) wall-clock figures compared under --wall-tolerance.
_WALL_KEYS = (
    ("advisor", ("sequential", "wall_seconds")),
    ("incremental", ("incremental", "wall_seconds")),
    ("drift", ("cold", "wall_seconds")),
    ("cache", ("warm", "wall_seconds")),
    ("sweep", ("sweep_workers1_wall_seconds",)),
    ("sweep", ("warm", "wall_seconds")),
    ("fig9", ("sequential_wall_seconds",)),
    ("service", ("overlap", "serialized_wall_seconds")),
)

#: Two-context overlap must never be materially *slower* than the same
#: jobs serialized — but only judged on hosts with enough cores to run
#: both lanes' engine pools at once (2 lanes x 2 workers).  Below that,
#: concurrency honestly loses to oversubscription (on the 1-CPU dev
#: container the measured ratio is ~0.6x), so the figure is recorded
#: for the trend series but not gated; the nightly full-scale run on a
#: multi-core runner is where the real ratio is held to account.
MAX_OVERLAP_SLOWDOWN = 1.35
MIN_OVERLAP_GATE_CPUS = 4

#: Warm hit rates gated against regression (and an absolute floor for
#: the sweep cost cache: the acceptance bar is >90% on a warm sweep).
_HIT_RATE_KEYS = (
    ("cache", ("warm_hit_rate",), 0.0),
    ("sweep", ("warm_cost_hit_rate",), 0.9),
)


def _dig(payload: dict, path: tuple) -> object:
    node: object = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def _close(a: float, b: float, rel: float = 1e-9) -> bool:
    return abs(a - b) <= rel * max(abs(a), abs(b), 1.0)


def _identity_flags(payload: dict, section: str) -> list[tuple[str, bool]]:
    flags = []
    for key, value in payload.get(section, {}).items():
        if key.startswith("identical") and isinstance(value, bool):
            flags.append((f"{section}.{key}", value))
    return flags


class Gate:
    def __init__(self) -> None:
        self.failures: list[str] = []
        self.notes: list[str] = []

    def fail(self, message: str) -> None:
        self.failures.append(message)

    def note(self, message: str) -> None:
        self.notes.append(message)


#: Floor on the advisor section's parallel-vs-sequential speedup.  With
#: the engine's single-CPU auto-degrade, the parallel arm either fans
#: out with real concurrency (speedup > 1 expected) or degrades to the
#: sequential path (speedup ~1.0); either way losing beyond noise means
#: the fan-out fired where it could only add overhead — the exact bug
#: the degrade exists to prevent.  0.8 is noise slack, not a target.
MIN_PARALLEL_SPEEDUP = 0.8

#: Acceptance floor for delta-costing speedup over full recosting.
#: Was 3.0 when full recosting paid un-memoized selectivity estimation
#: on every costing; the stats-layer selectivity memo sped the
#: full-recost *baseline arm* up ~1.5x (same optimizer calls, less work
#: per call), so the machine-normalized ratio honestly narrowed even
#: though both arms got faster in absolute terms.
MIN_INCREMENTAL_SPEEDUP = 2.0

#: Continuous-tuning acceptance: after the drift arm's phase shift the
#: incremental retune must finish in at most half the cold-tune wall
#: (speedup >= 2, both arms in the same process so the ratio is
#: machine-normalized), land within 5% of the cold tune's final cost,
#: and provably drop at least one structure the shift stranded.
MIN_RETUNE_SPEEDUP = 2.0
MAX_RETUNE_QUALITY_RATIO = 1.05


def compare(baseline: dict, fresh: dict, wall_tolerance: float,
            hit_slack: float,
            min_incremental_speedup: float = MIN_INCREMENTAL_SPEEDUP,
            min_retune_speedup: float = MIN_RETUNE_SPEEDUP) -> Gate:
    gate = Gate()

    for section, keys in _PARAM_KEYS.items():
        if section not in baseline or section not in fresh:
            if section in baseline and section not in fresh:
                gate.fail(f"section {section!r} present in baseline but "
                          "missing from the fresh run")
            continue
        for key in keys:
            if baseline[section].get(key) != fresh[section].get(key):
                gate.fail(
                    f"{section}.{key} config mismatch: baseline "
                    f"{baseline[section].get(key)!r} vs fresh "
                    f"{fresh[section].get(key)!r} — rerun the bench with "
                    "the baseline's parameters (see ci.yml)"
                )
    if gate.failures:
        return gate  # comparisons below would be meaningless

    # 1. Determinism flags on the fresh run.
    for section in _PARAM_KEYS:
        for name, value in _identity_flags(fresh, section):
            if not value:
                gate.fail(f"fresh run broke determinism: {name} is false")
            else:
                gate.note(f"ok {name}")

    # 2. Recommendation drift vs the baseline.
    base_result = _dig(baseline, ("advisor", "result"))
    fresh_result = _dig(fresh, ("advisor", "result"))
    if base_result and fresh_result:
        if base_result.get("configuration") != fresh_result.get("configuration"):
            gate.fail(
                "advisor recommendation drifted:\n"
                f"  baseline: {base_result.get('configuration')}\n"
                f"  fresh:    {fresh_result.get('configuration')}"
            )
        for key in ("final_cost", "improvement_pct"):
            a, b = base_result.get(key), fresh_result.get(key)
            if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
                    and not _close(a, b):
                gate.fail(f"advisor.result.{key} drifted: {a!r} -> {b!r}")
        if not gate.failures:
            gate.note("ok advisor recommendation matches baseline")
    base_runs = _dig(baseline, ("sweep", "results")) or []
    fresh_runs = _dig(fresh, ("sweep", "results")) or []
    if base_runs and fresh_runs:
        if len(base_runs) != len(fresh_runs):
            gate.fail(f"sweep run count drifted: {len(base_runs)} -> "
                      f"{len(fresh_runs)}")
        def _run_drifted(b: dict, f: dict) -> bool:
            if b.get("configuration") != f.get("configuration"):
                return True
            for key in ("final_cost", "improvement_pct"):
                a, c = b.get(key), f.get(key)
                if not isinstance(a, (int, float)) \
                        or not isinstance(c, (int, float)):
                    return True  # missing numbers are drift, not a pass
                if not _close(a, c):
                    return True
            return False

        drifted = [
            f"seed={b.get('seed')} budget={b.get('budget_fraction')}"
            for b, f in zip(base_runs, fresh_runs)
            if _run_drifted(b, f)
        ]
        if drifted:
            gate.fail("sweep recommendations drifted for: " + ", ".join(drifted))
        else:
            gate.note(f"ok all {len(base_runs)} sweep recommendations match")

    # 2.3 Selection algorithms: every registered algorithm must stay
    #     inside the storage budget, and the default (greedy-backtrack)
    #     recommendation must match the baseline exactly — the pluggable
    #     registry must never move the historical search's answer.
    fresh_algos = {
        entry.get("algorithm"): entry
        for entry in _dig(fresh, ("algorithms", "results")) or []
    }
    base_algos = {
        entry.get("algorithm"): entry
        for entry in _dig(baseline, ("algorithms", "results")) or []
    }
    if fresh_algos:
        for name in sorted(fresh_algos):
            if not fresh_algos[name].get("budget_respected", False):
                gate.fail(
                    f"algorithms.{name} blew the storage budget "
                    f"(consumed_bytes="
                    f"{fresh_algos[name].get('consumed_bytes')!r})"
                )
            else:
                gate.note(f"ok algorithms.{name} budget respected")
        missing = set(base_algos) - set(fresh_algos)
        if missing:
            gate.fail(
                "algorithms present in baseline but missing from the "
                f"fresh run: {sorted(missing)}"
            )
        default_name = _dig(fresh, ("algorithms", "default_algorithm"))
        base_default = base_algos.get(default_name)
        fresh_default = fresh_algos.get(default_name)
        if base_default and fresh_default:
            drift = (
                base_default.get("configuration")
                != fresh_default.get("configuration")
            )
            for key in ("final_cost", "improvement_pct"):
                a = base_default.get(key)
                b = fresh_default.get(key)
                if not isinstance(a, (int, float)) \
                        or not isinstance(b, (int, float)) \
                        or not _close(a, b):
                    drift = True
            if drift:
                gate.fail(
                    f"algorithms.{default_name} (the default search) "
                    "drifted from the baseline:\n"
                    f"  baseline: {base_default.get('configuration')}\n"
                    f"  fresh:    {fresh_default.get('configuration')}"
                )
            else:
                gate.note(
                    f"ok algorithms.{default_name} matches baseline"
                )

    # 2.4 Parallel-arm floor: the parallel advisor run must not lose to
    #     the sequential run beyond noise.  The engine degrades to
    #     sequential on effectively single-CPU hosts, so a big loss
    #     here means the degrade failed (forked workers time-slicing
    #     one core) or the fan-out regressed on a real multi-core.
    par_speedup = _dig(fresh, ("advisor", "speedup"))
    if isinstance(par_speedup, (int, float)):
        engine = _dig(fresh, ("advisor", "parallel", "engine")) or {}
        degraded = engine.get("degraded_sequential")
        if par_speedup < MIN_PARALLEL_SPEEDUP:
            gate.fail(
                f"advisor.speedup below the parallel floor: "
                f"x{par_speedup:.2f} < x{MIN_PARALLEL_SPEEDUP:.1f} "
                f"(engine degraded_sequential={degraded!r}, "
                f"parallel_maps={engine.get('parallel_maps')!r}) — the "
                "parallel arm must never lose to sequential beyond noise"
            )
        else:
            gate.note(
                f"ok advisor.speedup = x{par_speedup:.2f}"
                + (" (engine degraded to sequential)" if degraded else "")
            )
    elif "advisor" in baseline:
        gate.fail("advisor section missing its speedup figure")

    # 2.5 Incremental-costing speedup floor: delta-aware costing must
    #     keep beating the full-recost path by the acceptance bar on
    #     the runner itself (both arms run sequentially in the same
    #     process, so the ratio is same-machine normalized).
    fresh_speedup = _dig(fresh, ("incremental", "speedup"))
    if isinstance(fresh_speedup, (int, float)):
        if fresh_speedup < min_incremental_speedup:
            gate.fail(
                f"incremental.speedup below the acceptance floor: "
                f"x{fresh_speedup:.2f} < x{min_incremental_speedup:.1f}"
            )
        else:
            gate.note(f"ok incremental.speedup = x{fresh_speedup:.2f}")
    elif "incremental" in baseline:
        gate.fail("incremental section missing its speedup figure")

    # 2.6 Bound pruning must fire on the stock bench: the incremental
    #     section's pruned sub-arm runs at a coarse acceptance
    #     threshold chosen so the delta coster's sound lower bounds
    #     bind — zero pruned candidates there means the floors went
    #     slack (the "pruning that never prunes" regression), and the
    #     arm must stay byte-identical to full recosting regardless.
    pruned = _dig(fresh, ("incremental", "pruned"))
    if isinstance(pruned, dict):
        bound = pruned.get("pruned_bound")
        if not isinstance(bound, int) or bound <= 0:
            gate.fail(
                "incremental.pruned.pruned_bound did not fire "
                f"({bound!r}) at min_improvement="
                f"{pruned.get('min_improvement')!r}"
            )
        elif not pruned.get("identical_recommendations", False):
            gate.fail(
                "incremental.pruned recommendations diverged from full "
                "recosting — bound pruning cut a candidate it could not "
                "prove away"
            )
        else:
            gate.note(
                f"ok incremental.pruned: {bound} bound-pruned, "
                "identical to full recost"
            )
    elif "pruned" in baseline.get("incremental", {}):
        gate.fail("incremental.pruned sub-arm missing from the fresh run")

    # 2.65 Continuous-tuning gates: the drift arm's retune must be the
    #      cheap path (>= 2x over cold-tuning the shifted workload), at
    #      cold-tune quality, with at least one drop provably fired by
    #      the phase shift; and both arms' recommendations are
    #      deterministic given the committed seeds, so they are held to
    #      the baseline like every other recommendation.
    drift = fresh.get("drift")
    if drift is not None:
        speedup = drift.get("retune_speedup")
        if not isinstance(speedup, (int, float)) \
                or speedup < min_retune_speedup:
            gate.fail(
                f"drift.retune_speedup below the acceptance floor: "
                f"x{speedup!r} < x{min_retune_speedup:.1f} — the "
                "incremental retune must cost at most "
                f"1/{min_retune_speedup:.0f} of a cold tune"
            )
        else:
            gate.note(f"ok drift.retune_speedup = x{speedup:.2f}")
        drops = drift.get("drops_fired")
        if not isinstance(drops, int) or drops < 1:
            gate.fail(
                f"drift.drops_fired = {drops!r}: the phase shift "
                "stranded structure(s) but the retune dropped nothing"
            )
        else:
            gate.note(f"ok drift.drops_fired = {drops}")
        quality = drift.get("quality_ratio")
        if not isinstance(quality, (int, float)) \
                or quality > MAX_RETUNE_QUALITY_RATIO:
            gate.fail(
                f"drift.quality_ratio = {quality!r}: the retuned "
                "configuration costs more than "
                f"{MAX_RETUNE_QUALITY_RATIO:.2f}x the cold tune's — "
                "incremental must not trade recommendation quality "
                "for wall time"
            )
        else:
            gate.note(f"ok drift.quality_ratio = {quality}")
        for arm in ("cold", "retune"):
            base_cfg = _dig(baseline, ("drift", arm, "configuration"))
            fresh_cfg = _dig(fresh, ("drift", arm, "configuration"))
            if base_cfg is None:
                continue
            if base_cfg != fresh_cfg:
                gate.fail(
                    f"drift.{arm} recommendation drifted:\n"
                    f"  baseline: {base_cfg}\n"
                    f"  fresh:    {fresh_cfg}"
                )
            else:
                gate.note(f"ok drift.{arm} recommendation matches "
                          "baseline")

    # 2.7 Job-serving gates: the warm arm must actually reuse the
    #     lane's engine pool (the whole point of session affinity), and
    #     two-context overlap must not be slower than serializing the
    #     same jobs.
    service = fresh.get("service")
    if service is not None:
        effective = _dig(fresh, ("meta", "effective_cpus"))
        if service.get("workers", 1) > 1 and (
            not isinstance(effective, int) or effective >= 2
        ):
            # warm_runs counts prepare_warm *grants* (cross-run
            # affinity specifically); pools_reused alone could be
            # satisfied by within-run session reuse even with the
            # affinity feature broken.  On an effectively single-CPU
            # host the engines degrade to sequential and never fork a
            # pool at all, so there is nothing to keep warm — the
            # affinity floors only apply where pools exist.
            for key, floor in (("warm_runs", 1), ("pools_reused", 1)):
                value = _dig(fresh, ("service", "warm", key))
                if not isinstance(value, (int, float)) or value < floor:
                    gate.fail(
                        f"service.warm.{key} below the affinity "
                        f"floor: {value!r} < {floor} — the second "
                        "same-context tune re-forked instead of "
                        "reusing the lane's warm pool"
                    )
                else:
                    gate.note(f"ok service.warm.{key} = {value}")
        elif service.get("workers", 1) > 1:
            gate.note(
                f"service.warm affinity not gated ({effective!r} "
                "effective CPU: engines degrade to sequential, no "
                "pools to keep warm)"
            )
        serial = _dig(fresh, ("service", "overlap",
                              "serialized_wall_seconds"))
        conc = _dig(fresh, ("service", "overlap",
                            "concurrent_wall_seconds"))
        cpus = _dig(fresh, ("meta", "cpu_count"))
        if isinstance(serial, (int, float)) \
                and isinstance(conc, (int, float)) and serial > 0:
            ratio = conc / serial
            if not isinstance(cpus, int) \
                    or cpus < MIN_OVERLAP_GATE_CPUS:
                gate.note(
                    f"service.overlap concurrent/serialized = "
                    f"x{ratio:.2f} (informational: {cpus} CPUs < "
                    f"{MIN_OVERLAP_GATE_CPUS}, overlap not gated)"
                )
            elif ratio > MAX_OVERLAP_SLOWDOWN:
                gate.fail(
                    "service.overlap: concurrent two-context jobs ran "
                    f"x{ratio:.2f} slower than serialized (limit "
                    f"x{MAX_OVERLAP_SLOWDOWN:.2f})"
                )
            else:
                gate.note(
                    f"ok service.overlap concurrent/serialized = "
                    f"x{ratio:.2f}"
                )

    # 3. Warm-cache hit rates.
    for section, path, floor in _HIT_RATE_KEYS:
        base_rate = _dig(baseline, (section,) + path)
        fresh_rate = _dig(fresh, (section,) + path)
        if not isinstance(fresh_rate, (int, float)):
            continue
        if fresh_rate < floor:
            gate.fail(f"{section}.{'.'.join(path)} below floor: "
                      f"{fresh_rate:.2%} < {floor:.0%}")
        elif isinstance(base_rate, (int, float)) \
                and fresh_rate < base_rate - hit_slack:
            gate.fail(f"{section}.{'.'.join(path)} regressed: "
                      f"{base_rate:.2%} -> {fresh_rate:.2%}")
        else:
            gate.note(f"ok {section}.{'.'.join(path)} = {fresh_rate:.2%}")

    # 4. Wall time, with a generous ratio (runner hardware varies).
    for section, path in _WALL_KEYS:
        base_wall = _dig(baseline, (section,) + path)
        fresh_wall = _dig(fresh, (section,) + path)
        if not isinstance(base_wall, (int, float)) \
                or not isinstance(fresh_wall, (int, float)) \
                or base_wall <= 0:
            continue
        ratio = fresh_wall / base_wall
        label = f"{section}.{'.'.join(path)}"
        if ratio > wall_tolerance:
            gate.fail(f"{label} wall time blew past tolerance: "
                      f"{base_wall:.2f}s -> {fresh_wall:.2f}s "
                      f"(x{ratio:.1f} > x{wall_tolerance:.1f})")
        else:
            gate.note(f"ok {label} {fresh_wall:.2f}s (x{ratio:.2f})")
    return gate


#: The exact parameters the committed baseline is generated with — the
#: same ones ci.yml's bench-smoke job uses, or the param-mismatch check
#: rejects the comparison.
BASELINE_ARGS = [
    "--workers", "2", "--scale", "0.1", "--fig9-scale", "0.1",
]


def update_baseline(baseline: str) -> int:
    """Regenerate and overwrite the committed baseline at the smoke
    parameters.

    For **deliberate behavior changes** only: when a PR intentionally
    moves recommendations, costs or cache layouts (a cost-model fix, a
    new enumeration phase, different estimation batching), CI's
    recommendation-drift gate will correctly fail until the baseline is
    regenerated *with the new code* and committed alongside the change.
    Run ``python benchmarks/compare_bench.py --update-baseline``, eyeball
    the diff of ``BENCH_advisor.json`` (the committed numbers are the
    review artifact), and commit it.  Never regenerate to silence a
    drift you cannot explain — that is the regression the gate exists
    to catch."""
    from advisor_bench import main as bench_main

    print(f"[compare] regenerating {baseline} with: "
          + " ".join(BASELINE_ARGS))
    code = bench_main([*BASELINE_ARGS, "--output", baseline])
    if code != 0:
        print("[compare] bench run failed its own identity checks; "
              "baseline NOT updated cleanly")
        return code
    print(f"[compare] rewrote {baseline}; review the diff and commit it "
          "alongside the behavior change")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Fail on bench regressions vs the committed baseline"
    )
    parser.add_argument("--baseline", default="BENCH_advisor.json",
                        help="committed baseline JSON")
    parser.add_argument("--fresh", default=None,
                        help="freshly generated bench JSON")
    parser.add_argument("--wall-tolerance", type=float, default=5.0,
                        help="max fresh/baseline wall-clock ratio "
                             "(generous: runner core counts vary)")
    parser.add_argument("--hit-slack", type=float, default=0.02,
                        help="allowed absolute warm hit-rate drop")
    parser.add_argument("--min-incremental-speedup", type=float,
                        default=MIN_INCREMENTAL_SPEEDUP,
                        help="acceptance floor for delta-costing "
                             "speedup over full recosting")
    parser.add_argument("--min-retune-speedup", type=float,
                        default=MIN_RETUNE_SPEEDUP,
                        help="acceptance floor for the drift arm's "
                             "retune speedup over a cold tune")
    parser.add_argument("--update-baseline", action="store_true",
                        help="regenerate and overwrite --baseline at "
                             "the committed smoke parameters (for "
                             "deliberate behavior changes; commit the "
                             "rewritten file with the change)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.update_baseline:
        return update_baseline(args.baseline)
    if args.fresh is None:
        print("[compare] --fresh is required (or use --update-baseline)")
        return 2
    try:
        baseline = json.loads(Path(args.baseline).read_text())
        fresh = json.loads(Path(args.fresh).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"[compare] cannot load inputs: {exc}")
        return 1
    gate = compare(baseline, fresh, args.wall_tolerance, args.hit_slack,
                   args.min_incremental_speedup, args.min_retune_speedup)
    for note in gate.notes:
        print(f"[compare] {note}")
    for failure in gate.failures:
        print(f"[compare] FAIL: {failure}")
    if gate.failures:
        print(f"[compare] {len(gate.failures)} regression(s) vs "
              f"{args.baseline}")
        return 1
    print(f"[compare] no regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
