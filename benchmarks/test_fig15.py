"""Benchmark: regenerate Figure 15 (Sales INSERT intensive)."""

from conftest import run_and_print

from repro.experiments import fig14_sales_select, fig15_sales_insert


def test_fig15_sales_insert(benchmark, bench_scale):
    result = run_and_print(benchmark, fig15_sales_insert.run,
                           scale=bench_scale)
    both = result.column("dtac-both")
    dta = result.column("dta")
    assert all(b >= d - 1e-6 for b, d in zip(both, dta))
    # Paper shape: INSERT-intensive improvements are smaller than the
    # SELECT-intensive ones.
    select = fig14_sales_select.run(scale=bench_scale)
    assert max(both) <= max(select.column("dtac-both")) + 5.0
