"""Column-store projection design (the paper's Section 8 future work).

Shows (1) how strongly RLE's payoff depends on the projection sort
order, and (2) the compression-aware projection advisor choosing sort
orders and projections under a storage budget.

Run:  python examples/columnstore_design.py
"""

from repro.columnstore import (
    ProjectionDef,
    ProjectionSizer,
    tune_columnstore,
)
from repro.compression import CompressionMethod
from repro.datasets import tpch_database, tpch_workload


def main() -> None:
    db = tpch_database(scale=0.2)
    lineitem = db.table("lineitem")
    sizer = ProjectionSizer(lineitem)

    # --- 1. Sort order sensitivity -------------------------------------
    columns = ("l_returnflag", "l_shipdate", "l_quantity")
    print("RLE bytes of (returnflag, shipdate, quantity) by sort order:")
    for lead in columns:
        order = (lead,) + tuple(c for c in columns if c != lead)
        projection = ProjectionDef("lineitem", order, (lead,))
        size = sizer.measure(
            projection, encodings=(CompressionMethod.RLE,)
        )
        lead_bytes = size.column_used_bytes[lead]
        print(f"  sorted by {lead:14s}: total "
              f"{sum(size.column_used_bytes.values()):>8d} B, "
              f"lead column {lead_bytes:>7d} B")
    fixed = lineitem.num_rows * sum(
        lineitem.column(c).width for c in columns
    )
    print(f"  fixed width           : total {fixed:>8d} B")

    # --- 2. Projection advisor -----------------------------------------
    workload = tpch_workload(db, select_weight=5.0, insert_weight=1.0)
    budget = db.total_data_bytes() * 0.25
    result = tune_columnstore(db, workload, budget)
    print(f"\nprojection advisor: improvement "
          f"{result.improvement_pct:.1f}% within "
          f"{budget / 1024:.0f} KiB budget "
          f"({result.candidate_count} candidates considered)")
    for projection in result.projections:
        size = result.sizes[projection]
        encodings = ", ".join(
            f"{c}:{size.encodings[c].value}" for c in projection.columns[:4]
        )
        print(f"  {projection.name}")
        print(f"      {size.bytes / 1024:7.0f} KiB  [{encodings}"
              f"{', ...' if len(projection.columns) > 4 else ''}]")


if __name__ == "__main__":
    main()
