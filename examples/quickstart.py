"""Quickstart: tune a TPC-H workload with the compression-aware advisor.

Run:  python examples/quickstart.py
"""

from repro import tpch_database, tpch_workload
from repro.api import Session

def main() -> None:
    # 1. Generate a scaled-down TPC-H database (60k-row lineitem at
    #    scale=1.0; 0.2 keeps this demo snappy).
    db = tpch_database(scale=0.2)
    print(f"database: {db.name}, raw size "
          f"{db.total_data_bytes() / 1024:.0f} KiB")

    # 2. The 22-query analytic workload plus two bulk loads, weighted
    #    toward SELECTs.
    workload = tpch_workload(db, select_weight=10.0, insert_weight=1.0)

    # 3. Tune under a storage budget of 15% of the raw data size, with
    #    the full compression-aware tool (skyline candidate selection +
    #    backtracking enumeration).
    result = Session(db, workload, budget_fraction=0.15,
                     variant="dtac-both").tune()
    budget = result.budget_bytes

    print(f"\nimprovement: {result.improvement_pct:.1f}% "
          f"(workload cost {result.base_cost:.0f} -> "
          f"{result.final_cost:.0f})")
    print(f"budget: {budget / 1024:.0f} KiB, consumed: "
          f"{result.consumed_bytes / 1024:.0f} KiB")
    print("\nrecommended configuration:")
    for ix in sorted(result.configuration, key=lambda i: i.display_name()):
        size_kib = result.sizes[ix] / 1024
        print(f"  {ix.display_name():60s} {size_kib:8.0f} KiB")


if __name__ == "__main__":
    main()
