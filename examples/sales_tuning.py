"""Sales workload: how update intensity changes the recommended design.

Reproduces the paper's core qualitative finding interactively: on a
SELECT-intensive workload DTAc compresses aggressively; on an
INSERT-intensive one it holds back (compression CPU on maintenance), and
a naive tool that compresses everything after the fact does worse.

Run:  python examples/sales_tuning.py
"""

from repro import DatabaseStats, sales_database, sales_workload
from repro.api import Session


def describe(tag, result) -> None:
    compressed = [ix for ix in result.configuration if ix.is_compressed]
    print(f"\n== {tag} ==")
    print(f"improvement {result.improvement_pct:5.1f}%   "
          f"indexes {len(list(result.configuration)):2d}   "
          f"compressed {len(compressed):2d}")
    for ix in sorted(compressed, key=lambda i: i.display_name())[:6]:
        print(f"   {ix.display_name()}")


def main() -> None:
    db = sales_database(scale=0.3)
    stats = DatabaseStats(db)
    budget = db.total_data_bytes() * 0.10
    session = Session(db, budget_bytes=budget, variant="dtac-both",
                      stats=stats)
    print(f"Sales database: {db.total_data_bytes() / 1024:.0f} KiB raw, "
          f"budget {budget / 1024:.0f} KiB")

    select_heavy = sales_workload(db, select_weight=10.0, insert_weight=1.0)
    insert_heavy = sales_workload(db, select_weight=1.0, insert_weight=15.0)

    describe(
        "SELECT-intensive, DTAc",
        session.tune(workload=select_heavy),
    )
    describe(
        "INSERT-intensive, DTAc",
        session.tune(workload=insert_heavy),
    )
    describe(
        "INSERT-intensive, decoupled strawman (compress everything)",
        session.tune_decoupled(workload=insert_heavy),
    )


if __name__ == "__main__":
    main()
