"""Compressed-index size estimation: SampleCF vs deduction.

Demonstrates the paper's Section 4/5 machinery directly: estimate a batch
of compressed indexes under an accuracy constraint, see which were
sampled vs deduced, and compare every estimate against the measured
ground truth (a full index build).

Run:  python examples/size_estimation.py
"""

from repro import CompressionMethod, IndexDef, SizeEstimator, tpch_database


def main() -> None:
    db = tpch_database(scale=0.2)
    estimator = SizeEstimator(db, e=0.5, q=0.9)

    targets = []
    for method in (CompressionMethod.ROW, CompressionMethod.PAGE):
        targets += [
            IndexDef("lineitem", ("l_shipdate",), method=method),
            IndexDef("lineitem", ("l_discount",), method=method),
            IndexDef("lineitem", ("l_shipdate", "l_discount"),
                     method=method),
            IndexDef("lineitem", ("l_discount", "l_shipdate"),
                     method=method),
            IndexDef("lineitem",
                     ("l_shipdate", "l_discount", "l_quantity"),
                     method=method),
        ]

    print("planning + executing size estimation "
          f"(e={estimator.e}, q={estimator.q})...\n")
    estimates = estimator.estimate_many(targets)

    header = (f"{'index':55s} {'method':9s} {'est KiB':>8s} "
              f"{'true KiB':>9s} {'err%':>7s} {'cost':>5s}")
    print(header)
    print("-" * len(header))
    total_cost = 0.0
    for ix, est in estimates.items():
        truth = estimator.true_size(ix)
        err = 100 * (est.est_bytes / truth - 1) if truth else 0.0
        total_cost += est.cost
        print(
            f"{ix.display_name():55s} {est.source:9s} "
            f"{est.est_bytes / 1024:8.0f} {truth / 1024:9.0f} "
            f"{err:+7.1f} {est.cost:5.0f}"
        )
    n_sampled = sum(1 for e in estimates.values() if e.source == "samplecf")
    n_deduced = len(estimates) - n_sampled
    print(f"\n{n_sampled} SampleCF runs, {n_deduced} deductions, "
          f"total sampling cost {total_cost:.0f} pages")

    # The "w/o deduction" baseline pays a SampleCF run per index.
    baseline = SizeEstimator(db, use_deduction=False)
    base = baseline.estimate_many(targets)
    base_cost = sum(e.cost for e in base.values())
    print(f"without deduction the same batch costs {base_cost:.0f} pages "
          f"({base_cost / max(total_cost, 1):.1f}x)")


if __name__ == "__main__":
    main()
