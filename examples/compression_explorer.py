"""Explore measured compression fractions of the storage substrate.

Builds real (byte-level) indexes over TPC-H lineitem under every codec
and prints the measured compression fraction — the ground truth that
SampleCF estimates from samples.  Also shows the ORD-IND / ORD-DEP split
of Section 4.2: reordering key columns leaves ROW sizes unchanged but
moves PAGE sizes.

Run:  python examples/compression_explorer.py
"""

from repro import CompressionMethod, tpch_database
from repro.storage import IndexKind, SerializedTable, measure_structure


def main() -> None:
    db = tpch_database(scale=0.2)
    lineitem = SerializedTable(db.table("lineitem"))

    print(f"lineitem: {db.table('lineitem').num_rows} rows\n")
    keysets = [
        ("l_shipdate",),
        ("l_shipmode",),
        ("l_shipmode", "l_shipdate"),
        ("l_returnflag", "l_linestatus", "l_shipdate"),
    ]
    methods = list(CompressionMethod)
    header = f"{'index key':42s}" + "".join(f"{m.value:>8s}" for m in methods)
    print(header)
    print("-" * len(header))
    for keys in keysets:
        plain = measure_structure(
            lineitem, IndexKind.SECONDARY, keys
        ).total_bytes
        cells = []
        for method in methods:
            size = measure_structure(
                lineitem, IndexKind.SECONDARY, keys, (), method
            ).total_bytes
            cells.append(f"{size / plain:8.2f}")
        print(f"{'(' + ', '.join(keys) + ')':42s}" + "".join(cells))

    print("\norder dependence (compression fraction by key order):")
    for method in (CompressionMethod.ROW, CompressionMethod.PAGE):
        ab = measure_structure(
            lineitem, IndexKind.SECONDARY,
            ("l_shipmode", "l_shipdate"), (), method,
        ).total_bytes
        ba = measure_structure(
            lineitem, IndexKind.SECONDARY,
            ("l_shipdate", "l_shipmode"), (), method,
        ).total_bytes
        kind = "ORD-DEP" if method.is_order_dependent else "ORD-IND"
        print(f"  {method.value:5s} ({kind}): "
              f"(shipmode, shipdate) {ab / 1024:6.0f} KiB vs "
              f"(shipdate, shipmode) {ba / 1024:6.0f} KiB")


if __name__ == "__main__":
    main()
