"""Update-heavy tuning: why compression must be integrated, not staged.

Reproduces the paper's Example 2 / Section 7.1 anecdote end to end:

1. tune an INSERT-intensive TPC-H workload with the integrated DTAc,
2. tune it with the decoupled strawman (pick indexes ignoring
   compression, then blindly compress everything),
3. validate the integrated recommendation by physically building every
   recommended structure and re-costing with true sizes.

Run:  python examples/insert_intensive.py
"""

from repro.api import Session
from repro.datasets import tpch_database, tpch_workload
from repro.engine import validate_recommendation
from repro.sizeest import SizeEstimator
from repro.stats import DatabaseStats


def main() -> None:
    db = tpch_database(scale=0.2)
    stats = DatabaseStats(db)
    estimator = SizeEstimator(db, stats=stats)

    # Bulk loads weighted 15x: index maintenance dominates.
    workload = tpch_workload(db, select_weight=1.0, insert_weight=15.0)
    budget = db.total_data_bytes() * 0.4

    session = Session(db, workload, budget_bytes=budget,
                      variant="dtac-both", stats=stats)
    integrated = session.tune()
    staged = session.tune_decoupled()

    print("INSERT-intensive TPC-H, budget "
          f"{budget / 1024:.0f} KiB")
    print(f"  integrated DTAc:      {integrated.improvement_pct:6.2f}% "
          "improvement")
    print(f"  decoupled strawman:   {staged.improvement_pct:6.2f}% "
          "improvement")
    compressed = sum(
        1 for ix in integrated.configuration if ix.is_compressed
    )
    total = len(list(integrated.configuration))
    print(f"  DTAc compressed {compressed}/{total} structures "
          "(it avoids compressing hot-update indexes)")

    report = validate_recommendation(
        integrated, db, workload, stats=stats, estimator=estimator
    )
    print("\nvalidation against physically built structures:")
    print(f"  estimated improvement: {report.estimated_improvement:.1%}")
    print(f"  deployed improvement:  {report.true_size_improvement:.1%}")
    print(f"  budget respected:      {report.budget_holds}")
    print(f"  worst size estimate:   {report.max_abs_size_error:.1%} off")


if __name__ == "__main__":
    main()
