"""Submit a tuning job and watch its greedy steps stream live.

Boot the service in one terminal::

    PYTHONPATH=src python -m repro serve --dataset sales --scale 0.05

then run this in another::

    PYTHONPATH=src python examples/job_stream.py \
        --context sales --budget 0.15

It submits a ``tune`` job over ``POST /v1/jobs``, tails the chunked
``/v1/jobs/<id>/events`` stream (one JSON event per greedy step), and
prints the final recommendation once the job lands in ``done``.  Pass
``--cancel-after N`` to cancel the job after the Nth greedy step
instead — the run unwinds at its next progress event and the job ends
``cancelled``.
"""

import argparse
import asyncio
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import AdvisorClient  # noqa: E402


async def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--context", default="sales")
    parser.add_argument("--budget", type=float, default=0.15)
    parser.add_argument("--variant", default="dtac-both")
    parser.add_argument("--cancel-after", type=int, default=None,
                        help="cancel the job after this many greedy "
                             "steps (demonstrates job cancellation)")
    args = parser.parse_args()

    async with AdvisorClient(args.host, args.port) as client:
        await client.wait_ready()
        job = await client.submit_job(
            args.context, kind="tune",
            budget_fraction=args.budget, variant=args.variant,
        )
        print(f"submitted {job['id']} ({job['state']})")

        steps = 0
        async for event in client.stream_events(job["id"]):
            if event["event"] == "state":
                print(f"state -> {event['state']}")
            elif event["event"] == "phase":
                print(f"phase -> {event['phase']}")
            elif event["event"] == "greedy_step":
                steps += 1
                print(f"greedy step {event.get('step_seq', steps):3d} "
                      f"[{event['kind']:7s}] {event['step']}")
                if args.cancel_after is not None \
                        and steps >= args.cancel_after:
                    cancelled = await client.cancel_job(job["id"])
                    print(f"cancel requested ({cancelled['state']})")

        final = await client.job(job["id"])
        print(f"job {final['id']} finished: {final['state']} "
              f"after {final['events']} events")
        if final["state"] == "done":
            result = final["result"]["result"]
            print(f"improvement {100 * result['improvement']:.1f}% "
                  f"({result['base_cost']:.0f} -> "
                  f"{result['final_cost']:.0f})")
            for name in result["configuration"]:
                print(f"  {name}")
        return 0 if final["state"] in ("done", "cancelled") else 1


if __name__ == "__main__":
    raise SystemExit(asyncio.run(main()))
