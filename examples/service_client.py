"""Talk to a running advisor service.

Boot the service in one terminal::

    PYTHONPATH=src python -m repro serve --dataset sales --scale 0.05

then run this client in another::

    PYTHONPATH=src python examples/service_client.py \
        --context sales --budget 0.15

It waits for the service, asks for a size estimate and a what-if cost,
requests a full tuning run, and prints the recommendation (the CI
service-smoke job greps this output for the improvement line).
"""

import argparse
import asyncio
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import AdvisorClient  # noqa: E402


async def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--context", default="sales")
    parser.add_argument("--budget", type=float, default=0.15,
                        help="storage budget as a fraction of raw data")
    parser.add_argument("--variant", default="dtac-both")
    args = parser.parse_args()

    async with AdvisorClient(args.host, args.port) as client:
        health = await client.wait_ready()
        print(f"service ready: contexts {health['contexts']}")

        contexts = await client.contexts()
        ctx = next(
            c for c in contexts["contexts"] if c["name"] == args.context
        )
        fact = "sales" if args.context == "sales" else "lineitem"
        print(f"context {ctx['name']}: {ctx['statements']} statements, "
              f"{ctx['total_data_bytes'] / 1024:.0f} KiB raw")

        date_col = "sa_date" if fact == "sales" else "l_shipdate"
        estimate = await client.estimate_size(
            args.context,
            index={"table": fact, "key_columns": [date_col],
                   "method": "page"},
        )
        print(f"estimate_size {estimate['index']['display_name']}: "
              f"{estimate['est_bytes'] / 1024:.0f} KiB "
              f"({estimate['source']})")

        cost = await client.whatif_cost(
            args.context,
            statement_index=0,
            indexes=[{"table": fact, "key_columns": [date_col]}],
        )
        print(f"whatif_cost statement 0: total {cost['total']:.0f} "
              f"(io {cost['io']:.0f}, cpu {cost['cpu']:.0f})")

        answer = await client.tune(
            args.context,
            budget_fraction=args.budget,
            variant=args.variant,
        )
        result = answer["result"]
        print(f"tune variant {args.variant} at {args.budget:.0%} budget: "
              f"improvement {100 * result['improvement']:.1f}% "
              f"({result['base_cost']:.0f} -> {result['final_cost']:.0f}), "
              f"consumed {result['consumed_bytes'] / 1024:.0f} KiB")
        for name in result["configuration"]:
            print(f"  {name:58s} {result['sizes'][name] / 1024:8.0f} KiB")

        stats = await client.stats()
        coalesced = sum(stats["coalesced"].values())
        print(f"service stats: {sum(stats['completed'].values())} "
              f"completed, {coalesced} coalesced, "
              f"queue depth {stats['queue_depth']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(asyncio.run(main()))
