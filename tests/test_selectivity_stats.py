"""Tests for column statistics and selectivity estimation, cross-checked
against true match counts on the data."""

import pytest

from repro.stats import (
    DatabaseStats,
    TableStats,
    conjunction_selectivity,
    predicate_selectivity,
)
from repro.workload import Between, Comparison, Conjunction, InList


@pytest.fixture(scope="module")
def fact_stats(small_db):
    return TableStats.build(small_db.table("fact"))


class TestTableStats:
    def test_row_counts(self, fact_stats, small_db):
        assert fact_stats.n_rows == small_db.table("fact").num_rows

    def test_distinct_counts(self, fact_stats):
        assert fact_stats.column("f_cat").n_distinct == 8
        assert fact_stats.column("f_dkey").n_distinct == 50

    def test_min_max(self, fact_stats):
        col = fact_stats.column("f_key")
        assert col.min_value == 0
        assert col.max_value == 3999

    def test_avg_stripped_len(self, fact_stats):
        # f_cat values like "CAT_3": 5 bytes stripped.
        assert fact_stats.column("f_cat").avg_stripped_len == pytest.approx(
            5.0
        )

    def test_density(self, fact_stats):
        assert fact_stats.column("f_cat").density == pytest.approx(1 / 8)

    def test_null_handling(self):
        from repro.catalog import Column, INT, Table

        t = Table("n", [Column("a", INT, nullable=True)])
        t.extend_rows([(1,), (None,), (None,)])
        stats = TableStats.build(t)
        assert stats.column("a").n_nulls == 2
        assert stats.column("a").null_fraction == pytest.approx(2 / 3)


class TestSelectivityVsTruth:
    def truth(self, small_db, pred):
        table = small_db.table("fact")
        names = table.column_names
        rows = [dict(zip(names, r)) for r in table.iter_rows()]
        return sum(1 for r in rows if pred.evaluate(r)) / len(rows)

    @pytest.mark.parametrize("pred", [
        Comparison("f_cat", "=", "CAT_3"),
        Comparison("f_qty", "<", 25),
        Comparison("f_qty", ">=", 90),
        Between("f_day", 100, 200),
        InList("f_cat", ("CAT_0", "CAT_1")),
    ])
    def test_close_to_truth(self, small_db, fact_stats, pred):
        est = predicate_selectivity(fact_stats, pred)
        truth = self.truth(small_db, pred)
        assert est == pytest.approx(truth, abs=0.05)

    def test_conjunction_independence(self, fact_stats):
        p1 = Comparison("f_cat", "=", "CAT_3")
        p2 = Comparison("f_qty", "<", 50)
        combined = conjunction_selectivity(fact_stats, (p1, p2))
        assert combined == pytest.approx(
            predicate_selectivity(fact_stats, p1)
            * predicate_selectivity(fact_stats, p2)
        )

    def test_conjunction_object(self, fact_stats):
        c = Conjunction(
            (Comparison("f_qty", "<", 50), Comparison("f_day", "<", 180))
        )
        assert 0.0 < predicate_selectivity(fact_stats, c) < 0.5

    def test_not_equal(self, fact_stats):
        p = Comparison("f_cat", "!=", "CAT_3")
        assert predicate_selectivity(fact_stats, p) == pytest.approx(
            1 - predicate_selectivity(fact_stats,
                                      Comparison("f_cat", "=", "CAT_3"))
        )


class TestDatabaseStats:
    def test_lazy_and_cached(self, small_db):
        stats = DatabaseStats(small_db)
        a = stats.table("fact")
        assert stats.table("fact") is a

    def test_invalidate(self, small_db):
        stats = DatabaseStats(small_db)
        a = stats.table("fact")
        stats.invalidate("fact")
        assert stats.table("fact") is not a

    def test_invalidate_all(self, small_db):
        stats = DatabaseStats(small_db)
        a = stats.table("dim")
        stats.invalidate()
        assert stats.table("dim") is not a
