"""Tests for column statistics and selectivity estimation, cross-checked
against true match counts on the data — plus the stats-layer selectivity
memo (hit/miss counters, and cost equivalence with the memo on vs off)."""

import pytest

from repro.stats import (
    DatabaseStats,
    TableStats,
    conjunction_selectivity,
    predicate_selectivity,
    reset_selectivity_memo_stats,
    selectivity_memo_stats,
    set_selectivity_memo,
)
from repro.workload import Between, Comparison, Conjunction, InList


@pytest.fixture(scope="module")
def fact_stats(small_db):
    return TableStats.build(small_db.table("fact"))


class TestTableStats:
    def test_row_counts(self, fact_stats, small_db):
        assert fact_stats.n_rows == small_db.table("fact").num_rows

    def test_distinct_counts(self, fact_stats):
        assert fact_stats.column("f_cat").n_distinct == 8
        assert fact_stats.column("f_dkey").n_distinct == 50

    def test_min_max(self, fact_stats):
        col = fact_stats.column("f_key")
        assert col.min_value == 0
        assert col.max_value == 3999

    def test_avg_stripped_len(self, fact_stats):
        # f_cat values like "CAT_3": 5 bytes stripped.
        assert fact_stats.column("f_cat").avg_stripped_len == pytest.approx(
            5.0
        )

    def test_density(self, fact_stats):
        assert fact_stats.column("f_cat").density == pytest.approx(1 / 8)

    def test_null_handling(self):
        from repro.catalog import Column, INT, Table

        t = Table("n", [Column("a", INT, nullable=True)])
        t.extend_rows([(1,), (None,), (None,)])
        stats = TableStats.build(t)
        assert stats.column("a").n_nulls == 2
        assert stats.column("a").null_fraction == pytest.approx(2 / 3)


class TestSelectivityVsTruth:
    def truth(self, small_db, pred):
        table = small_db.table("fact")
        names = table.column_names
        rows = [dict(zip(names, r)) for r in table.iter_rows()]
        return sum(1 for r in rows if pred.evaluate(r)) / len(rows)

    @pytest.mark.parametrize("pred", [
        Comparison("f_cat", "=", "CAT_3"),
        Comparison("f_qty", "<", 25),
        Comparison("f_qty", ">=", 90),
        Between("f_day", 100, 200),
        InList("f_cat", ("CAT_0", "CAT_1")),
    ])
    def test_close_to_truth(self, small_db, fact_stats, pred):
        est = predicate_selectivity(fact_stats, pred)
        truth = self.truth(small_db, pred)
        assert est == pytest.approx(truth, abs=0.05)

    def test_conjunction_independence(self, fact_stats):
        p1 = Comparison("f_cat", "=", "CAT_3")
        p2 = Comparison("f_qty", "<", 50)
        combined = conjunction_selectivity(fact_stats, (p1, p2))
        assert combined == pytest.approx(
            predicate_selectivity(fact_stats, p1)
            * predicate_selectivity(fact_stats, p2)
        )

    def test_conjunction_object(self, fact_stats):
        c = Conjunction(
            (Comparison("f_qty", "<", 50), Comparison("f_day", "<", 180))
        )
        assert 0.0 < predicate_selectivity(fact_stats, c) < 0.5

    def test_not_equal(self, fact_stats):
        p = Comparison("f_cat", "!=", "CAT_3")
        assert predicate_selectivity(fact_stats, p) == pytest.approx(
            1 - predicate_selectivity(fact_stats,
                                      Comparison("f_cat", "=", "CAT_3"))
        )


@pytest.fixture
def memo_guard():
    """Restore the global memo switch and counters after a test."""
    yield
    set_selectivity_memo(True)
    reset_selectivity_memo_stats()


class TestSelectivityMemo:
    def test_hit_miss_counters(self, fact_stats, memo_guard):
        pred = Comparison("f_qty", "<", 42)
        stats = fact_stats
        stats.selectivity_memo.clear()
        reset_selectivity_memo_stats()
        first = predicate_selectivity(stats, pred)
        counters = selectivity_memo_stats()
        assert counters["misses"] >= 1
        hits_before = counters["hits"]
        second = predicate_selectivity(stats, pred)
        assert second == first
        assert selectivity_memo_stats()["hits"] == hits_before + 1

    def test_conjunction_memo_counts(self, fact_stats, memo_guard):
        preds = (
            Comparison("f_qty", "<", 42),
            Comparison("f_cat", "=", "CAT_3"),
        )
        fact_stats.conjunction_memo.clear()
        fact_stats.selectivity_memo.clear()
        reset_selectivity_memo_stats()
        first = conjunction_selectivity(fact_stats, preds)
        hits_before = selectivity_memo_stats()["hits"]
        assert conjunction_selectivity(fact_stats, preds) == first
        assert selectivity_memo_stats()["hits"] == hits_before + 1
        assert preds in fact_stats.conjunction_memo

    def test_disabled_memo_stores_nothing(self, fact_stats, memo_guard):
        set_selectivity_memo(False)
        fact_stats.selectivity_memo.clear()
        fact_stats.conjunction_memo.clear()
        pred = Comparison("f_day", ">", 100)
        value = predicate_selectivity(fact_stats, pred)
        assert fact_stats.selectivity_memo == {}
        set_selectivity_memo(True)
        assert predicate_selectivity(fact_stats, pred) == value

    @pytest.mark.parametrize("pred", [
        Comparison("f_cat", "=", "CAT_3"),
        Comparison("f_qty", ">=", 90),
        Between("f_day", 100, 200),
        InList("f_cat", ("CAT_0", "CAT_1")),
        Conjunction((Comparison("f_qty", "<", 50),
                     Comparison("f_day", "<", 180))),
    ])
    def test_memo_on_off_identical(self, small_db, pred, memo_guard):
        """The memo must never move a float: identical selectivities
        with memoization on vs off, from fresh stats each way."""
        set_selectivity_memo(False)
        off = predicate_selectivity(
            TableStats.build(small_db.table("fact")), pred
        )
        set_selectivity_memo(True)
        stats = TableStats.build(small_db.table("fact"))
        on_cold = predicate_selectivity(stats, pred)
        on_warm = predicate_selectivity(stats, pred)
        assert off == on_cold == on_warm

    def test_workload_costs_identical_memo_on_off(self, memo_guard):
        """End-to-end equivalence under ``cost_access``'s hot loop: the
        whole workload's what-if costs are bit-identical with the memo
        on vs off, and the memoized pass actually hits."""
        from repro.datasets.sales import sales_database, sales_workload
        from repro.optimizer.whatif import WhatIfOptimizer

        db = sales_database(scale=0.02)
        wl = sales_workload(db)

        def costs():
            stats = DatabaseStats(db)
            whatif = WhatIfOptimizer(db, stats)
            from repro.physical import Configuration, IndexDef
            from repro.storage.index_build import IndexKind

            base = Configuration(
                IndexDef(t.name, (), kind=IndexKind.HEAP)
                for t in db.tables
            )
            sales_cols = db.table("sales").column_names
            grown = base.add(
                IndexDef("sales", (sales_cols[4],),
                         kind=IndexKind.SECONDARY)
            )
            return [
                whatif.workload_cost(wl, base),
                whatif.workload_cost(wl, grown),
            ]

        set_selectivity_memo(False)
        off = costs()
        set_selectivity_memo(True)
        reset_selectivity_memo_stats()
        on = costs()
        assert on == off
        assert selectivity_memo_stats()["hits"] > 0


class TestDatabaseStats:
    def test_lazy_and_cached(self, small_db):
        stats = DatabaseStats(small_db)
        a = stats.table("fact")
        assert stats.table("fact") is a

    def test_invalidate(self, small_db):
        stats = DatabaseStats(small_db)
        a = stats.table("fact")
        stats.invalidate("fact")
        assert stats.table("fact") is not a

    def test_invalidate_all(self, small_db):
        stats = DatabaseStats(small_db)
        a = stats.table("dim")
        stats.invalidate()
        assert stats.table("dim") is not a
