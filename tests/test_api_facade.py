"""The ``repro.api`` facade and the deprecation shims around it.

The contract: ``Session`` is the one public entry point (tune / retune
/ tune_decoupled / sweep over owned context); the historical free
functions remain importable from their old homes as PEP 562 shims that
warn and return the *same object* (byte-identical behaviour by
construction); and ``repro.api`` re-exports that object un-deprecated.
"""

import warnings

import pytest

import repro
import repro.advisor
import repro.advisor.advisor as advisor_mod
import repro.advisor.sweep as sweep_mod
from repro.api import Session, run_sweep, tune, tune_decoupled
from repro.datasets.sales import sales_database, sales_workload
from repro.errors import AdvisorError


@pytest.fixture(scope="module")
def inputs():
    db = sales_database(scale=0.02)
    return db, sales_workload(db)


def _deprecated(module, name):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        got = getattr(module, name)
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    ), f"{module.__name__}.{name} did not warn"
    return got


class TestShims:
    def test_shims_are_the_same_objects(self):
        """Byte-identical by construction: every deprecated path hands
        back the exact function the facade exports."""
        assert _deprecated(advisor_mod, "tune") is tune
        assert _deprecated(advisor_mod, "tune_decoupled") is tune_decoupled
        assert _deprecated(sweep_mod, "run_sweep") is run_sweep
        # ... and the package-level re-exports forward to the same.
        assert _deprecated(repro.advisor, "tune") is tune
        assert _deprecated(repro.advisor, "run_sweep") is run_sweep
        assert _deprecated(repro, "tune") is tune
        assert _deprecated(repro, "tune_decoupled") is tune_decoupled
        assert _deprecated(repro, "run_sweep") is run_sweep

    def test_api_exports_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.api import run_sweep, tune, tune_decoupled  # noqa: F401, F811

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            advisor_mod.no_such_name
        with pytest.raises(AttributeError):
            sweep_mod.no_such_name


class TestSession:
    def test_session_tune_matches_functional_form(self, inputs):
        """A fresh session's cold tune is byte-identical to the
        functional entry point on the same inputs."""
        db, wl = inputs
        budget = db.total_data_bytes() * 0.15
        via_session = Session(db, wl, variant="dtac-none").tune(budget)
        direct = tune(db, wl, budget, variant="dtac-none")
        assert sorted(ix.display_name()
                      for ix in via_session.configuration) == \
            sorted(ix.display_name() for ix in direct.configuration)
        assert via_session.final_cost == direct.final_cost
        assert via_session.steps == direct.steps

    def test_session_owns_budget_and_advances_generation(self, inputs):
        db, wl = inputs
        session = Session(db, wl, budget_fraction=0.15,
                          variant="dtac-none")
        assert session.generation == 0
        result = session.tune()
        assert session.generation == 1
        assert session.configuration is result.configuration
        delta = session.retune()
        assert session.generation == 2
        assert delta.generation == 2
        assert delta.previous_configuration is result.configuration

    def test_budget_validation(self, inputs):
        db, wl = inputs
        with pytest.raises(AdvisorError, match="not both"):
            Session(db, wl, budget_bytes=1.0, budget_fraction=0.1)
        with pytest.raises(AdvisorError, match="no budget"):
            Session(db, wl, variant="dtac-none").tune()
        with pytest.raises(AdvisorError, match="no workload"):
            Session(db, budget_fraction=0.1).tune()

    def test_sweep_and_decoupled_do_not_advance_session(self, inputs):
        db, wl = inputs
        session = Session(db, wl, budget_fraction=0.15,
                          variant="dtac-none")
        budget = db.total_data_bytes() * 0.15
        sweep = session.sweep([budget])
        assert len(sweep.runs) == 1
        staged = session.tune_decoupled()
        assert staged.configuration is not None
        assert session.configuration is None
        assert session.generation == 0
