"""Regression tests for the what-if cost cache signature — in-memory
and persistent.

The cache key must distinguish hypothetical configurations that differ
*only* in compression method — aliasing them would let e.g. a PAGE
variant replay a NONE variant's cached cost, silently hiding the
decompression CPU and compressed-size I/O differences the whole paper
is about.  The persistent :class:`CostCache` layer must uphold the same
guarantee across processes, and additionally key on each structure's
estimated size so an entry can never be replayed against different
estimates.  Also covers the batched costing APIs.
"""

import pytest

from repro.compression import CompressionMethod
from repro.optimizer import WhatIfOptimizer
from repro.parallel import CostCache
from repro.physical import Configuration, IndexDef
from repro.storage import IndexKind
from repro.workload import parse_query


@pytest.fixture()
def query():
    q = parse_query(
        "SELECT f_qty FROM fact WHERE f_cat = 'CAT_3'"
    )
    return q


@pytest.fixture()
def whatif(small_db, small_stats):
    # Wire sizes that shrink with compression so method changes move
    # both I/O and CPU terms.
    fractions = {
        CompressionMethod.NONE: 1.0,
        CompressionMethod.ROW: 0.6,
        CompressionMethod.PAGE: 0.35,
    }

    def sizes(index):
        rows = small_db.table(index.table).num_rows
        width = 8 * max(1, len(index.column_sequence))
        return (rows * width * fractions[index.method], float(rows))

    return WhatIfOptimizer(small_db, small_stats, sizes=sizes)


def _base(db):
    return Configuration(
        IndexDef(t.name, (), kind=IndexKind.HEAP) for t in db.tables
    )


class TestMethodNeverAliases:
    def test_distinct_cache_entries_per_method(self, small_db, whatif, query):
        base = _base(small_db)
        configs = [
            base.add(
                IndexDef(
                    "fact", ("f_cat",), included_columns=("f_qty",),
                    method=method,
                )
            )
            for method in (CompressionMethod.NONE, CompressionMethod.ROW,
                           CompressionMethod.PAGE)
        ]
        signatures = {whatif._signature(query, c) for c in configs}
        assert len(signatures) == len(configs)

        costs = [whatif.cost(query, c).total for c in configs]
        # One fresh computation (and one fresh entry) per method.
        assert whatif.optimizer_calls == len(configs)
        assert whatif.cache_entries == len(configs)
        # Covering-index scan: smaller compressed footprint, extra
        # decompression CPU — the totals must genuinely differ.
        assert len(set(costs)) == len(costs)

    def test_base_structure_method_not_aliased(self, small_db, whatif, query):
        heap = IndexDef("fact", (), kind=IndexKind.HEAP)
        for method in (CompressionMethod.NONE, CompressionMethod.ROW,
                       CompressionMethod.PAGE):
            whatif.cost(query, _base(small_db).add(heap.with_method(method)))
        assert whatif.optimizer_calls == 3

    def test_repeat_lookup_hits(self, small_db, whatif, query):
        config = _base(small_db).add(
            IndexDef("fact", ("f_cat",), method=CompressionMethod.PAGE)
        )
        first = whatif.cost(query, config)
        again = whatif.cost(query, config)
        assert again is first
        assert whatif.optimizer_calls == 1


def _method_config(db, method):
    return _base(db).add(
        IndexDef(
            "fact", ("f_cat",), included_columns=("f_qty",), method=method,
        )
    )


def _sized_whatif(small_db, small_stats, cost_cache):
    """A WhatIfOptimizer with method-sensitive sizes and a persistent
    cost cache under a fixed context fingerprint."""
    fractions = {
        CompressionMethod.NONE: 1.0,
        CompressionMethod.ROW: 0.6,
        CompressionMethod.PAGE: 0.35,
    }

    def sizes(index):
        rows = small_db.table(index.table).num_rows
        width = 8 * max(1, len(index.column_sequence))
        return (rows * width * fractions[index.method], float(rows))

    return WhatIfOptimizer(
        small_db, small_stats, sizes=sizes,
        cost_cache=cost_cache, cost_context="test-ctx",
    )


class TestPersistentLayerNeverAliases:
    """The satellite guarantee: two runs with different compression
    methods but identical index sets never share a persisted entry."""

    def test_key_distinguishes_method_sizes_and_context(self, query):
        row = IndexDef("fact", ("f_cat",), method=CompressionMethod.ROW)
        page = row.with_method(CompressionMethod.PAGE)
        keys = {
            CostCache.key(query, [(row, 100.0, 10.0)], "ctx"),
            # same structure shape, different method
            CostCache.key(query, [(page, 100.0, 10.0)], "ctx"),
            # same index, different estimated size (e.g. another seed)
            CostCache.key(query, [(row, 200.0, 10.0)], "ctx"),
            CostCache.key(query, [(row, 100.0, 20.0)], "ctx"),
            # same everything, different run context
            CostCache.key(query, [(row, 100.0, 10.0)], "ctx2"),
        }
        assert len(keys) == 5

    def test_method_never_aliases_across_processes(
        self, small_db, small_stats, query, tmp_path
    ):
        first = _sized_whatif(
            small_db, small_stats, CostCache(tmp_path)
        )
        row_cost = first.cost(
            query, _method_config(small_db, CompressionMethod.ROW)
        ).total
        first.cost_cache.save()

        # A second sweep (fresh process simulated by fresh objects) with
        # the same index set but PAGE compression: must *miss* and
        # recompute, never replay the ROW entry.
        second = _sized_whatif(
            small_db, small_stats, CostCache(tmp_path)
        )
        page_cost = second.cost(
            query, _method_config(small_db, CompressionMethod.PAGE)
        ).total
        assert second.cost_cache.hits == 0
        assert second.cost_cache.misses == 1
        assert second.optimizer_calls == 1
        assert page_cost != row_cost

    def test_identical_request_replays_exactly(
        self, small_db, small_stats, query, tmp_path
    ):
        config = _method_config(small_db, CompressionMethod.PAGE)
        first = _sized_whatif(small_db, small_stats, CostCache(tmp_path))
        computed = first.cost(query, config)
        first.cost_cache.save()

        warm = _sized_whatif(small_db, small_stats, CostCache(tmp_path))
        replayed = warm.cost(query, config)
        assert warm.cost_cache.hits == 1
        assert warm.optimizer_calls == 0
        assert replayed.total == computed.total
        assert replayed.io == computed.io
        assert replayed.cpu == computed.cpu
        assert replayed.used_mv == computed.used_mv

    def test_size_change_invalidates_entry(
        self, small_db, small_stats, query, tmp_path
    ):
        config = _method_config(small_db, CompressionMethod.PAGE)
        first = _sized_whatif(small_db, small_stats, CostCache(tmp_path))
        first.cost(query, config)
        first.cost_cache.save()

        # Same structures, same context string, but the size lookup now
        # returns different estimates: the sized keys diverge, so the
        # stale cost can never be replayed.
        warm = _sized_whatif(small_db, small_stats, CostCache(tmp_path))
        original_sizes = warm._sizes
        warm._sizes = lambda ix: tuple(v * 2 for v in original_sizes(ix))
        warm.cost(query, config)
        assert warm.cost_cache.hits == 0
        assert warm.optimizer_calls == 1


class TestBatchedAPIs:
    def test_cost_batch_matches_singles(self, small_db, whatif, query):
        base = _base(small_db)
        configs = [
            base,
            base.add(IndexDef("fact", ("f_cat",),
                              method=CompressionMethod.ROW)),
            base.add(IndexDef("fact", ("f_cat",),
                              method=CompressionMethod.PAGE)),
        ]
        batched = whatif.cost_batch(query, configs)
        assert [b.total for b in batched] == [
            whatif.cost(query, c).total for c in configs
        ]

    def test_workload_cost_batch_matches_singles(self, small_db, small_stats):
        from repro.workload import Workload

        wl = Workload()
        wl.add(parse_query("SELECT f_qty FROM fact WHERE f_cat = 'CAT_1'"))
        wl.add(parse_query("SELECT f_price FROM fact WHERE f_day > 100"))
        whatif = WhatIfOptimizer(small_db, small_stats)
        base = _base(small_db)
        configs = [
            base,
            base.add(IndexDef("fact", ("f_day",),
                              method=CompressionMethod.ROW)),
        ]
        batch = whatif.workload_cost_batch(wl, configs)
        assert batch == [whatif.workload_cost(wl, c) for c in configs]
