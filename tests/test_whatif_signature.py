"""Regression tests for the what-if cost cache signature.

The cache key must distinguish hypothetical configurations that differ
*only* in compression method — aliasing them would let e.g. a PAGE
variant replay a NONE variant's cached cost, silently hiding the
decompression CPU and compressed-size I/O differences the whole paper
is about.  Also covers the batched costing APIs.
"""

import pytest

from repro.compression import CompressionMethod
from repro.optimizer import WhatIfOptimizer
from repro.physical import Configuration, IndexDef
from repro.storage import IndexKind
from repro.workload import parse_query


@pytest.fixture()
def query():
    q = parse_query(
        "SELECT f_qty FROM fact WHERE f_cat = 'CAT_3'"
    )
    return q


@pytest.fixture()
def whatif(small_db, small_stats):
    # Wire sizes that shrink with compression so method changes move
    # both I/O and CPU terms.
    fractions = {
        CompressionMethod.NONE: 1.0,
        CompressionMethod.ROW: 0.6,
        CompressionMethod.PAGE: 0.35,
    }

    def sizes(index):
        rows = small_db.table(index.table).num_rows
        width = 8 * max(1, len(index.column_sequence))
        return (rows * width * fractions[index.method], float(rows))

    return WhatIfOptimizer(small_db, small_stats, sizes=sizes)


def _base(db):
    return Configuration(
        IndexDef(t.name, (), kind=IndexKind.HEAP) for t in db.tables
    )


class TestMethodNeverAliases:
    def test_distinct_cache_entries_per_method(self, small_db, whatif, query):
        base = _base(small_db)
        configs = [
            base.add(
                IndexDef(
                    "fact", ("f_cat",), included_columns=("f_qty",),
                    method=method,
                )
            )
            for method in (CompressionMethod.NONE, CompressionMethod.ROW,
                           CompressionMethod.PAGE)
        ]
        signatures = {whatif._signature(query, c) for c in configs}
        assert len(signatures) == len(configs)

        costs = [whatif.cost(query, c).total for c in configs]
        # One fresh computation (and one fresh entry) per method.
        assert whatif.optimizer_calls == len(configs)
        assert whatif.cache_entries == len(configs)
        # Covering-index scan: smaller compressed footprint, extra
        # decompression CPU — the totals must genuinely differ.
        assert len(set(costs)) == len(costs)

    def test_base_structure_method_not_aliased(self, small_db, whatif, query):
        heap = IndexDef("fact", (), kind=IndexKind.HEAP)
        for method in (CompressionMethod.NONE, CompressionMethod.ROW,
                       CompressionMethod.PAGE):
            whatif.cost(query, _base(small_db).add(heap.with_method(method)))
        assert whatif.optimizer_calls == 3

    def test_repeat_lookup_hits(self, small_db, whatif, query):
        config = _base(small_db).add(
            IndexDef("fact", ("f_cat",), method=CompressionMethod.PAGE)
        )
        first = whatif.cost(query, config)
        again = whatif.cost(query, config)
        assert again is first
        assert whatif.optimizer_calls == 1


class TestBatchedAPIs:
    def test_cost_batch_matches_singles(self, small_db, whatif, query):
        base = _base(small_db)
        configs = [
            base,
            base.add(IndexDef("fact", ("f_cat",),
                              method=CompressionMethod.ROW)),
            base.add(IndexDef("fact", ("f_cat",),
                              method=CompressionMethod.PAGE)),
        ]
        batched = whatif.cost_batch(query, configs)
        assert [b.total for b in batched] == [
            whatif.cost(query, c).total for c in configs
        ]

    def test_workload_cost_batch_matches_singles(self, small_db, small_stats):
        from repro.workload import Workload

        wl = Workload()
        wl.add(parse_query("SELECT f_qty FROM fact WHERE f_cat = 'CAT_1'"))
        wl.add(parse_query("SELECT f_price FROM fact WHERE f_day > 100"))
        whatif = WhatIfOptimizer(small_db, small_stats)
        base = _base(small_db)
        configs = [
            base,
            base.add(IndexDef("fact", ("f_day",),
                              method=CompressionMethod.ROW)),
        ]
        batch = whatif.workload_cost_batch(wl, configs)
        assert batch == [whatif.workload_cost(wl, c) for c in configs]
