"""Tests for the toy execution engine against hand-computed truths."""

import pytest

from repro.engine import Executor
from repro.errors import ExecutionError
from repro.workload import parse_query


@pytest.fixture(scope="module")
def executor(small_db):
    return Executor(small_db)


class TestScanFilter:
    def test_full_scan_count(self, executor, small_db):
        rs = executor.execute(parse_query("SELECT f_key FROM fact"))
        assert len(rs) == small_db.table("fact").num_rows

    def test_filter(self, executor, small_db):
        rs = executor.execute(
            parse_query("SELECT f_key FROM fact WHERE f_qty < 10")
        )
        truth = sum(
            1 for v in small_db.table("fact").column_values("f_qty")
            if v < 10
        )
        assert len(rs) == truth

    def test_count_matching(self, executor):
        q = parse_query("SELECT f_key FROM fact WHERE f_cat = 'CAT_1'")
        assert executor.count_matching(q) == len(executor.execute(q))


class TestAggregation:
    def test_count_star(self, executor, small_db):
        rs = executor.execute(parse_query("SELECT COUNT(*) FROM fact"))
        assert rs.rows == [(small_db.table("fact").num_rows,)]

    def test_sum(self, executor, small_db):
        rs = executor.execute(parse_query("SELECT SUM(f_qty) FROM fact"))
        assert rs.rows[0][0] == sum(
            small_db.table("fact").column_values("f_qty")
        )

    def test_group_by(self, executor, small_db):
        rs = executor.execute(
            parse_query("SELECT f_cat, COUNT(*) FROM fact GROUP BY f_cat")
        )
        counts = dict(rs.rows)
        values = small_db.table("fact").column_values("f_cat")
        for cat in set(values):
            assert counts[cat] == values.count(cat)

    def test_min_max(self, executor, small_db):
        rs = executor.execute(
            parse_query("SELECT MIN(f_qty), MAX(f_qty) FROM fact")
        )
        values = small_db.table("fact").column_values("f_qty")
        assert rs.rows == [(min(values), max(values))]

    def test_sum_product(self, executor, small_db):
        rs = executor.execute(
            parse_query("SELECT SUM(f_qty * f_price) FROM fact")
        )
        fact = small_db.table("fact")
        truth = sum(
            q * p
            for q, p in zip(fact.column_values("f_qty"),
                            fact.column_values("f_price"))
        )
        assert rs.rows[0][0] == truth

    def test_non_grouped_projection_rejected(self, executor):
        q = parse_query("SELECT f_cat, COUNT(*) FROM fact GROUP BY f_day")
        with pytest.raises(ExecutionError):
            executor.execute(q)


class TestJoins:
    def test_join_cardinality(self, executor, small_db):
        rs = executor.execute(
            parse_query(
                "SELECT f_key FROM fact JOIN dim ON f_dkey = d_key"
            )
        )
        assert len(rs) == small_db.table("fact").num_rows

    def test_join_filter_on_dim(self, executor, small_db):
        rs = executor.execute(
            parse_query(
                "SELECT f_key FROM fact JOIN dim ON f_dkey = d_key "
                "WHERE d_group = 'G1'"
            )
        )
        dim = small_db.table("dim")
        g1_keys = {
            k for k, g in zip(dim.column_values("d_key"),
                              dim.column_values("d_group"))
            if g == "G1"
        }
        truth = sum(
            1 for v in small_db.table("fact").column_values("f_dkey")
            if v in g1_keys
        )
        assert len(rs) == truth

    def test_join_group(self, executor):
        rs = executor.execute(
            parse_query(
                "SELECT d_group, SUM(f_qty) FROM fact "
                "JOIN dim ON f_dkey = d_key GROUP BY d_group"
            )
        )
        assert len(rs) == 5  # d_group has G0..G4


class TestOrdering:
    def test_order_by(self, executor):
        rs = executor.execute(
            parse_query(
                "SELECT f_day, COUNT(*) FROM fact GROUP BY f_day "
                "ORDER BY f_day"
            )
        )
        days = [r[0] for r in rs.rows]
        assert days == sorted(days)

    def test_as_dicts(self, executor):
        rs = executor.execute(
            parse_query("SELECT f_cat, COUNT(*) FROM fact GROUP BY f_cat")
        )
        d = rs.as_dicts()[0]
        assert set(d) == {"f_cat", "count(*)"}
