"""Tests for equi-depth histograms."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import StatisticsError
from repro.stats import EquiDepthHistogram


class TestBuild:
    def test_empty(self):
        h = EquiDepthHistogram.build([])
        assert h.total == 0
        assert h.selectivity_eq(5) == 0.0
        assert h.selectivity_range(1, 2) == 0.0

    def test_invalid_buckets(self):
        with pytest.raises(StatisticsError):
            EquiDepthHistogram.build([1], n_buckets=0)

    def test_bucket_counts_sum_to_total(self):
        data = list(range(1000))
        h = EquiDepthHistogram.build(data, 16)
        assert sum(b.count for b in h.buckets) == 1000

    def test_buckets_roughly_equal_depth(self):
        data = list(range(1000))
        h = EquiDepthHistogram.build(data, 10)
        counts = [b.count for b in h.buckets]
        assert max(counts) - min(counts) <= 2

    def test_fewer_values_than_buckets(self):
        h = EquiDepthHistogram.build([1, 2], 32)
        assert h.total == 2


class TestEquality:
    def test_uniform_eq(self):
        data = [i % 10 for i in range(1000)]
        h = EquiDepthHistogram.build(data, 8)
        assert h.selectivity_eq(3) == pytest.approx(0.1, rel=0.5)

    def test_missing_value_out_of_domain(self):
        h = EquiDepthHistogram.build(list(range(100)), 8)
        assert h.selectivity_eq(1000) == 0.0

    def test_heavy_hitter(self):
        data = [0] * 900 + list(range(1, 101))
        h = EquiDepthHistogram.build(data, 16)
        assert h.selectivity_eq(0) > 0.5


class TestRange:
    def test_full_range(self):
        h = EquiDepthHistogram.build(list(range(100)), 8)
        assert h.selectivity_range(None, None) == pytest.approx(1.0)

    def test_half_range(self):
        h = EquiDepthHistogram.build(list(range(1000)), 16)
        assert h.selectivity_range(None, 499) == pytest.approx(0.5, abs=0.06)

    def test_open_lower(self):
        h = EquiDepthHistogram.build(list(range(1000)), 16)
        assert h.selectivity_range(900, None) == pytest.approx(0.1, abs=0.05)

    def test_narrow_range(self):
        h = EquiDepthHistogram.build(list(range(1000)), 16)
        sel = h.selectivity_range(100, 110)
        assert 0.0 < sel < 0.1

    def test_string_ranges(self):
        data = [f"k{i:03d}" for i in range(100)]
        h = EquiDepthHistogram.build(data, 8)
        sel = h.selectivity_range("k000", "k049")
        assert sel == pytest.approx(0.5, abs=0.2)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=300),
           st.integers(0, 1000), st.integers(0, 1000))
    def test_selectivity_bounds(self, data, lo, hi):
        h = EquiDepthHistogram.build(data, 8)
        sel = h.selectivity_range(min(lo, hi), max(lo, hi))
        assert 0.0 <= sel <= 1.0

    def test_monotonic_in_range_width(self):
        rng = random.Random(0)
        data = [rng.randrange(500) for _ in range(2000)]
        h = EquiDepthHistogram.build(data, 16)
        sels = [h.selectivity_range(100, hi) for hi in (150, 250, 400)]
        assert sels == sorted(sels)

    def test_accuracy_against_truth(self):
        rng = random.Random(42)
        data = [rng.randrange(1000) for _ in range(5000)]
        h = EquiDepthHistogram.build(data, 32)
        truth = sum(1 for v in data if 200 <= v <= 600) / len(data)
        assert h.selectivity_range(200, 600) == pytest.approx(truth, abs=0.05)
