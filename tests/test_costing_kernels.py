"""The costing-kernel identity contract: the numpy batch backend, the
pure-python fallback, and the pre-kernel scalar path must agree on every
recommendation **to the float** — across backends, hash seeds, and
worker counts.  Also covers backend resolution (``auto``/``numpy``/
``python``) and the ``REPRO_DISABLE_NUMPY`` escape hatch."""

import os
import subprocess
import sys

import pytest

from repro.api import tune
from repro.datasets import sales_database, sales_workload
from repro.errors import OptimizerError
from repro.optimizer.kernels import (
    KERNEL_BACKENDS,
    NUMPY_MIN_LANES,
    numpy_module,
    resolve_backend,
)
from repro.parallel.engine import fork_available

HAVE_NUMPY = numpy_module() is not None


@pytest.fixture(scope="module")
def tuning_inputs():
    db = sales_database(scale=0.04)
    wl = sales_workload(db)
    return db, wl, db.total_data_bytes() * 0.15


def _fingerprint(result):
    """Everything the identity contract promises, float-exact."""
    return (
        result.configuration,
        result.final_cost,
        result.base_cost,
        result.consumed_bytes,
        result.steps,
    )


class TestBackendResolution:
    def test_python_backend_always_available(self):
        kernel = resolve_backend("python")
        assert kernel.backend == "python"
        assert kernel.stats()["backend"] == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(OptimizerError, match="unknown kernel backend"):
            resolve_backend("cuda")
        assert "auto" in KERNEL_BACKENDS

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
    def test_auto_prefers_numpy_when_present(self):
        assert resolve_backend("auto").backend == "numpy"

    def test_disable_env_hides_numpy_from_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        assert numpy_module() is None
        assert resolve_backend("auto").backend == "python"

    def test_disable_env_makes_explicit_numpy_fail_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        with pytest.raises(OptimizerError, match="numpy is not"):
            resolve_backend("numpy")


class TestKernelIdentity:
    """Backends may differ in speed, never in a single float."""

    def test_python_kernel_matches_auto(self, tuning_inputs):
        db, wl, budget = tuning_inputs
        auto = tune(db, wl, budget, variant="dtac-both")
        forced = tune(db, wl, budget, variant="dtac-both", kernel="python")
        assert _fingerprint(forced) == _fingerprint(auto)
        assert forced.kernel_stats["backend"] == "python"
        assert forced.kernel_stats["batches_numpy"] == 0
        assert forced.kernel_stats["lanes_total"] > 0

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
    def test_numpy_matches_python_to_the_float(self, tuning_inputs):
        db, wl, budget = tuning_inputs
        vec = tune(db, wl, budget, variant="dtac-both", kernel="numpy")
        ref = tune(db, wl, budget, variant="dtac-both", kernel="python")
        assert _fingerprint(vec) == _fingerprint(ref)
        assert vec.final_cost == ref.final_cost  # float-exact, not approx
        assert vec.kernel_stats["backend"] == "numpy"
        # The array path must actually have run, or the test is vacuous.
        assert vec.kernel_stats["batches_numpy"] > 0

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
    def test_numpy_matches_with_delta_costing_off(self, tuning_inputs):
        """Full-recost sweeps push whole candidate sets through
        batch_access_plans — the widest lanes the kernel ever sees."""
        db, wl, budget = tuning_inputs
        vec = tune(db, wl, budget, variant="dtac-both", kernel="numpy",
                   delta_costing=False)
        ref = tune(db, wl, budget, variant="dtac-both", kernel="python",
                   delta_costing=False)
        assert _fingerprint(vec) == _fingerprint(ref)

    def test_small_batches_use_scalar_loop_even_on_numpy(self):
        """Below NUMPY_MIN_LANES the numpy backend itself falls back to
        the scalar loop — same floats either way, fewer cycles."""
        kernel = resolve_backend("python")
        assert kernel.batch_access_plans([], None, None) == []
        assert kernel.batches_scalar == 1
        assert NUMPY_MIN_LANES > 1

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_workers_two_identical_across_backends(self, tuning_inputs,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        db, wl, budget = tuning_inputs
        seq = tune(db, wl, budget, variant="dtac-both", workers=1,
                   kernel="python")
        par = tune(db, wl, budget, variant="dtac-both", workers=2)
        assert _fingerprint(par) == _fingerprint(seq)
        assert par.engine_stats["parallel_maps"] > 0


_HASHSEED_SCRIPT = """\
from repro.api import tune
from repro.datasets import sales_database, sales_workload

db = sales_database(scale=0.02)
wl = sales_workload(db)
result = tune(db, wl, db.total_data_bytes() * 0.15, variant="dtac-both",
              kernel={kernel!r})
print(sorted(ix.display_name() for ix in result.configuration))
print(repr(result.final_cost))
print(repr(result.base_cost))
print(result.consumed_bytes)
"""


class TestHashSeedIndependence:
    @pytest.mark.parametrize("kernel", ["python", "auto"])
    def test_recommendation_stable_across_hash_seeds(self, kernel):
        """Set iteration order must never leak into the recommendation:
        the same tune under different PYTHONHASHSEEDs prints the same
        configuration and the same float costs."""
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        outputs = []
        for seed in ("0", "424242"):
            env = dict(os.environ,
                       PYTHONPATH=os.path.abspath(src),
                       PYTHONHASHSEED=seed)
            proc = subprocess.run(
                [sys.executable, "-c",
                 _HASHSEED_SCRIPT.format(kernel=kernel)],
                capture_output=True, text=True, env=env, check=False,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
