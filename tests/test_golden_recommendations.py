"""Golden-recommendation regression canaries.

Unit tests pin individual components; these pin the *whole pipeline*:
for fixed datasets, seeds and budgets, the advisor's recommendation —
configuration, sizes, costs, step log — must be byte-identical to the
JSON committed under ``tests/golden/``.  Any refactor of costing,
enumeration, estimation or caching that moves a single float (or
reorders a tie-break) fails here even if every unit test still passes.

When a change is *deliberate* (e.g. a cost-model fix), regenerate with::

    python -m pytest tests/test_golden_recommendations.py --update-golden

and commit the diff — it is the reviewable record of what moved.
"""

import json
from dataclasses import dataclass, field
from pathlib import Path

import pytest

from repro.advisor.advisor import TuningAdvisor, get_variant
from repro.api import tune
from repro.datasets import (
    sales_database,
    sales_workload,
    tpch_database,
    tpch_workload,
)
from repro.sampling.sample_manager import SampleManager
from repro.service.context import serialize_result
from repro.sizeest.estimator import SizeEstimator
from repro.stats.column_stats import DatabaseStats

GOLDEN_DIR = Path(__file__).parent / "golden"


def _sales(scale):
    db = sales_database(scale=scale)
    return db, sales_workload(db)


def _tpch(scale):
    db = tpch_database(scale=scale)
    return db, tpch_workload(db)


@dataclass(frozen=True)
class GoldenCase:
    name: str
    build: object
    scale: float
    variant: str
    budget_fraction: float
    seed: int | None = None
    options: dict = field(default_factory=dict)


CASES = [
    GoldenCase("sales_dtac_both_b15", _sales, 0.04, "dtac-both", 0.15),
    GoldenCase("sales_dtac_both_b15_seed7", _sales, 0.04, "dtac-both",
               0.15, seed=7),
    GoldenCase("sales_dtac_none_b10", _sales, 0.04, "dtac-none", 0.10),
    GoldenCase("tpch_dtac_both_b20", _tpch, 0.05, "dtac-both", 0.20),
    GoldenCase("tpch_dta_b20", _tpch, 0.05, "dta", 0.20),
]


def run_case(case: GoldenCase) -> str:
    """One advisor run at the case's fixed parameters, rendered as the
    canonical golden JSON (sorted keys, trailing newline)."""
    db, wl = case.build(case.scale)
    budget = db.total_data_bytes() * case.budget_fraction
    if case.seed is None:
        result = tune(db, wl, budget, variant=case.variant, **case.options)
    else:
        stats = DatabaseStats(db)
        options = get_variant(case.variant).advisor_options(
            budget, **case.options
        )
        estimator = SizeEstimator(
            db, stats=stats,
            manager=SampleManager(db, seed=case.seed),
            e=options.e, q=options.q,
        )
        result = TuningAdvisor(
            db, wl, options, estimator=estimator, stats=stats
        ).run()
    payload = {
        "case": {
            "name": case.name,
            "dataset": db.name,
            "variant": case.variant,
            "budget_fraction": case.budget_fraction,
            "seed": case.seed,
        },
        **serialize_result(result)["result"],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
def test_golden_recommendation(case, request):
    golden_file = GOLDEN_DIR / f"{case.name}.json"
    fresh = run_case(case)
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_file.write_text(fresh)
        pytest.skip(f"updated {golden_file.name}")
    assert golden_file.exists(), (
        f"{golden_file} missing — generate it with "
        "pytest tests/test_golden_recommendations.py --update-golden"
    )
    committed = golden_file.read_text()
    # Byte-identical, not approximately equal: every float, every index
    # name, every greedy step in the committed order.
    assert fresh == committed, (
        f"advisor output drifted from {golden_file.name}; if this "
        "change is deliberate, regenerate with --update-golden and "
        "commit the diff"
    )


def test_goldens_have_no_strays():
    """Every committed golden file corresponds to a case (catches
    renamed cases leaving stale canaries behind)."""
    known = {f"{case.name}.json" for case in CASES}
    on_disk = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == known


def test_golden_runs_are_self_consistent():
    """The canary harness itself is deterministic: running a case twice
    in-process produces identical bytes (otherwise a golden mismatch
    could be harness noise rather than advisor drift)."""
    case = CASES[0]
    assert run_case(case) == run_case(case)
