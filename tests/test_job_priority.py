"""Priority lanes, tenant fairness, and admission quotas in the job
tier.

The contract under test (see ``repro.service.scheduler.FairQueue`` and
``repro.service.jobs``): within one context, the next job to run is
picked high-priority-first, and inside a priority lane by weighted
round-robin across tenants in sorted-name order — fully deterministic,
never timing- or hash-dependent.  Per-tenant quotas bound non-terminal
jobs per tenant (:class:`QuotaExceededError`, HTTP 429, retryable),
separately from global backpressure (503).  Routing fields belong to
the submission envelope, never to the tune/sweep payload.
"""

import asyncio
import threading
from types import SimpleNamespace

import pytest

from repro.datasets.sales import sales_database, sales_workload
from repro.errors import QuotaExceededError, ServiceError
from repro.service import (
    AdvisorClient,
    AdvisorService,
    FairQueue,
    ServiceHTTPError,
    ServiceHTTPServer,
)
from repro.service.jobs import JobManager
from repro.service.scheduler import ContextScheduler


def run(coro):
    return asyncio.run(coro)


def item(tenant, priority="normal"):
    return SimpleNamespace(tenant=tenant, priority=priority)


class TestFairQueue:
    def test_priority_order_then_fifo(self):
        queue = FairQueue()
        low, normal, high = item("t", "low"), item("t"), item("t", "high")
        for it in (low, normal, high):
            queue.park(it)
        assert queue.depth() == 3
        assert [queue.pick() for _ in range(3)] == [high, normal, low]
        assert queue.pick() is None
        assert queue.depth() == 0

    def test_round_robin_across_tenants_is_name_sorted(self):
        queue = FairQueue()
        a1, a2, b1, c1 = item("a"), item("a"), item("b"), item("c")
        for it in (c1, a1, b1, a2):  # park order must not matter
            queue.park(it)
        assert [queue.pick() for _ in range(4)] == [a1, b1, c1, a2]

    def test_weights_grant_consecutive_turns(self):
        queue = FairQueue(weights={"big": 2})
        b1, b2, b3, s1 = item("big"), item("big"), item("big"), item("small")
        for it in (b1, b2, b3, s1):
            queue.park(it)
        assert [queue.pick() for _ in range(4)] == [b1, b2, s1, b3]

    def test_cursor_survives_tenant_draining_away(self):
        queue = FairQueue()
        a1, c1 = item("a"), item("c")
        queue.park(a1)
        assert queue.pick() is a1
        # "a" drained; a new tenant sorting before the cursor parks.
        queue.park(c1)
        assert queue.pick() is c1


class StubService:
    """AdvisorService stand-in with a gate: executions block until the
    test opens it, so every later submission parks deterministically."""

    def __init__(self, **manager_kwargs):
        self.contexts = {"alpha": object(), "beta": object()}
        self.started = True
        self._closing = False
        self.max_pending = 64
        self.scheduler = ContextScheduler(workers=1, max_lanes=2)
        self.gate = threading.Event()
        self.executed = []
        self.jobs = JobManager(self, **manager_kwargs)

    def _execute(self, kind, context, payload, lane=None, progress=None):
        assert self.gate.wait(30)
        self.executed.append(payload.get("name"))
        return {"ok": True}

    def shutdown(self):
        self.scheduler.shutdown()


class TestExecutionOrder:
    def test_priority_then_tenant_round_robin(self):
        """Parked jobs run high-first, then WRR by tenant inside each
        priority — regardless of submission order."""

        async def scenario():
            service = StubService()
            try:
                plan = [
                    ("A", "t1", "normal"),  # first in: holds the turn
                    ("B", "t2", "low"),
                    ("C", "t3", "high"),
                    ("D", "t1", "normal"),
                    ("E", "t2", "normal"),
                ]
                for name, tenant, priority in plan:
                    service.jobs.submit("tune", "alpha", {"name": name},
                                        tenant=tenant, priority=priority)
                await asyncio.sleep(0.05)  # everyone reaches the turnstile
                assert service.jobs.stats()["parked"] == 4
                service.gate.set()
                await service.jobs.drain()
                return service.executed
            finally:
                service.shutdown()

        assert run(scenario()) == ["A", "C", "D", "E", "B"]

    def test_weighted_tenant_gets_consecutive_turns(self):
        async def scenario():
            service = StubService(tenant_weights={"big": 2})
            try:
                plan = [("hold", "x"), ("b1", "big"), ("b2", "big"),
                        ("s1", "small"), ("b3", "big")]
                for name, tenant in plan:
                    service.jobs.submit("tune", "alpha", {"name": name},
                                        tenant=tenant)
                await asyncio.sleep(0.05)
                service.gate.set()
                await service.jobs.drain()
                return service.executed
            finally:
                service.shutdown()

        assert run(scenario()) == ["hold", "b1", "b2", "s1", "b3"]

    def test_contexts_do_not_share_a_turnstile(self):
        """Fairness is per context: one context's queue depth never
        blocks another context's lane."""

        async def scenario():
            service = StubService()
            try:
                for i in range(3):
                    service.jobs.submit("tune", "alpha",
                                        {"name": f"a{i}"})
                service.jobs.submit("tune", "beta", {"name": "b0"})
                await asyncio.sleep(0.05)
                service.gate.set()
                await service.jobs.drain()
                return service.executed
            finally:
                service.shutdown()

        executed = run(scenario())
        assert sorted(executed) == ["a0", "a1", "a2", "b0"]
        # beta's job ran concurrently on its own lane — it must not
        # have waited for all three alpha jobs.
        assert executed.index("b0") < 3


class TestQuota:
    def test_quota_bounds_non_terminal_jobs_per_tenant(self):
        async def scenario():
            service = StubService(tenant_quota=1)
            try:
                service.jobs.submit("tune", "alpha", {"name": "first"},
                                    tenant="t1")
                with pytest.raises(QuotaExceededError, match="quota"):
                    service.jobs.submit("tune", "alpha",
                                        {"name": "second"}, tenant="t1")
                # Another tenant is unaffected.
                service.jobs.submit("tune", "alpha", {"name": "other"},
                                    tenant="t2")
                stats = service.jobs.stats()
                assert stats["tenants_active"] == {"t1": 1, "t2": 1}
                assert stats["tenant_quota"] == 1
                service.gate.set()
                await service.jobs.drain()
                # Terminal jobs release the quota.
                service.jobs.submit("tune", "alpha", {"name": "third"},
                                    tenant="t1")
                await service.jobs.drain()
                return service.executed
            finally:
                service.shutdown()

        assert sorted(run(scenario())) == ["first", "other", "third"]

    def test_quota_is_retryable_backpressure(self):
        from repro.errors import BackpressureError
        assert issubclass(QuotaExceededError, BackpressureError)


@pytest.fixture(scope="module")
def priority_inputs():
    db = sales_database(scale=0.02)
    wl = sales_workload(db)
    return db, wl


class TestOverHTTP:
    def test_quota_breach_maps_to_429_and_client_retries(
            self, priority_inputs):
        """Over HTTP a quota breach is 429 (with Retry-After), distinct
        from global backpressure's 503; the client marks it retryable.
        Routing fields round-trip on the job snapshot."""
        db, wl = priority_inputs

        async def scenario():
            service = AdvisorService(tenant_quota=1)
            service.register("sales", db, wl)
            server = ServiceHTTPServer(service, port=0)
            await server.start()
            client = AdvisorClient(port=server.port, retries=0)
            context = service.contexts["sales"]
            started = threading.Event()
            release = threading.Event()
            original = context.run_whatif_cost

            def blocking(payload):
                started.set()
                assert release.wait(30)
                return original(payload)

            context.run_whatif_cost = blocking
            try:
                blocker = asyncio.ensure_future(
                    service.whatif_cost("sales", statement_index=0)
                )
                await asyncio.get_running_loop().run_in_executor(
                    None, started.wait, 30
                )
                job = await client.submit_job(
                    "sales", budget_fraction=0.1, variant="dtac-none",
                    tenant="acme", priority="high",
                )
                assert (job["tenant"], job["priority"]) == \
                    ("acme", "high")
                with pytest.raises(ServiceHTTPError) as quota_err:
                    await client.submit_job(
                        "sales", budget_fraction=0.12,
                        variant="dtac-none", tenant="acme",
                    )
                # Bad routing values are 400s, not quota noise.
                with pytest.raises(ServiceHTTPError) as bad_priority:
                    await client.submit_job(
                        "sales", budget_fraction=0.1, priority="urgent",
                    )
                await client.cancel_job(job["id"])
                release.set()
                await blocker
                return quota_err.value, bad_priority.value
            finally:
                context.run_whatif_cost = original
                await server.stop()

        quota_err, bad_priority = run(scenario())
        assert quota_err.status == 429
        assert quota_err.retryable is True
        assert "quota" in str(quota_err)
        assert bad_priority.status == 400

    def test_routing_fields_rejected_inside_payload(self, priority_inputs):
        """`tenant`/`priority` must ride the submission envelope — a
        payload smuggling them would skew coalescing keys and journaled
        payloads, so the closed wire schema rejects it at submission
        (no job record is ever created)."""
        db, wl = priority_inputs

        async def scenario():
            service = AdvisorService()
            service.register("sales", db, wl)
            await service.start()
            try:
                with pytest.raises(ServiceError, match="routing"):
                    await service.tune("sales", budget_fraction=0.1,
                                       tenant="acme")
                with pytest.raises(ServiceError, match="routing"):
                    service.submit_job(
                        "tune", "sales",
                        dict(budget_fraction=0.1, priority="high"),
                    )
                return service.jobs.list_jobs()
            finally:
                await service.stop()

        assert run(scenario()) == []
