"""Unit + property tests for the fixed-width data types."""

import pytest
from hypothesis import given, strategies as st

from repro.catalog.datatypes import (
    DateType,
    DecimalType,
    IntType,
    VarCharType,
    char,
    decimal,
    varchar,
)
from repro.errors import StorageError


class TestIntType:
    def test_width(self):
        assert IntType().width == 8
        assert IntType(4).width == 4

    def test_roundtrip_simple(self):
        t = IntType()
        for v in (0, 1, -1, 2**40, -(2**40)):
            assert t.decode(t.encode(v)) == v

    def test_encoding_is_fixed_width(self):
        t = IntType(4)
        assert len(t.encode(7)) == 4
        assert len(t.encode(-7)) == 4

    def test_small_values_have_leading_zero_bytes(self):
        raw = IntType().encode(5)
        assert raw[:7] == b"\x00" * 7

    def test_negative_values_have_leading_ff_bytes(self):
        raw = IntType().encode(-5)
        assert raw[:7] == b"\xff" * 7

    def test_null_encodes_to_zero_bytes(self):
        assert IntType().encode(None) == b"\x00" * 8

    def test_overflow_raises(self):
        with pytest.raises(StorageError):
            IntType(2).encode(2**31)

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_roundtrip_property(self, v):
        t = IntType()
        assert t.decode(t.encode(v)) == v

    def test_ordering_preserved_for_nonnegative(self):
        t = IntType()
        values = [0, 3, 17, 255, 256, 99999]
        encoded = [t.encode(v) for v in values]
        assert encoded == sorted(encoded)


class TestDecimalType:
    def test_scale_conversion(self):
        t = DecimalType(scale=2)
        assert t.to_float(12345) == 123.45

    def test_roundtrip(self):
        t = decimal()
        assert t.decode(t.encode(999)) == 999

    def test_name(self):
        assert "DECIMAL" in decimal().name


class TestDateType:
    def test_width_is_4(self):
        assert DateType().width == 4

    def test_roundtrip(self):
        t = DateType()
        assert t.decode(t.encode(12345)) == 12345

    def test_negative_days(self):
        t = DateType()
        assert t.decode(t.encode(-400)) == -400


class TestCharTypes:
    def test_padding(self):
        t = char(8)
        assert t.encode("ab") == b"ab" + b"\x00" * 6

    def test_roundtrip(self):
        t = char(8)
        assert t.decode(t.encode("ab")) == "ab"

    def test_too_long_raises(self):
        with pytest.raises(StorageError):
            char(3).encode("abcd")

    def test_varchar_is_character(self):
        assert varchar(10).is_character
        assert char(10).is_character
        assert not IntType().is_character

    def test_null(self):
        assert char(4).encode(None) == b"\x00" * 4
        assert char(4).decode(b"\x00" * 4) == ""

    @given(st.text(alphabet=st.characters(min_codepoint=32,
                                          max_codepoint=126),
                   max_size=10))
    def test_roundtrip_property(self, s):
        t = VarCharType(16)
        assert t.decode(t.encode(s)) == s.rstrip("\x00")
