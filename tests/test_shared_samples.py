"""Shared-memory sample pages: publish/read semantics, SerializedTable
repointing with graceful fallback, engine ownership, and — the physical
guarantee — a sentinel byte mutated in the parent observed by an
already-forked worker, proving workers map the parent's pages instead
of holding copies."""

import pytest

from repro.datasets import sales_database
from repro.errors import AdvisorError
from repro.parallel.engine import ParallelEngine, fork_available
from repro.parallel.shm import RID_SLOT, SharedSamplePages
from repro.sampling import SampleManager
from repro.storage.rowcache import RID_SLOT as ROWCACHE_RID_SLOT


@pytest.fixture
def store():
    s = SharedSamplePages()
    yield s
    s.close(unlink=True)


class TestSharedSamplePages:
    def test_publish_round_trip(self, store):
        published = store.publish([
            (("t", 1), {"a": [b"xx", b"", b"zzz"], "b": [b"1", b"22"]}),
            (("t", 2), {"a": [b"solo"]}),
        ])
        assert published == 2
        assert store.active
        assert store.has(("t", 1)) and store.has(("t", 2))
        assert store.column(("t", 1), "a") == [b"xx", b"", b"zzz"]
        assert store.column(("t", 1), "b") == [b"1", b"22"]
        assert store.column(("t", 2), "a") == [b"solo"]

    def test_missing_key_or_column_is_none(self, store):
        store.publish([(("t",), {"a": [b"v"]})])
        assert store.column(("nope",), "a") is None
        assert store.column(("t",), "nope") is None

    def test_publish_is_one_shot(self, store):
        store.publish([(("t",), {"a": [b"v"]})])
        with pytest.raises(AdvisorError, match="already published"):
            store.publish([(("u",), {"a": [b"w"]})])

    def test_empty_publish_stays_inactive(self, store):
        assert store.publish([]) == 0
        assert not store.active
        assert store.name is None
        # All-empty columns carry zero bytes: also inactive.
        assert store.publish([(("t",), {"a": []})]) == 0
        assert not store.active

    def test_close_detaches(self):
        store = SharedSamplePages()
        store.publish([(("t",), {"a": [b"v"]})])
        assert store.stats()["published_bytes"] == 1
        store.close(unlink=True)
        assert not store.active
        assert store.column(("t",), "a") is None
        # Idempotent.
        store.close()

    def test_rid_slot_names_agree(self):
        assert RID_SLOT == ROWCACHE_RID_SLOT


@pytest.fixture(scope="module")
def sample_db():
    return sales_database(scale=0.02)


class TestSerializedTableSharing:
    def test_shared_reads_match_recompute(self, sample_db, store):
        manager = SampleManager(sample_db)
        sample = manager.table_sample("sales", 0.1)
        expected = list(sample.stripped("sa_date"))
        expected_rid = list(sample.rid_stripped())

        published = manager.share_samples(store)
        assert published >= 1
        assert sample.stripped("sa_date") == expected
        assert sample.rid_stripped() == expected_rid
        assert manager.counts["share_samples"] == published

    def test_fallback_recomputes_after_store_closes(self, sample_db):
        store = SharedSamplePages()
        manager = SampleManager(sample_db)
        sample = manager.table_sample("sales", 0.1)
        expected = list(sample.stripped("sa_date"))
        manager.share_samples(store)
        store.close(unlink=True)
        # The repointed cache must survive the owner tearing the
        # segment down mid-run: recompute from the sample table.
        assert sample.stripped("sa_date") == expected
        assert sample.rid_stripped() is not None


class TestEngineOwnership:
    def test_share_is_noop_when_not_parallel(self, sample_db):
        manager = SampleManager(sample_db)
        manager.table_sample("sales", 0.1)
        engine = ParallelEngine(workers=1)
        assert engine.share_samples(manager) == 0
        assert engine.shared_store is None

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_shutdown_releases_store(self, sample_db):
        manager = SampleManager(sample_db)
        # Materialize a column: only warmed blobs are shareable.
        manager.table_sample("sales", 0.1).stripped("sa_date")
        engine = ParallelEngine(workers=2, force_parallel=True)
        assert engine.share_samples(manager) >= 1
        store = engine.shared_store
        assert store is not None and store.active
        assert engine.stats()["shared_samples"]["active"]
        engine.shutdown()
        assert engine.shared_store is None
        assert not store.active


def _read_shared(context, item):
    key, name = item
    values = context["store"].column(key, name)
    return values[0] if values else None


@pytest.mark.skipif(not fork_available(), reason="needs fork")
class TestPhysicalSharing:
    def test_parent_sentinel_mutation_visible_in_forked_worker(self):
        """The no-copy proof: workers forked *before* the mutation see a
        byte the parent flips *after* the fork.  Copy-on-write heap
        inheritance (the old path) would leave the workers reading
        their own stale copies."""
        store = SharedSamplePages()
        try:
            key = ("table", "t")
            store.publish([(key, {"col": [b"AAAA", b"BBBB"]})])
            engine = ParallelEngine(workers=2, force_parallel=True)
            ctx = {"store": store}
            try:
                with engine.session(ctx):
                    # First map forks the workers and has them touch
                    # the mapped pages.
                    before = engine.map(
                        _read_shared, [(key, "col"), (key, "col")], ctx
                    )
                    assert before == [b"AAAA", b"AAAA"]
                    assert engine.parallel_maps == 1
                    # Parent flips the first byte in place...
                    store._shm.buf[0] = ord("Z")
                    # ...and the same already-forked pool observes it.
                    after = engine.map(
                        _read_shared, [(key, "col"), (key, "col")], ctx
                    )
                    assert after == [b"ZAAA", b"ZAAA"]
                    assert engine.parallel_maps == 2
            finally:
                engine.shutdown()
        finally:
            store.close(unlink=True)


@pytest.mark.skipif(not fork_available(), reason="needs fork")
class TestEstimatorWiring:
    def test_parallel_estimator_publishes_once(self, monkeypatch):
        """End to end: a forced-parallel advisor run publishes the
        warmed samples exactly once and still answers byte-identically
        (the identity half is pinned in test_parallel_engine)."""
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        from repro.api import tune
        from repro.datasets import sales_workload

        db = sales_database(scale=0.04)
        wl = sales_workload(db)
        budget = db.total_data_bytes() * 0.15
        seq = tune(db, wl, budget, variant="dtac-both", workers=1)
        par = tune(db, wl, budget, variant="dtac-both", workers=2)
        assert par.configuration == seq.configuration
        assert par.final_cost == seq.final_cost
        shared = par.engine_stats["shared_samples"]
        assert shared is not None
        assert shared["published_keys"] >= 1
        assert shared["published_bytes"] > 0
