"""AdvisorClient retry/backoff: retryable 503s and transient transport
faults (connection refused/reset mid-restart) are retried on an
exponential schedule that honors the server's ``Retry-After`` header —
verified with a fake clock, no real sleeping, no real server."""

import asyncio

import pytest

from repro.service.client import AdvisorClient, ServiceHTTPError


def run(coro):
    return asyncio.run(coro)


class FakeClock:
    """Injectable ``sleep``: records every requested delay, never
    actually waits."""

    def __init__(self):
        self.delays = []

    async def sleep(self, delay):
        self.delays.append(delay)


def make_client(clock, **kwargs):
    kwargs.setdefault("retries", 3)
    kwargs.setdefault("backoff", 0.25)
    kwargs.setdefault("max_backoff", 8.0)
    return AdvisorClient("127.0.0.1", 1, sleep=clock.sleep, **kwargs)


def stub_responses(client, outcomes):
    """Replace the wire layer with a scripted sequence: exceptions are
    raised, anything else returned."""
    calls = []

    async def fake_request_once(method, path, payload=None):
        calls.append((method, path))
        outcome = outcomes[min(len(calls) - 1, len(outcomes) - 1)]
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    client._request_once = fake_request_once
    return calls


class TestBackoffSchedule:
    def test_retry_delay_is_exponential_and_capped(self):
        client = make_client(FakeClock(), backoff=0.25, max_backoff=2.0)
        assert client.retry_delay(0) == 0.25
        assert client.retry_delay(1) == 0.5
        assert client.retry_delay(2) == 1.0
        assert client.retry_delay(3) == 2.0
        assert client.retry_delay(10) == 2.0  # capped

    def test_retry_after_floors_the_delay(self):
        client = make_client(FakeClock(), backoff=0.25, max_backoff=8.0)
        # Server hint larger than the exponential term wins...
        assert client.retry_delay(0, retry_after=1.5) == 1.5
        # ...but a shorter hint never shrinks the backoff...
        assert client.retry_delay(3, retry_after=1.5) == 2.0
        # ...and the cap still applies over the hint.
        assert client.retry_delay(0, retry_after=30.0) == 8.0


class TestRetryLoop:
    def test_retries_503_until_success(self):
        clock = FakeClock()
        client = make_client(clock)
        calls = stub_responses(client, [
            ServiceHTTPError(503, "full", retry_after=None),
            ServiceHTTPError(503, "full", retry_after=None),
            {"ok": True},
        ])
        answer = run(client._request("GET", "/healthz"))
        assert answer == {"ok": True}
        assert len(calls) == 3
        assert clock.delays == [0.25, 0.5]

    def test_honors_retry_after_header(self):
        clock = FakeClock()
        client = make_client(clock)
        stub_responses(client, [
            ServiceHTTPError(503, "full", retry_after=3.0),
            {"ok": True},
        ])
        run(client._request("GET", "/healthz"))
        assert clock.delays == [3.0]

    def test_gives_up_after_retries_and_raises(self):
        clock = FakeClock()
        client = make_client(clock, retries=2)
        calls = stub_responses(client, [
            ServiceHTTPError(503, "full"),
        ])
        with pytest.raises(ServiceHTTPError) as err:
            run(client._request("GET", "/healthz"))
        assert err.value.status == 503
        assert len(calls) == 3          # initial + 2 retries
        assert clock.delays == [0.25, 0.5]

    def test_non_retryable_errors_surface_immediately(self):
        clock = FakeClock()
        client = make_client(clock)
        calls = stub_responses(client, [
            ServiceHTTPError(400, "bad payload"),
        ])
        with pytest.raises(ServiceHTTPError) as err:
            run(client._request("POST", "/v1/tune", {}))
        assert err.value.status == 400
        assert len(calls) == 1
        assert clock.delays == []

    def test_retries_zero_restores_immediate_raise(self):
        clock = FakeClock()
        client = make_client(clock, retries=0)
        calls = stub_responses(client, [
            ServiceHTTPError(503, "full", retry_after=1.0),
        ])
        with pytest.raises(ServiceHTTPError):
            run(client._request("GET", "/healthz"))
        assert len(calls) == 1
        assert clock.delays == []


class TestTransportFaultRetry:
    """Connection-level faults — the server restarting out from under
    the client — retry on the same schedule as a 503.  A request
    *timeout* is not transient in the same way (the request may have
    landed) and must surface immediately, even though Python 3.11 makes
    ``TimeoutError`` a subclass of ``OSError``."""

    def test_connection_refused_is_retried_until_success(self):
        clock = FakeClock()
        client = make_client(clock)
        calls = stub_responses(client, [
            ConnectionRefusedError("connect"),
            ConnectionRefusedError("connect"),
            {"ok": True},
        ])
        answer = run(client._request("GET", "/healthz"))
        assert answer == {"ok": True}
        assert len(calls) == 3
        assert clock.delays == [0.25, 0.5]

    def test_connection_reset_is_retried(self):
        clock = FakeClock()
        client = make_client(clock)
        calls = stub_responses(client, [
            ConnectionResetError("peer reset"),
            {"ok": True},
        ])
        answer = run(client._request("POST", "/v1/jobs", {}))
        assert answer == {"ok": True}
        assert len(calls) == 2
        assert clock.delays == [0.25]

    def test_persistent_refusal_exhausts_retries_and_raises(self):
        clock = FakeClock()
        client = make_client(clock, retries=2)
        calls = stub_responses(client, [
            ConnectionRefusedError("connect"),
        ])
        with pytest.raises(ConnectionRefusedError):
            run(client._request("GET", "/healthz"))
        assert len(calls) == 3          # initial + 2 retries
        assert clock.delays == [0.25, 0.5]

    def test_timeout_error_is_never_retried(self):
        clock = FakeClock()
        client = make_client(clock)
        calls = stub_responses(client, [
            TimeoutError("request timed out"),
            {"ok": True},
        ])
        with pytest.raises(TimeoutError):
            run(client._request("GET", "/healthz"))
        assert len(calls) == 1
        assert clock.delays == []

    def test_mixed_transport_then_http_retryables(self):
        """A refusal followed by a 503 keeps one continuous backoff
        schedule — the attempt counter spans both fault families."""
        clock = FakeClock()
        client = make_client(clock)
        calls = stub_responses(client, [
            ConnectionRefusedError("connect"),
            ServiceHTTPError(503, "warming up", retry_after=None),
            {"ok": True},
        ])
        answer = run(client._request("GET", "/healthz"))
        assert answer == {"ok": True}
        assert len(calls) == 3
        assert clock.delays == [0.25, 0.5]


class TestErrorAnatomy:
    def test_retryable_flag(self):
        assert ServiceHTTPError(503, "full").retryable
        assert not ServiceHTTPError(400, "nope").retryable
        assert not ServiceHTTPError(500, "boom").retryable

    def test_retry_after_parsing_from_headers(self):
        status, headers = AdvisorClient._parse_head(
            b"HTTP/1.1 503 Service Unavailable\r\n"
            b"Content-Type: application/json\r\n"
            b"Retry-After: 1"
        )
        assert status == 503
        assert headers["retry-after"] == "1"
