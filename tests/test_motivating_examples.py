"""The paper's two motivating examples (Section 1) as scenario tests.

Example 1: with a tight storage bound, a compressed covering index fits
where the uncompressed one does not, so integrating compression into the
selection beats choosing indexes first.

Example 2: blindly compressing every suggested index slows an
update-intensive workload — the cost model must charge compression CPU
on maintenance.
"""

import random

import pytest

from repro.api import tune, tune_decoupled
from repro.catalog import Column, Database, INT, Table, char, decimal, DATE
from repro.compression import CompressionMethod
from repro.optimizer import WhatIfOptimizer
from repro.physical import Configuration, IndexDef
from repro.sizeest import SizeEstimator
from repro.stats import DatabaseStats
from repro.storage import IndexKind
from repro.workload import Workload, parse_query, parse_statement


@pytest.fixture(scope="module")
def sales_example_db():
    """The Sales(OrderID, Shipdate, State, Price, Discount) table of
    Example 1, with heavily compressible padding."""
    rng = random.Random(99)
    db = Database("example1")
    t = Table(
        "exsales",
        [
            Column("orderid", INT),
            Column("shipdate", DATE),
            Column("state", char(12)),
            Column("price", decimal()),
            Column("discount", decimal()),
            Column("notes", char(24)),
        ],
        primary_key=("orderid",),
    )
    for i in range(6000):
        t.append_row(
            (
                i,
                10000 + rng.randrange(3650),
                rng.choice(("CA", "NY", "TX", "WA")),
                rng.randrange(100000),
                rng.randrange(50),
                f"note {i % 40}",
            )
        )
    db.add_table(t)
    return db


@pytest.fixture(scope="module")
def q1():
    return parse_query(
        "SELECT SUM(price * discount) FROM exsales "
        "WHERE shipdate BETWEEN 11000 AND 11365 AND state = 'CA'"
    )


class TestExample1:
    def test_compressed_covering_fits_where_plain_does_not(
        self, sales_example_db, q1
    ):
        estimator = SizeEstimator(sales_example_db)
        i2 = IndexDef(
            "exsales", ("shipdate", "state"),
            included_columns=("price", "discount"),
        )
        i2c = i2.with_method(CompressionMethod.PAGE)
        plain = estimator.estimate(i2).est_bytes
        compressed = estimator.estimate(i2c).est_bytes
        assert compressed < plain
        # A budget between the two sizes admits only the compressed one.
        budget = (plain + compressed) / 2
        assert compressed <= budget < plain

    def test_integrated_tool_beats_staged_under_tight_budget(
        self, sales_example_db, q1
    ):
        workload = Workload()
        workload.add(q1, weight=10.0)
        stats = DatabaseStats(sales_example_db)
        estimator = SizeEstimator(sales_example_db, stats=stats)
        # Budget sized so that the uncompressed covering index does NOT
        # fit but its compressed variant does.
        i2 = IndexDef(
            "exsales", ("shipdate", "state"),
            included_columns=("price", "discount"),
        )
        budget = estimator.estimate(i2).est_bytes * 0.55
        integrated = tune(sales_example_db, workload, budget,
                          variant="dtac-both", estimator=estimator,
                          stats=stats)
        staged = tune(sales_example_db, workload, budget, variant="dta",
                      estimator=estimator, stats=stats)
        assert integrated.improvement >= staged.improvement
        assert any(
            ix.is_compressed for ix in integrated.configuration
        )


class TestExample2:
    def test_blind_compression_slows_update_heavy_workload(
        self, sales_example_db, q1
    ):
        """Compressing the covering index raises the cost of a bulk-load
        heavy workload (decompress on read + compress on write)."""
        stats = DatabaseStats(sales_example_db)
        estimator = SizeEstimator(sales_example_db, stats=stats)
        whatif = WhatIfOptimizer(
            sales_example_db, stats,
            sizes=lambda ix: (
                estimator.estimate(ix).est_bytes,
                estimator.sizer.estimated_rows(ix),
            ),
        )
        workload = Workload()
        workload.add(q1, weight=1.0)
        workload.add(parse_statement("INSERT INTO exsales BULK 3000"),
                     weight=20.0)
        heap = IndexDef("exsales", (), kind=IndexKind.HEAP)
        i3 = IndexDef(
            "exsales", ("shipdate", "state"),
            included_columns=("price", "discount"),
        )
        plain = Configuration([heap, i3])
        compressed = Configuration(
            [heap, i3.with_method(CompressionMethod.PAGE)]
        )
        assert whatif.workload_cost(workload, compressed) > \
            whatif.workload_cost(workload, plain)

    def test_decoupled_tool_never_beats_integrated(self, sales_example_db, q1):
        workload = Workload()
        workload.add(q1, weight=1.0)
        workload.add(parse_statement("INSERT INTO exsales BULK 3000"),
                     weight=20.0)
        stats = DatabaseStats(sales_example_db)
        estimator = SizeEstimator(sales_example_db, stats=stats)
        budget = sales_example_db.total_data_bytes() * 0.5
        integrated = tune(sales_example_db, workload, budget,
                          variant="dtac-both", estimator=estimator,
                          stats=stats)
        staged = tune_decoupled(sales_example_db, workload, budget,
                                estimator=estimator, stats=stats)
        assert integrated.final_cost <= staged.final_cost + 1e-6
