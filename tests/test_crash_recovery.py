"""Crash/recovery over the real server binary: ``kill -9`` a serving
process mid-tune, restart it on the same ``--cache-dir``, and assert
the journal contract end to end.

The acceptance criteria (see ``repro.service.journal``): after the
restart, jobs that were ``queued`` at the kill re-enqueue and complete;
the job that was ``running`` comes back ``failed`` with the
``recovered`` marker; every event log is seq-gapless across the
restart boundary; and resubmitting the interrupted payload yields a
result byte-identical to an in-process ``tune()`` — a recovered re-run
is indistinguishable from a cold submission.

This drives ``python -m repro serve`` as a subprocess (the same entry
point the crash-recovery CI job exercises), so it is tier-marked slow.
"""

import json
import os
import re
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.api import tune
from repro.datasets.sales import sales_database, sales_workload
from repro.service import serialize_result

SCALE = 0.02
BOOT_PATTERN = re.compile(r"advisor service: contexts \[.*\] on "
                          r"http://[^:]+:(\d+)")


def _spawn_server(cache_dir, extra=()):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--dataset", "sales",
         "--scale", str(SCALE), "--port", "0", "--cache-dir",
         str(cache_dir), "--poll-interval", "0.1", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        text=True,
    )
    deadline = time.time() + 120
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited during boot (rc={proc.poll()})")
        match = BOOT_PATTERN.search(line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise AssertionError("server never announced its port")


def _request(port, path, body=None, timeout=30):
    url = f"http://127.0.0.1:{port}{path}"
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method="POST"
                                 if data else "GET")
    if data:
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def _events(port, job_id, after=0, limit=None, timeout=120):
    """Drain the chunked NDJSON event stream; for a terminal job the
    server closes it after the backlog, for a live one ``limit`` bounds
    how much of the prefix we read before hanging up."""
    url = (f"http://127.0.0.1:{port}/v1/jobs/{job_id}/events"
           f"?after={after}")
    events = []
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        for line in resp:
            if line.strip():
                events.append(json.loads(line))
            if limit is not None and len(events) >= limit:
                break
    return events


def _wait_until(predicate, timeout=120, interval=0.2):
    deadline = time.time() + timeout
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not reached in time")


def _job_state(port, job_id):
    return _request(port, f"/v1/jobs/{job_id}")["state"]


TUNE_PAYLOAD = dict(kind="tune", context="sales", variant="dtac-none")
BUDGETS = (0.1, 0.12, 0.15)


@pytest.mark.slow
class TestCrashRecovery:
    def test_kill_dash_nine_restart_recovers_the_job_tier(self, tmp_path):
        cache_dir = tmp_path / "cache"

        # First life: submit three jobs, let the first start running,
        # then kill -9 the server mid-tune.
        proc, port = _spawn_server(cache_dir)
        try:
            jobs = [
                _request(port, "/v1/jobs",
                         dict(TUNE_PAYLOAD, budget_fraction=budget))
                for budget in BUDGETS
            ]
            ids = [job["id"] for job in jobs]
            assert all(job["state"] == "queued" for job in jobs)
            _wait_until(lambda: _job_state(port, ids[0]) == "running")
            # Prefix of the live stream: the queued + running
            # transitions, read before the kill.
            events_before = _events(port, ids[0], limit=2)
            assert [e["state"] for e in events_before] == \
                ["queued", "running"]
        finally:
            proc.kill()  # SIGKILL: no shutdown hooks, no journal close
            proc.wait(timeout=30)

        # Second life, same cache dir.
        proc, port = _spawn_server(cache_dir)
        try:
            # The interrupted job is failed + recovered; the queued
            # ones re-enqueue and complete.
            interrupted = _request(port, f"/v1/jobs/{ids[0]}")
            assert interrupted["state"] == "failed"
            assert interrupted["recovered"] is True
            assert "restart" in interrupted["error"]
            for job_id in ids[1:]:
                _wait_until(
                    lambda jid=job_id: _job_state(port, jid) == "done")

            # Event logs are seq-gapless across the restart: the
            # pre-kill prefix is preserved verbatim and the recovery /
            # re-run events continue the series.
            for job_id in ids:
                events = _events(port, job_id)
                seqs = [e["seq"] for e in events]
                assert seqs == list(range(1, len(seqs) + 1))
            recovered_events = _events(port, ids[0])
            assert recovered_events[:len(events_before)] == events_before
            assert recovered_events[-1]["state"] == "failed"
            assert recovered_events[-1]["recovered"] is True

            # The events?after=N tail picks up exactly where a pre-kill
            # streamer left off.
            after = events_before[-1]["seq"]
            tail = _events(port, ids[0], after=after)
            assert tail == recovered_events[after:]

            # Resubmitting the interrupted payload re-runs it cold —
            # and byte-identical to an in-process tune().
            redo = _request(port, "/v1/jobs",
                            dict(TUNE_PAYLOAD, budget_fraction=BUDGETS[0]))
            _wait_until(
                lambda: _job_state(port, redo["id"]) == "done")
            result = _request(port, f"/v1/jobs/{redo['id']}")["result"]

            stats = _request(port, "/v1/stats")["jobs"]
            assert stats["recovered"] == 1
            assert stats["journal"]["live_leases"] == 0
        finally:
            proc.kill()
            proc.wait(timeout=30)

        db = sales_database(scale=SCALE)
        # The serve CLI defaults to select_weight 5.0 — mirror it.
        wl = sales_workload(db, select_weight=5.0)
        direct = tune(db, wl, db.total_data_bytes() * BUDGETS[0],
                      variant="dtac-none")
        assert result["result"] == serialize_result(direct)["result"]

    def test_restart_preserves_terminal_history(self, tmp_path):
        """A clean restart (no crash) restores completed jobs with
        results and full event logs — poll and event endpoints keep
        answering for work done in an earlier life."""
        cache_dir = tmp_path / "cache"
        proc, port = _spawn_server(cache_dir)
        try:
            job = _request(port, "/v1/jobs",
                           dict(TUNE_PAYLOAD, budget_fraction=0.1))
            _wait_until(lambda: _job_state(port, job["id"]) == "done")
            before = _request(port, f"/v1/jobs/{job['id']}")
            events_before = _events(port, job["id"])
        finally:
            proc.kill()
            proc.wait(timeout=30)

        proc, port = _spawn_server(cache_dir)
        try:
            after = _request(port, f"/v1/jobs/{job['id']}")
            events_after = _events(port, job["id"])
        finally:
            proc.kill()
            proc.wait(timeout=30)

        assert after["state"] == "done"
        assert after["result"] == before["result"]
        assert events_after == events_before
