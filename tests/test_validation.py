"""Tests for ground-truth validation of recommendations (engine side)."""

import pytest

from repro.api import tune
from repro.datasets import tpch_database, tpch_workload
from repro.engine import (
    SizeCheck,
    validate_recommendation,
    validate_selectivities,
)
from repro.physical.index_def import IndexDef
from repro.sizeest import SizeEstimator
from repro.stats import DatabaseStats
from repro.storage.index_build import IndexKind


@pytest.fixture(scope="module")
def env():
    db = tpch_database(scale=0.05)
    stats = DatabaseStats(db)
    estimator = SizeEstimator(db, stats=stats)
    workload = tpch_workload(db, select_weight=5.0, insert_weight=1.0)
    return db, stats, estimator, workload


@pytest.fixture(scope="module")
def recommendation(env):
    db, stats, estimator, workload = env
    return tune(db, workload, db.total_data_bytes() * 0.25,
                variant="dtac-both", estimator=estimator, stats=stats)


class TestValidateRecommendation:
    def test_recommendation_holds_under_true_sizes(self, env,
                                                   recommendation):
        db, stats, estimator, workload = env
        report = validate_recommendation(
            recommendation, db, workload, stats=stats, estimator=estimator
        )
        assert report.recommendation_holds
        # Estimated and deployed improvements agree to 15 points.
        assert abs(
            report.true_size_improvement - report.estimated_improvement
        ) < 0.15

    def test_budget_respected_after_deployment(self, env, recommendation):
        db, stats, estimator, workload = env
        report = validate_recommendation(
            recommendation, db, workload, stats=stats, estimator=estimator
        )
        assert report.budget_holds

    def test_every_structure_checked(self, env, recommendation):
        db, stats, estimator, workload = env
        report = validate_recommendation(
            recommendation, db, workload, stats=stats, estimator=estimator
        )
        assert len(report.size_checks) == len(
            list(recommendation.configuration)
        )

    def test_size_errors_within_advisor_tolerance(self, env,
                                                  recommendation):
        db, stats, estimator, workload = env
        report = validate_recommendation(
            recommendation, db, workload, stats=stats, estimator=estimator
        )
        # The advisor ran with e=0.5: no structure may be off by more.
        assert report.max_abs_size_error <= 0.5


class TestSizeCheck:
    def test_ratio_error(self):
        ix = IndexDef("t", ("a",), kind=IndexKind.SECONDARY)
        check = SizeCheck(index=ix, estimated=120.0, measured=100.0)
        assert check.ratio_error == pytest.approx(0.2)

    def test_zero_measured_is_safe(self):
        ix = IndexDef("t", ("a",), kind=IndexKind.SECONDARY)
        assert SizeCheck(ix, 10.0, 0.0).ratio_error == 0.0


class TestValidateSelectivities:
    def test_estimates_close_to_truth(self, env):
        db, stats, _estimator, workload = env
        checks = validate_selectivities(db, workload, stats=stats)
        assert checks, "expected single-table predicated queries"
        mean_error = sum(c.abs_error for c in checks) / len(checks)
        assert mean_error < 0.1

    def test_true_fractions_are_fractions(self, env):
        db, stats, _estimator, workload = env
        for check in validate_selectivities(db, workload, stats=stats):
            assert 0.0 <= check.true <= 1.0
            assert 0.0 <= check.estimated <= 1.0
