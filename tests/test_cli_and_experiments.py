"""Smoke tests: CLI subcommands and fast experiments at tiny scale."""

import pytest

from repro.cli import main
from repro.experiments import ExperimentResult


class TestCLI:
    def test_tune(self, capsys):
        assert main([
            "tune", "--dataset", "tpch", "--scale", "0.03",
            "--budget", "0.2", "--variant", "dtac-both",
        ]) == 0
        out = capsys.readouterr().out
        assert "improvement" in out

    def test_sweep(self, capsys, tmp_path):
        argv = [
            "sweep", "--dataset", "sales", "--scale", "0.02",
            "--budgets", "0.1,0.2", "--variant", "dtac-none",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 runs" in out
        assert "what-if cost cache" in out
        # Warm rerun through the same cache directory.
        assert main(argv) == 0
        warm_out = capsys.readouterr().out
        assert "100.0% hit rate" in warm_out

    def test_tune_delta_and_full_recost_both_print_cleanly(self, capsys):
        """The stats summary must not assume delta counters exist: the
        delta run prints the delta line, --full-recost prints its own
        line, and both report the costing kernel and the same answer."""
        base = [
            "tune", "--dataset", "sales", "--scale", "0.03",
            "--budget", "0.2", "--variant", "dtac-both",
        ]
        assert main(base) == 0
        delta_out = capsys.readouterr().out
        assert "delta costing:" in delta_out
        assert "candidates pruned" in delta_out
        assert "costing kernel:" in delta_out

        assert main(base + ["--full-recost"]) == 0
        full_out = capsys.readouterr().out
        assert "full recost:" in full_out
        assert "delta costing off" in full_out
        assert "delta costing:" not in full_out

        def answer(out):
            lines = []
            for line in out.splitlines():
                if line.startswith("improvement"):
                    # Drop the trailing wall-clock field; everything
                    # else (costs, bytes) must match exactly.
                    lines.append(line.rsplit(", ", 1)[0])
                elif line.startswith("  "):
                    lines.append(line)
            return lines

        assert answer(delta_out) == answer(full_out)

    def test_tune_kernel_flag_forces_backend(self, capsys):
        assert main([
            "tune", "--dataset", "sales", "--scale", "0.03",
            "--budget", "0.2", "--variant", "dtac-both",
            "--kernel", "python",
        ]) == 0
        out = capsys.readouterr().out
        assert "costing kernel: python backend" in out
        assert "0 array batches" in out

    def test_sweep_rejects_bad_budget_list(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--budgets", "abc"])

    def test_estimate(self, capsys):
        assert main([
            "estimate", "--dataset", "tpch", "--scale", "0.03",
        ]) == 0
        out = capsys.readouterr().out
        assert "samplecf" in out or "col" in out

    def test_experiments_single(self, capsys):
        assert main([
            "experiments", "--only", "table4_graph_quality",
            "--scale", "0.05",
        ]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_bad_variant_rejected(self):
        with pytest.raises(SystemExit):
            main(["tune", "--variant", "bogus"])

    def test_validate(self, capsys):
        assert main([
            "validate", "--dataset", "tpch", "--scale", "0.03",
            "--budget", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "deployed improvement" in out
        assert "budget respected" in out

    def test_columnstore(self, capsys):
        assert main([
            "columnstore", "--dataset", "tpch", "--scale", "0.03",
            "--budget", "0.25",
        ]) == 0
        out = capsys.readouterr().out
        assert "column-store advisor (compression-aware)" in out
        assert "proj_" in out

    def test_columnstore_blind(self, capsys):
        assert main([
            "columnstore", "--dataset", "tpch", "--scale", "0.03",
            "--budget", "0.25", "--blind",
        ]) == 0
        assert "blind" in capsys.readouterr().out


class TestExperimentResult:
    def test_format_and_column(self):
        r = ExperimentResult("T", ("a", "b"), rows=[(1, 2.5), (3, 4.0)],
                             notes=["hello"])
        text = r.format()
        assert "T" in text and "hello" in text
        assert r.column("a") == [1, 3]

    def test_unknown_column(self):
        r = ExperimentResult("T", ("a",))
        with pytest.raises(ValueError):
            r.column("zz")


class TestFastExperiments:
    """Tiny-scale runs of the lighter experiments: the assertion is that
    they complete and keep their qualitative shape."""

    def test_table1(self):
        from repro.experiments import table1_mv_rowcount

        r = table1_mv_rowcount.run(scale=0.05)
        errs = dict(zip(r.column("Estimator"), r.column("AvgError%")))
        assert errs["AE"] < errs["Multiply"]

    def test_cs1(self):
        from repro.experiments import cs1_sort_order

        r = cs1_sort_order.run(scale=0.05)
        factors = r.column("x-smaller-lead")
        # Low-cardinality sort leader collapses far more than the
        # near-unique one.
        assert factors[0] > 10.0 * factors[-1]

    def test_vl1_single_budget(self):
        from repro.engine import validate_recommendation
        from repro.api import tune
        from repro.datasets import tpch_workload
        from repro.experiments.common import get_tpch

        db = get_tpch(0.05)
        wl = tpch_workload(db, select_weight=5.0, insert_weight=1.0)
        rec = tune(db, wl, db.total_data_bytes() * 0.2)
        report = validate_recommendation(rec, db, wl)
        assert report.recommendation_holds

    def test_table4(self):
        from repro.experiments import table4_graph_quality

        r = table4_graph_quality.run(scale=0.05)
        for row in r.rows:
            assert row[3] <= row[1] + 1e-9  # Optimal <= All

    def test_fig09(self):
        from repro.experiments import fig09_samplecf_error

        r = fig09_samplecf_error.run(scale=0.05)
        assert len(r.rows) == 4

    def test_budget_sweep_runs(self, tiny_tpch):
        from repro.datasets import tpch_workload
        from repro.experiments.budget_sweep import sweep

        wl = tpch_workload(tiny_tpch, 5.0, 1.0)
        r = sweep("mini", tiny_tpch, wl, (0.1,), ("dta", "dtac-both"))
        assert len(r.rows) == 1
        both = r.column("dtac-both")[0]
        dta = r.column("dta")[0]
        assert both >= dta - 1e-6

    def test_budget_sweep_rejects_unknown_variant(self, tiny_tpch):
        from repro.datasets import tpch_workload
        from repro.experiments.budget_sweep import sweep
        from repro.errors import AdvisorError

        wl = tpch_workload(tiny_tpch, 1.0, 1.0)
        with pytest.raises(AdvisorError):
            sweep("x", tiny_tpch, wl, (0.1,), ("bogus",))
