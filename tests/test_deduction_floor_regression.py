"""Regression tests for estimation pathologies found by ground-truth
validation: stacked page-quantization driving ColExt deductions to
near-zero sizes, and sub-page analytic estimates for tiny tables."""

import pytest

from repro.compression import CompressionMethod
from repro.datasets import tpch_database
from repro.physical.index_def import IndexDef
from repro.sizeest import SizeEstimator
from repro.stats import DatabaseStats
from repro.storage.index_build import IndexKind
from repro.storage.page import PAGE_SIZE, quantize_bytes


@pytest.fixture(scope="module")
def env():
    db = tpch_database(scale=0.1)
    stats = DatabaseStats(db)
    return db, stats, SizeEstimator(db, stats=stats)


class TestDeductionFloor:
    def test_deduced_size_never_below_rows_or_page(self, env):
        """The original bug: ColExt summed the page-quantized reductions
        of two singleton parts and deduced 246 bytes for a 24 KiB index.
        Deduction must floor at max(one page, one byte per row)."""
        db, stats, estimator = env
        target = IndexDef(
            "partsupp", ("ps_suppkey",),
            included_columns=("ps_availqty",),
            kind=IndexKind.SECONDARY, method=CompressionMethod.ROW,
        )
        parts = [
            IndexDef("partsupp", ("ps_suppkey",),
                     kind=IndexKind.SECONDARY,
                     method=CompressionMethod.ROW),
            IndexDef("partsupp", ("ps_availqty",),
                     kind=IndexKind.SECONDARY,
                     method=CompressionMethod.ROW),
        ]
        estimates = estimator.estimate_many(parts + [target], 0.5, 0.9)
        rows = db.table("partsupp").num_rows
        est = estimates[target].est_bytes
        assert est >= min(PAGE_SIZE, rows)
        # And it should be in the right ballpark of the truth.
        true = estimator.true_size(target)
        assert est >= true / 4

    def test_every_batch_estimate_has_sane_floor(self, env):
        db, stats, estimator = env
        lineitem = db.table("lineitem")
        targets = [
            IndexDef("lineitem", (a, b), kind=IndexKind.SECONDARY,
                     method=method)
            for a, b in (
                ("l_shipdate", "l_discount"),
                ("l_shipmode", "l_quantity"),
                ("l_returnflag", "l_linestatus"),
            )
            for method in (CompressionMethod.ROW, CompressionMethod.PAGE)
        ]
        estimates = estimator.estimate_many(targets, 0.5, 0.9)
        for target, estimate in estimates.items():
            true = estimator.true_size(target)
            # est/true within the advisor's e=0.5 promise, after both
            # sides are page quantized.
            q_est = quantize_bytes(estimate.est_bytes)
            assert q_est <= true * 1.6
            assert q_est >= true / 1.6


class TestConsumerQuantization:
    def test_advisor_sizes_are_whole_pages(self, env):
        from repro.api import tune
        from repro.datasets import tpch_workload

        db, stats, estimator = env
        wl = tpch_workload(db, select_weight=3.0, insert_weight=1.0)
        result = tune(db, wl, db.total_data_bytes() * 0.2,
                      estimator=estimator, stats=stats)
        for ix, size in result.sizes.items():
            assert size % PAGE_SIZE == 0, ix.display_name()
            assert size >= PAGE_SIZE

    def test_estimator_keeps_fractional_internals(self, env):
        """The converse discipline: the analytic sizer must *not*
        quantize, or deduction differences collapse."""
        db, stats, estimator = env
        heap = IndexDef("region", (), kind=IndexKind.HEAP)
        analytic = estimator.sizer.uncompressed_bytes(heap)
        assert 0 < analytic < PAGE_SIZE  # 5-row table, fractional bytes
        assert quantize_bytes(analytic) == PAGE_SIZE
