"""Per-context scheduling: lane assignment, cross-context overlap, and
warm engine affinity (pool reuse across same-context requests).

The affinity contract under test (see ``repro.service.scheduler``): a
second tune with identical wiring (same context/variant/seed/options —
any budget) reuses the lane's dormant engine pool (``pools_reused`` >=
1) and still answers **byte-identically** to a fresh sequential run; a
wiring change re-forks; a failed or cancelled run releases the pool.
"""

import asyncio
import threading

import pytest

from repro.datasets.sales import sales_database, sales_workload
from repro.parallel.engine import ParallelEngine, fork_available
from repro.service import AdvisorService
from repro.service.scheduler import ContextScheduler, WarmSlot


@pytest.fixture(scope="module")
def sched_inputs():
    db = sales_database(scale=0.02)
    wl = sales_workload(db)
    db_b = sales_database(scale=0.02, seed=7)
    wl_b = sales_workload(db_b)
    return (db, wl), (db_b, wl_b)


def run(coro):
    return asyncio.run(coro)


async def _make_service(sched_inputs, **kwargs):
    (db, wl), (db_b, wl_b) = sched_inputs
    service = AdvisorService(**kwargs)
    service.register("sales", db, wl)
    service.register("sales_b", db_b, wl_b)
    await service.start()
    return service


TUNE = dict(budget_fraction=0.12, variant="dtac-none")


class TestLaneAssignment:
    def test_dedicated_lanes_until_cap_then_stable_sharing(self):
        scheduler = ContextScheduler(workers=1, max_lanes=2)
        try:
            a = scheduler.lane_for("a")
            b = scheduler.lane_for("b")
            c = scheduler.lane_for("c")
            d = scheduler.lane_for("d")
            assert a is not b
            assert c in (a, b) and d in (a, b)
            # Least-loaded, stable: c and d land on different lanes.
            assert c is not d
            # Assignment is sticky.
            assert scheduler.lane_for("a") is a
            assert scheduler.lane_for("c") is c
            stats = scheduler.stats()
            assert stats["contexts_assigned"] == 4
            assert len(stats["lanes"]) == 2
        finally:
            scheduler.shutdown()

    def test_lane_cap_validation(self):
        with pytest.raises(ValueError):
            ContextScheduler(max_lanes=0)

    def test_primary_engine_used_by_first_lane(self):
        engine = ParallelEngine(1)
        scheduler = ContextScheduler(workers=1, max_lanes=2,
                                     primary_engine=engine)
        try:
            assert scheduler.lane_for("a").engine is engine
            assert scheduler.lane_for("b").engine is not engine
        finally:
            scheduler.shutdown()


class TestCrossContextOverlap:
    def test_blocked_context_does_not_block_another(self, sched_inputs):
        """A request stuck on context A's lane must not delay context
        B: with the old single executor this deadlocked the B request
        behind A's; with per-context lanes B answers while A is still
        blocked."""

        async def scenario():
            service = await _make_service(sched_inputs)
            context = service.contexts["sales"]
            started = threading.Event()
            release = threading.Event()
            original = context.run_whatif_cost

            def blocking(payload):
                started.set()
                assert release.wait(30)
                return original(payload)

            context.run_whatif_cost = blocking
            try:
                blocked = asyncio.ensure_future(
                    service.whatif_cost("sales", statement_index=0)
                )
                await asyncio.get_running_loop().run_in_executor(
                    None, started.wait, 30
                )
                # While A is blocked, B completes.
                other = await asyncio.wait_for(
                    service.whatif_cost("sales_b", statement_index=0),
                    timeout=20,
                )
                assert not blocked.done()
                release.set()
                first = await blocked
                return first, other
            finally:
                context.run_whatif_cost = original
                await service.stop()

        first, other = run(scenario())
        assert first["total"] > 0 and other["total"] > 0

    def test_same_context_requests_serialize_in_order(self, sched_inputs):
        """Same-context requests run strictly in submission order on
        their lane (the determinism contract's scheduling half)."""

        async def scenario():
            service = await _make_service(sched_inputs)
            order = []
            context = service.contexts["sales"]
            original = context.run_whatif_cost

            def recording(payload):
                order.append(payload["statement_index"])
                return original(payload)

            context.run_whatif_cost = recording
            try:
                await asyncio.gather(*[
                    service.whatif_cost("sales", statement_index=i)
                    for i in range(4)
                ])
                return order
            finally:
                context.run_whatif_cost = original
                await service.stop()

        order = run(scenario())
        assert order == [0, 1, 2, 3]


@pytest.mark.skipif(not fork_available(), reason="needs fork")
class TestWarmAffinity:
    @pytest.fixture(autouse=True)
    def _force_parallel(self, monkeypatch):
        # Warm-affinity semantics need real forked pools even when the
        # host exposes a single effective CPU (where engines degrade).
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")

    def test_second_same_context_tune_reuses_pool_byte_identically(
        self, sched_inputs
    ):
        """The acceptance criterion: with a parallel engine, the second
        same-context job reuses the lane's warm pool (pools_reused >=
        1) and each response is byte-identical to a fresh sequential
        service's answer."""

        async def warm_scenario():
            service = await _make_service(sched_inputs, workers=2)
            try:
                first = await service.tune("sales", **TUNE)
                stats_before = service.stats()
                # Different budget, same wiring: still warm.
                second = await service.tune(
                    "sales", budget_fraction=0.2, variant="dtac-none",
                )
                stats_after = service.stats()
                return first, second, stats_before, stats_after
            finally:
                await service.stop()

        async def sequential_baseline():
            service = await _make_service(sched_inputs)
            try:
                return (
                    await service.tune("sales", **TUNE),
                    await service.tune("sales", budget_fraction=0.2,
                                       variant="dtac-none"),
                )
            finally:
                await service.stop()

        first, second, before, after = run(warm_scenario())
        base_first, base_second = run(sequential_baseline())
        assert first["result"] == base_first["result"]
        assert second["result"] == base_second["result"]
        assert after["pools_reused"] > before["pools_reused"]
        assert after["pools_reused"] >= 1
        assert after["scheduler"]["warm_runs"] >= 1

    def test_wiring_change_forks_cold(self, sched_inputs):
        """A different sampling seed is different wiring: the pool is
        dropped, the run forks cold, and the answer matches a fresh
        sequential run with that seed."""

        async def scenario():
            service = await _make_service(sched_inputs, workers=2)
            try:
                await service.tune("sales", **TUNE)
                warm_before = service.stats()["scheduler"]["warm_runs"]
                reseeded = await service.tune(
                    "sales", budget_fraction=0.12, variant="dtac-none",
                    seed=12345,
                )
                warm_after = service.stats()["scheduler"]["warm_runs"]
                return reseeded, warm_before, warm_after
            finally:
                await service.stop()

        async def baseline():
            service = await _make_service(sched_inputs)
            try:
                return await service.tune(
                    "sales", budget_fraction=0.12, variant="dtac-none",
                    seed=12345,
                )
            finally:
                await service.stop()

        reseeded, warm_before, warm_after = run(scenario())
        assert warm_after == warm_before  # no warm grant across wiring
        assert reseeded["result"] == run(baseline())["result"]

    def test_failed_tune_releases_pool(self, sched_inputs):
        async def scenario():
            service = await _make_service(sched_inputs, workers=2)
            try:
                await service.tune("sales", **TUNE)
                lane = service.scheduler.lane_for("sales")
                slot = service.contexts["sales"].warm_slot
                assert lane.engine.has_pool
                assert slot.signature is not None
                # Sabotage the next run mid-flight.
                context = service.contexts["sales"]
                original = context.run_tune

                def exploding(payload, engine, **kwargs):
                    raise RuntimeError("boom")

                context.run_tune = exploding
                try:
                    with pytest.raises(RuntimeError, match="boom"):
                        await service.tune(
                            "sales", budget_fraction=0.2,
                            variant="dtac-none",
                        )
                finally:
                    context.run_tune = original
                released = (lane.engine.has_pool, slot.signature)
                # And the lane recovers for the next run.
                again = await service.tune("sales", **TUNE)
                return released, again
            finally:
                await service.stop()

        (has_pool, signature), again = run(scenario())
        assert not has_pool
        assert signature is None
        assert again["result"]["improvement"] > 0

    def test_stop_releases_every_lane_pool(self, sched_inputs):
        async def scenario():
            service = await _make_service(sched_inputs, workers=2)
            await service.tune("sales", **TUNE)
            await service.tune("sales_b", **TUNE)
            lanes = service.scheduler.lanes
            assert any(lane.engine.has_pool for lane in lanes)
            await service.stop()
            return [lane.engine.has_pool for lane in lanes]

        assert not any(run(scenario()))


class TestWarmSlotPlumbing:
    def test_prepare_warm_records_signature(self):
        scheduler = ContextScheduler(workers=1, max_lanes=1)
        try:
            lane = scheduler.lane_for("ctx")
            slot = WarmSlot("ctx")
            # Sequential engines never have pools: always cold, but the
            # signature is still tracked.
            assert scheduler.prepare_warm(lane, slot, "sig-1") is False
            assert slot.signature == "sig-1"
            assert scheduler.prepare_warm(lane, slot, "sig-2") is False
            assert slot.signature == "sig-2"
            scheduler.release(lane, slot)
            assert slot.signature is None
        finally:
            scheduler.shutdown()
