"""Tests for the shared experiment infrastructure in
``repro.experiments.common``."""

import pytest
from hypothesis import given, strategies as st

from repro.compression import CompressionMethod
from repro.experiments.common import (
    ExperimentResult,
    error_stats,
    fit_through_origin,
    index_population,
)
from repro.datasets import tpch_database


class TestFitThroughOrigin:
    def test_exact_line(self):
        xs = [1.0, 2.0, 3.0]
        ys = [2.0, 4.0, 6.0]
        assert fit_through_origin(xs, ys) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert fit_through_origin([], []) == 0.0

    def test_all_zero_x(self):
        assert fit_through_origin([0.0, 0.0], [1.0, 2.0]) == 0.0

    @given(st.floats(min_value=-10, max_value=10, allow_nan=False),
           st.lists(st.floats(min_value=0.1, max_value=100),
                    min_size=1, max_size=20))
    def test_recovers_slope(self, slope, xs):
        ys = [slope * x for x in xs]
        assert fit_through_origin(xs, ys) == pytest.approx(slope, abs=1e-6)


class TestErrorStats:
    def test_bias_and_stddev(self):
        bias, stddev = error_stats([0.1, -0.1, 0.1, -0.1])
        assert bias == pytest.approx(0.0)
        assert stddev == pytest.approx(0.11547, rel=1e-3)

    def test_empty(self):
        assert error_stats([]) == (0.0, 0.0)

    def test_single_sample_has_zero_variance(self):
        bias, stddev = error_stats([0.25])
        assert bias == pytest.approx(0.25)
        assert stddev == 0.0


class TestIndexPopulation:
    def test_methods_times_keysets(self):
        db = tpch_database(scale=0.02)
        pop = index_population(
            db, {"orders": [("o_orderdate",), ("o_custkey",)]}
        )
        assert len(pop) == 4  # 2 keysets x (ROW, PAGE)
        methods = {ix.method for ix in pop}
        assert methods == {CompressionMethod.ROW, CompressionMethod.PAGE}


class TestExperimentResultFormatting:
    def test_number_formats(self):
        r = ExperimentResult("T", ("v",),
                             rows=[(123.456,), (1.234,), (0.001234,)])
        text = r.format()
        assert "123" in text      # >= 100 -> no decimals
        assert "1.23" in text     # >= 1 -> 2 decimals
        assert "0.0012" in text   # < 1 -> 4 decimals

    def test_headers_always_aligned(self):
        r = ExperimentResult("T", ("long-header", "x"),
                             rows=[(1, 2)])
        lines = r.format().splitlines()
        header, rule = lines[2], lines[3]
        assert len(rule) >= len("long-header")
        assert header.startswith("long-header")
