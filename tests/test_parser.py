"""Tests for the SQL subset parser."""

import pytest

from repro.errors import ParseError
from repro.workload import (
    Between,
    Comparison,
    InList,
    InsertQuery,
    DeleteQuery,
    SelectQuery,
    UpdateQuery,
    date_to_days,
    days_to_date,
    parse_query,
    parse_statement,
)


class TestDates:
    def test_epoch(self):
        assert date_to_days("1970-01-01") == 0

    def test_roundtrip(self):
        days = date_to_days("1995-03-15")
        assert str(days_to_date(days)) == "1995-03-15"

    def test_ordering(self):
        assert date_to_days("1994-01-01") < date_to_days("1995-01-01")


class TestSelectParsing:
    def test_simple(self):
        q = parse_query("SELECT a, b FROM t")
        assert q.tables == ("t",)
        assert q.select_columns == ("a", "b")

    def test_aggregates(self):
        q = parse_query("SELECT SUM(a * b), COUNT(*), MIN(c) FROM t")
        assert q.aggregates[0].func == "SUM"
        assert q.aggregates[0].columns == ("a", "b")
        assert q.aggregates[1].columns == ()
        assert q.aggregates[2].func == "MIN"

    def test_where_ops(self):
        q = parse_query(
            "SELECT a FROM t WHERE a = 1 AND b <> 'x' AND c >= 2.5"
        )
        assert q.predicates[0] == Comparison("a", "=", 1)
        assert q.predicates[1] == Comparison("b", "!=", "x")
        assert q.predicates[2] == Comparison("c", ">=", 2.5)

    def test_between_and_in(self):
        q = parse_query(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3)"
        )
        assert q.predicates[0] == Between("a", 1, 5)
        assert q.predicates[1] == InList("b", (1, 2, 3))

    def test_date_literals(self):
        q = parse_query(
            "SELECT a FROM t WHERE d >= DATE '1994-06-01'"
        )
        assert q.predicates[0].value == date_to_days("1994-06-01")

    def test_joins(self):
        q = parse_query(
            "SELECT a FROM t JOIN u ON t_k = u_k JOIN v ON u_v = v_k"
        )
        assert q.tables == ("t", "u", "v")
        assert len(q.joins) == 2
        assert q.joins[0].left_column == "t_k"

    def test_group_order(self):
        q = parse_query(
            "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a"
        )
        assert q.group_by == ("a",)
        assert q.order_by == ("a",)

    def test_string_escapes(self):
        q = parse_query("SELECT a FROM t WHERE b = 'it''s'")
        assert q.predicates[0].value == "it's"

    def test_identifier_named_like_aggregate(self):
        q = parse_query("SELECT count FROM t")
        assert q.select_columns == ("count",)


class TestOtherStatements:
    def test_insert_bulk(self):
        stmt = parse_statement("INSERT INTO t BULK 500")
        assert stmt == InsertQuery("t", 500)

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = 'x' WHERE c > 3")
        assert isinstance(stmt, UpdateQuery)
        assert stmt.set_columns == ("a", "b")
        assert stmt.predicates[0] == Comparison("c", ">", 3)

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, DeleteQuery)


class TestErrors:
    @pytest.mark.parametrize("sql", [
        "SELECT",
        "SELECT a FROM",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t WHERE a ==",
        "SELECT a FROM t JOIN u ON a < b",
        "INSERT INTO t VALUES (1)",
        "DROP TABLE t",
        "SELECT a FROM t extra garbage ~~",
        "SELECT a FROM t WHERE a BETWEEN 1",
        "INSERT INTO t BULK lots",
    ])
    def test_rejects(self, sql):
        with pytest.raises(ParseError):
            parse_statement(sql)

    def test_parse_query_rejects_insert(self):
        with pytest.raises(ParseError):
            parse_query("INSERT INTO t BULK 1")


class TestDatasetQueryBanks:
    def test_all_tpch_queries_parse_and_validate(self):
        from repro.datasets import tpch_database, tpch_workload

        db = tpch_database(scale=0.02)
        wl = tpch_workload(db)
        assert len(wl.queries) == 22
        assert len(wl.updates) == 2
        for ws in wl.queries:
            assert isinstance(ws.statement, SelectQuery)

    def test_all_sales_queries_parse_and_validate(self):
        from repro.datasets import sales_database, sales_workload

        db = sales_database(scale=0.05)
        wl = sales_workload(db)
        assert len(wl.queries) == 50
        assert len(wl.updates) == 2
