"""Tests for projection sizing: ground truth, sampling, RLE deduction."""

import random

import pytest

from repro.catalog import Column, INT, Table, char
from repro.columnstore import (
    ProjectionDef,
    ProjectionSizer,
    estimate_rle_run_length,
    super_projection,
)
from repro.compression import CompressionMethod
from repro.errors import SizeEstimationError


def make_table(n_rows=4000, seed=11):
    """A table with one low-cardinality, one correlated, one unique col."""
    rng = random.Random(seed)
    t = Table(
        "facts",
        [
            Column("id", INT),
            Column("region", char(8)),
            Column("category", INT),
            Column("amount", INT),
        ],
        primary_key=("id",),
    )
    regions = ["north", "south", "east", "west"]
    for i in range(n_rows):
        region = rng.choice(regions)
        # category correlates with region (few categories per region).
        category = regions.index(region) * 10 + rng.randrange(3)
        t.append_row((i, region, category, rng.randrange(10**6)))
    return t


@pytest.fixture(scope="module")
def table():
    return make_table()


@pytest.fixture(scope="module")
def sizer(table):
    return ProjectionSizer(table)


class TestMeasure:
    def test_sorted_low_cardinality_column_collapses(self, sizer):
        p = ProjectionDef("facts", ("region", "amount"), ("region",))
        size = sizer.measure(p)
        # 4 distinct sorted values: RLE (or bitpack) makes it one page.
        assert size.column_bytes["region"] <= 8192

    def test_sort_order_changes_size(self, sizer, table):
        # Page quantization can hide small differences at this scale, so
        # compare the pre-quantization byte totals: sorting by region
        # lets region/category collapse; sorting by id does not.
        by_region = sizer.measure(
            ProjectionDef("facts", ("region", "category", "id"), ("region",))
        )
        by_id = sizer.measure(
            ProjectionDef("facts", ("id", "region", "category"), ("id",))
        )
        used = lambda s: sum(s.column_used_bytes.values())  # noqa: E731
        assert used(by_region) != used(by_id)

    def test_bytes_equal_column_sum(self, sizer):
        p = super_projection(sizer.table)
        size = sizer.measure(p)
        assert size.bytes == sum(size.column_bytes.values())
        assert size.rows == sizer.table.num_rows

    def test_uncompressed_only_matches_fixed_width(self, sizer, table):
        p = ProjectionDef("facts", ("amount",))
        size = sizer.measure(p, encodings=(CompressionMethod.NONE,))
        expected = table.num_rows * table.column("amount").width
        assert size.column_used_bytes["amount"] == expected


class TestSampleEstimate:
    def test_within_factor_two(self, sizer):
        p = ProjectionDef("facts", ("region", "category", "amount"),
                          ("region",))
        true = sizer.measure(p).bytes
        est = sizer.estimate_from_sample(p, 0.2, seed=3).bytes
        assert true / 2 <= est <= true * 2

    def test_rows_scaled_to_full_table(self, sizer, table):
        p = ProjectionDef("facts", ("amount",))
        est = sizer.estimate_from_sample(p, 0.25, seed=1)
        assert est.rows == table.num_rows

    def test_invalid_fraction_rejected(self, sizer):
        p = ProjectionDef("facts", ("amount",))
        with pytest.raises(SizeEstimationError):
            sizer.estimate_from_sample(p, 0.0)
        with pytest.raises(SizeEstimationError):
            sizer.estimate_from_sample(p, 1.5)

    def test_larger_sample_more_accurate_on_average(self, sizer):
        p = ProjectionDef("facts", ("region", "category"), ("region",))
        true = sizer.measure(p).bytes

        def mean_abs_error(fraction):
            errors = []
            for seed in range(5):
                est = sizer.estimate_from_sample(p, fraction, seed=seed)
                errors.append(abs(est.bytes - true) / true)
            return sum(errors) / len(errors)

        assert mean_abs_error(0.5) <= mean_abs_error(0.02) + 0.05


class TestRunLengthFormula:
    def test_paper_example(self):
        # Figure 2: 8 tuples, |AB| = 4 -> L(I_BA, A) = 2.
        assert estimate_rle_run_length(8, 4) == pytest.approx(2.0)

    def test_single_group_is_whole_column(self):
        assert estimate_rle_run_length(1000, 1) == 1000.0

    def test_invalid_inputs(self):
        with pytest.raises(SizeEstimationError):
            estimate_rle_run_length(10, 0)
        with pytest.raises(SizeEstimationError):
            estimate_rle_run_length(-1, 5)


class TestRLEDeduction:
    def test_leading_sort_column_is_near_exact(self, sizer):
        p = ProjectionDef("facts", ("region", "amount"), ("region",))
        true = sizer.measure(
            p, encodings=(CompressionMethod.RLE,)
        ).column_bytes["region"]
        deduced = sizer.deduce_rle_column(p, "region")
        assert deduced == true

    def test_correlated_column_not_wildly_off(self, sizer):
        # category fragments under the region sort, but correlation caps
        # the joint distinct count; the independence default overestimates
        # the fragmentation, so the deduction must stay within a page of
        # the truth for this small table.
        p = ProjectionDef("facts", ("region", "category"), ("region",))
        true = sizer.measure(
            p, encodings=(CompressionMethod.RLE,)
        ).column_bytes["category"]
        deduced = sizer.deduce_rle_column(p, "category")
        assert abs(deduced - true) <= 8192

    def test_unknown_column_rejected(self, sizer):
        p = ProjectionDef("facts", ("region",))
        with pytest.raises(SizeEstimationError):
            sizer.deduce_rle_column(p, "amount")

    def test_explicit_joint_distinct_override(self, sizer, table):
        p = ProjectionDef("facts", ("region", "category"), ("region",))
        joint = len(
            set(zip(table.column_values("region"),
                    table.column_values("category")))
        )
        deduced = sizer.deduce_rle_column(
            p, "category", distincts={"category": joint}
        )
        true = sizer.measure(
            p, encodings=(CompressionMethod.RLE,)
        ).column_bytes["category"]
        assert abs(deduced - true) <= 8192

    def test_empty_table(self):
        t = Table("empty", [Column("x", INT)])
        sizer = ProjectionSizer(t)
        p = ProjectionDef("empty", ("x",))
        assert sizer.deduce_rle_column(p, "x") == 0
