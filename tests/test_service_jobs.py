"""Job-based serving: lifecycle state machine, streamed per-greedy-step
progress, cancellation, and the byte-identity invariants.

The contract under test (see ``repro.service.jobs``): every job walks
``queued -> running -> done|failed|cancelled``; a live tune streams at
least one progress event per greedy step; any interleaving of
submit/poll/cancel across contexts yields results byte-identical to
sequential ``tune()`` per context; and a cancelled job releases its
scheduler lane and engine pool.
"""

import asyncio
import random
import threading

import pytest

from repro.api import tune
from repro.datasets.sales import sales_database, sales_workload
from repro.errors import BackpressureError, JobError
from repro.service import AdvisorService, serialize_result
from repro.service.jobs import TERMINAL_STATES


@pytest.fixture(scope="module")
def job_inputs():
    db = sales_database(scale=0.02)
    wl = sales_workload(db)
    db_b = sales_database(scale=0.02, seed=7)
    wl_b = sales_workload(db_b)
    return (db, wl), (db_b, wl_b)


def run(coro):
    return asyncio.run(coro)


async def _make_service(job_inputs, **kwargs):
    (db, wl), (db_b, wl_b) = job_inputs
    service = AdvisorService(**kwargs)
    service.register("sales", db, wl)
    service.register("sales_b", db_b, wl_b)
    await service.start()
    return service


TUNE = dict(budget_fraction=0.12, variant="dtac-none")


class TestJobLifecycle:
    def test_submit_poll_done_with_greedy_step_events(self, job_inputs):
        """A tune job reaches ``done``; its event stream carries the
        queued/running/done transitions and >=1 event per greedy step
        of the final recommendation."""
        (db, wl), _ = job_inputs

        async def scenario():
            service = await _make_service(job_inputs)
            try:
                record = service.submit_job("tune", "sales", TUNE)
                assert record.state == "queued"
                events = []
                async for event in service.job_events(record.id):
                    events.append(event)
                return record.snapshot(), events
            finally:
                await service.stop()

        snapshot, events = run(scenario())
        assert snapshot["state"] == "done"
        states = [e["state"] for e in events if e["event"] == "state"]
        assert states == ["queued", "running", "done"]
        # seq is gapless and ordered.
        assert [e["seq"] for e in events] == list(range(1, len(events) + 1))
        direct = tune(db, wl, db.total_data_bytes() * 0.12,
                      variant="dtac-none")
        greedy = [e for e in events if e["event"] == "greedy_step"]
        assert len(greedy) >= len(direct.steps) >= 1
        # The winning start's steps all appear among the events.
        streamed = {e["step"] for e in greedy}
        assert set(direct.steps) <= streamed

    def test_job_result_byte_identical_to_sync_endpoint(self, job_inputs):
        (db, wl), _ = job_inputs

        async def scenario():
            service = await _make_service(job_inputs)
            try:
                record = service.submit_job("tune", "sales", TUNE)
                async for _ in service.job_events(record.id):
                    pass
                sync = await service.tune("sales", **TUNE)
                return record.result, sync
            finally:
                await service.stop()

        job_result, sync = run(scenario())
        assert job_result["result"] == sync["result"]
        direct = tune(db, wl, db.total_data_bytes() * 0.12,
                      variant="dtac-none")
        assert job_result["result"] == serialize_result(direct)["result"]

    def test_sweep_job_streams_unit_boundaries(self, job_inputs):
        async def scenario():
            service = await _make_service(job_inputs)
            try:
                record = service.submit_job("sweep", "sales", dict(
                    budget_fractions=[0.1, 0.15], variant="dtac-none",
                ))
                events = []
                async for event in service.job_events(record.id):
                    events.append(event)
                return record.snapshot(), events
            finally:
                await service.stop()

        snapshot, events = run(scenario())
        assert snapshot["state"] == "done"
        units = [e for e in events if e["event"] == "sweep_unit"]
        # started + done per unit, two units.
        assert len(units) == 4
        assert len(snapshot["result"]["runs"]) == 2
        # Nested advisor events are tagged with their unit index.
        nested = [e for e in events
                  if e["event"] == "greedy_step" and "unit" in e]
        assert nested

    def test_events_after_pagination(self, job_inputs):
        async def scenario():
            service = await _make_service(job_inputs)
            try:
                record = service.submit_job("tune", "sales", TUNE)
                async for _ in service.job_events(record.id):
                    pass
                full = service.jobs.events_after(record.id, 0)
                tail = service.jobs.events_after(record.id, full[2]["seq"])
                return full, tail
            finally:
                await service.stop()

        full, tail = run(scenario())
        assert tail == full[3:]

    def test_submit_errors(self, job_inputs):
        async def scenario():
            service = await _make_service(job_inputs)
            try:
                with pytest.raises(JobError, match="unknown job kind"):
                    service.submit_job("estimate_size", "sales", {})
                with pytest.raises(JobError, match="unknown context"):
                    service.submit_job("tune", "nope", TUNE)
                with pytest.raises(JobError, match="no such job"):
                    service.job("job-424242")
                # A failing payload lands in `failed`, not an exception.
                record = service.submit_job("tune", "sales",
                                            {"variant": "bogus"})
                async for _ in service.job_events(record.id):
                    pass
                return record.snapshot()
            finally:
                await service.stop()

        snapshot = run(scenario())
        assert snapshot["state"] == "failed"
        assert "unknown variant" in snapshot["error"]

    def test_submit_rejected_when_not_running(self, job_inputs):
        async def scenario():
            service = await _make_service(job_inputs)
            await service.stop()
            with pytest.raises(JobError, match="not running"):
                service.submit_job("tune", "sales", TUNE)

        run(scenario())

    def test_job_queue_backpressure(self, job_inputs):
        """Queued jobs beyond max_pending are rejected with the same
        honest backpressure error the request path uses."""

        async def scenario():
            service = await _make_service(job_inputs, max_pending=2)
            context = service.contexts["sales"]
            started = threading.Event()
            release = threading.Event()
            original = context.run_whatif_cost

            def blocking(payload):
                started.set()
                assert release.wait(30)
                return original(payload)

            context.run_whatif_cost = blocking
            try:
                blocked = asyncio.ensure_future(
                    service.whatif_cost("sales", statement_index=0)
                )
                await asyncio.get_running_loop().run_in_executor(
                    None, started.wait, 30
                )
                # Two queued jobs fill the job queue; the third bounces.
                first = service.submit_job("tune", "sales", TUNE)
                second = service.submit_job(
                    "tune", "sales", dict(TUNE, budget_fraction=0.2)
                )
                with pytest.raises(BackpressureError):
                    service.submit_job(
                        "tune", "sales", dict(TUNE, budget_fraction=0.3)
                    )
                # Cancel the queued jobs so the drain stays quick.
                service.cancel_job(first.id)
                service.cancel_job(second.id)
                release.set()
                await blocked
            finally:
                context.run_whatif_cost = original
                await service.stop()

        run(scenario())


class TestJobCancellation:
    def test_cancel_queued_job_never_runs(self, job_inputs):
        async def scenario():
            service = await _make_service(job_inputs)
            context = service.contexts["sales"]
            started = threading.Event()
            release = threading.Event()
            original = context.run_whatif_cost

            def blocking(payload):
                started.set()
                assert release.wait(30)
                return original(payload)

            context.run_whatif_cost = blocking
            try:
                blocker = asyncio.ensure_future(
                    service.whatif_cost("sales", statement_index=0)
                )
                await asyncio.get_running_loop().run_in_executor(
                    None, started.wait, 30
                )
                record = service.submit_job("tune", "sales", TUNE)
                cancelled = service.cancel_job(record.id)
                assert cancelled.state == "cancelled"  # resolved now
                release.set()
                await blocker
                async for _ in service.job_events(record.id):
                    pass
                return record.snapshot()
            finally:
                context.run_whatif_cost = original
                await service.stop()

        snapshot = run(scenario())
        assert snapshot["state"] == "cancelled"
        assert snapshot["started"] is None  # never began executing

    def test_cancel_running_job_unwinds_and_releases(self, job_inputs):
        """Cancelling mid-run: the job lands in ``cancelled`` within
        one greedy step, the lane takes new work immediately, and the
        lane's engine pool is dropped (a partial pool must never look
        warm)."""

        async def scenario():
            service = await _make_service(job_inputs)
            try:
                record = service.submit_job("tune", "sales", TUNE)
                seen = 0
                async for event in service.job_events(record.id):
                    if event["event"] in ("greedy_step", "sweep",
                                          "phase"):
                        seen += 1
                        if seen == 2:
                            service.cancel_job(record.id)
                lane = service.scheduler.lane_for("sales")
                slot = service.contexts["sales"].warm_slot
                after = await service.whatif_cost(
                    "sales", statement_index=0
                )
                return (record.snapshot(), lane.engine.has_pool,
                        slot.signature, after)
            finally:
                await service.stop()

        snapshot, has_pool, signature, after = run(scenario())
        assert snapshot["state"] == "cancelled"
        assert "result" not in snapshot
        assert not has_pool          # engine pool released
        assert signature is None     # never reused as warm
        assert after["total"] > 0    # lane still serves requests

    def test_cancel_terminal_job_is_idempotent(self, job_inputs):
        async def scenario():
            service = await _make_service(job_inputs)
            try:
                record = service.submit_job("tune", "sales", TUNE)
                async for _ in service.job_events(record.id):
                    pass
                assert record.state == "done"
                again = service.cancel_job(record.id)
                return again.snapshot()
            finally:
                await service.stop()

        snapshot = run(scenario())
        assert snapshot["state"] == "done"  # not clobbered

    def test_stop_without_drain_cancels_running_jobs(self, job_inputs):
        async def scenario():
            service = await _make_service(job_inputs)
            record = service.submit_job("tune", "sales", TUNE)
            # Let it start running, then yank the service.
            while record.state == "queued":
                await asyncio.sleep(0.01)
            await service.stop(drain=False)
            return record.snapshot()

        snapshot = run(scenario())
        assert snapshot["state"] in ("cancelled", "done")


class TestInterleavingInvariants:
    """Any interleaving of submit/poll/cancel across two contexts must
    yield per-context results byte-identical to sequential ``tune()``."""

    @pytest.mark.parametrize("seed", [11, 23])
    def test_random_interleaving_byte_identical(self, job_inputs, seed):
        (db, wl), (db_b, wl_b) = job_inputs
        rng = random.Random(seed)
        budgets = [0.1, 0.12, 0.15]
        contexts = ["sales", "sales_b"]
        plan = [
            (rng.choice(contexts), rng.choice(budgets),
             rng.random() < 0.3)   # ~30% of jobs get a cancel attempt
            for _ in range(5)
        ]

        async def scenario():
            service = await _make_service(job_inputs)
            try:
                records = []
                for context, budget, want_cancel in plan:
                    record = service.submit_job("tune", context, dict(
                        budget_fraction=budget, variant="dtac-none",
                    ))
                    records.append(record)
                    if want_cancel:
                        # Poll a little, then cancel — wherever the job
                        # happens to be in its lifecycle.
                        await asyncio.sleep(rng.random() * 0.2)
                        service.job(record.id)
                        service.cancel_job(record.id)
                for record in records:
                    async for _ in service.job_events(record.id):
                        pass
                assert all(r.terminal for r in records)
                return [r.snapshot() for r in records]
            finally:
                await service.stop()

        snapshots = run(scenario())
        baselines = {}
        for (context, budget, _), snapshot in zip(plan, snapshots):
            assert snapshot["state"] in TERMINAL_STATES
            assert snapshot["state"] != "failed"
            if snapshot["state"] != "done":
                continue
            key = (context, budget)
            if key not in baselines:
                data, load = ((db, wl) if context == "sales"
                              else (db_b, wl_b))
                baselines[key] = serialize_result(tune(
                    data, load, data.total_data_bytes() * budget,
                    variant="dtac-none",
                ))["result"]
            assert snapshot["result"]["result"] == baselines[key], (
                f"job on {context} at budget {budget} diverged from "
                "sequential tune()"
            )

    def test_history_eviction_keeps_bound(self, job_inputs):
        async def scenario():
            service = await _make_service(job_inputs)
            service.jobs.max_history = 3
            try:
                ids = []
                for i in range(5):
                    record = service.submit_job(
                        "tune", "sales",
                        dict(budget_fraction=0.1 + i * 0.01,
                             variant="dtac-none"),
                    )
                    ids.append(record.id)
                    async for _ in service.job_events(record.id):
                        pass
                return ids, service.jobs.list_jobs()
            finally:
                await service.stop()

        ids, listed = run(scenario())
        assert len(listed) == 3
        # Oldest evicted, newest retained.
        assert [j["id"] for j in listed] == ids[-3:]
