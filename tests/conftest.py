"""Shared fixtures: a small deterministic database used across tests,
plus the ``--update-golden`` refresh flag for the golden-recommendation
regression canaries."""

import random

import pytest

from repro.catalog import Column, Database, INT, Table, char, decimal
from repro.stats import DatabaseStats


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/golden/*.json from the current advisor "
             "output instead of asserting against it (commit the diff "
             "deliberately — it documents a behavior change)",
    )


@pytest.fixture(scope="session")
def small_db() -> Database:
    """A two-table star: fact(40 cols worth of redundancy) + dim."""
    rng = random.Random(1234)
    db = Database("small")
    dim = Table(
        "dim",
        [
            Column("d_key", INT),
            Column("d_name", char(12)),
            Column("d_group", char(8)),
        ],
        primary_key=("d_key",),
    )
    for i in range(50):
        dim.append_row((i, f"dim_{i:04d}", f"G{i % 5}"))
    db.add_table(dim)

    fact = Table(
        "fact",
        [
            Column("f_key", INT),
            Column("f_dkey", INT),
            Column("f_cat", char(10)),
            Column("f_qty", INT),
            Column("f_price", decimal()),
            Column("f_day", INT),
        ],
        primary_key=("f_key",),
    )
    for i in range(4000):
        fact.append_row(
            (
                i,
                rng.randrange(50),
                f"CAT_{rng.randrange(8)}",
                rng.randrange(100),
                rng.randrange(10000) * 10,
                rng.randrange(365),
            )
        )
    db.add_table(fact)
    db.add_foreign_key("fact", "f_dkey", "dim", "d_key")
    return db


@pytest.fixture(scope="session")
def small_stats(small_db) -> DatabaseStats:
    return DatabaseStats(small_db)


@pytest.fixture(scope="session")
def tiny_tpch():
    """A very small TPC-H instance shared by integration tests."""
    from repro.datasets import tpch_database

    return tpch_database(scale=0.05)
