"""Continuous tuning: drift generator determinism, the drop-then-refill
retune search, and the retune identity matrix.

The contract: a drift schedule is a pure function of (workload, spec,
phase); a retune sequence over a 2-phase drift is byte-identical across
PYTHONHASHSEED values, workers 1v2, and delta costing on/off, and is
pinned as a golden fixture; after a phase shift that kills a
structure's benefit, at least one drop fires; and the final retuned
configuration matches a cold tune at the final phase on quality.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import Session
from repro.advisor.retune import (
    RetuneResult,
    configuration_diff,
    retune_sequence,
)
from repro.datasets.sales import sales_database, sales_workload
from repro.errors import AdvisorError
from repro.service.context import serialize_result
from repro.workload.drift import DriftSpec, DriftingWorkload, drift_phase

SRC = str(Path(__file__).resolve().parent.parent / "src")
GOLDEN = (Path(__file__).parent / "golden" / "retune"
          / "retune_drift_sales.json")

#: the pinned 2-phase drift scenario: phase 0 and phase 2 pick disjoint
#: hot sets, and the weights are extreme enough that the phase shift
#: strands part of the phase-0 recommendation.
SPEC = dict(seed=0, hot_fraction=0.2, hot_weight=20.0, cold_weight=0.01)
PHASES = (0, 2)
BUDGET = 0.15
VARIANT = "dtac-none"


@pytest.fixture(scope="module")
def drift_inputs():
    db = sales_database(scale=0.02)
    wl = sales_workload(db)
    return db, DriftingWorkload(wl, DriftSpec(**SPEC))


def _sequence(db, drifting, **session_extra):
    session = Session(db, budget_fraction=BUDGET, variant=VARIANT,
                      **session_extra)
    return retune_sequence(session, drifting.phases(PHASES))


def _fingerprint(results) -> list:
    """The deterministic shape of a retune sequence: per phase, the
    ``result`` section of the wire serialization plus the diff."""
    out = []
    for entry in results:
        if isinstance(entry, RetuneResult):
            out.append({
                "result": serialize_result(entry.result)["result"],
                "generation": entry.generation,
                "dropped": [ix.display_name() for ix in entry.dropped],
                "added": [ix.display_name() for ix in entry.added],
                "kept": [ix.display_name() for ix in entry.kept],
            })
        else:
            out.append({"result": serialize_result(entry)["result"]})
    return out


class TestDriftGenerator:
    def test_phase_is_pure_and_seeded(self, drift_inputs):
        _, drifting = drift_inputs
        base = drifting.base
        spec = drifting.spec
        a = drift_phase(base, spec, 3)
        b = drift_phase(base, spec, 3)
        assert [s.weight for s in a] == [s.weight for s in b]
        other = drift_phase(base, spec, 4)
        assert [s.weight for s in a] != [s.weight for s in other]
        # Reweighting never reorders or rewrites the statements.
        assert [s.name for s in a] == [s.name for s in base]
        assert [s.statement for s in a] == \
            [s.statement for s in base]

    def test_spec_roundtrip_and_validation(self):
        spec = DriftSpec(**SPEC)
        assert DriftSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(AdvisorError):
            DriftSpec(hot_fraction=1.5)
        with pytest.raises(AdvisorError):
            DriftSpec.from_dict({"hot_faction": 0.2})

    def test_memoized_phases(self, drift_inputs):
        _, drifting = drift_inputs
        assert drifting.phase(2) is drifting.phase(2)
        assert len(drifting.phases((0, 1, 2))) == 3


class TestRetuneSequence:
    def test_drop_fires_after_phase_shift(self, drift_inputs):
        """The tentpole's observable: the phase shift strands part of
        the phase-0 configuration, and the retune evicts it."""
        db, drifting = drift_inputs
        cold, retuned = _sequence(db, drifting)
        assert isinstance(retuned, RetuneResult)
        assert retuned.generation == 2
        assert len(retuned.dropped) >= 1
        assert retuned.config_changed

    def test_quality_matches_cold_tune_at_final_phase(self, drift_inputs):
        """Equal recommendation quality: the incremental retune lands
        within 5% of a cold tune run from scratch on the final phase."""
        db, drifting = drift_inputs
        _, retuned = _sequence(db, drifting)
        cold = Session(db, drifting.phase(PHASES[-1]),
                       budget_fraction=BUDGET, variant=VARIANT).tune()
        assert retuned.result.final_cost <= cold.final_cost * 1.05

    def test_diff_accounts_for_every_member(self, drift_inputs):
        db, drifting = drift_inputs
        cold, retuned = _sequence(db, drifting)
        dropped, added, kept = configuration_diff(
            cold.configuration, retuned.configuration
        )
        assert [ix.display_name() for ix in dropped] == \
            [ix.display_name() for ix in retuned.dropped]
        assert sorted(ix.display_name() for ix in added + kept) == \
            sorted(ix.display_name()
                   for ix in retuned.configuration.ordered())

    def test_retune_without_configuration_raises(self, drift_inputs):
        db, drifting = drift_inputs
        session = Session(db, drifting.phase(0), budget_fraction=BUDGET,
                          variant=VARIANT)
        with pytest.raises(AdvisorError, match="previous configuration"):
            session.retune()


class TestRetuneIdentity:
    """The identity matrix: one fingerprint, many execution shapes."""

    def test_workers_1v2_identical(self, drift_inputs):
        db, drifting = drift_inputs
        seq = _fingerprint(_sequence(db, drifting, workers=1))
        par = _fingerprint(_sequence(db, drifting, workers=2))
        assert seq == par

    def test_delta_on_off_identical(self, drift_inputs):
        db, drifting = drift_inputs
        on = _fingerprint(_sequence(db, drifting, delta_costing=True))
        off = _fingerprint(_sequence(db, drifting, delta_costing=False))
        assert on == off

    def test_hashseed_independent(self):
        script = f"""
import json
from repro.api import Session
from repro.advisor.retune import retune_sequence
from repro.datasets.sales import sales_database, sales_workload
from repro.workload.drift import DriftSpec, DriftingWorkload
from tests.test_retune import _fingerprint

db = sales_database(scale=0.02)
drifting = DriftingWorkload(sales_workload(db), DriftSpec(**{SPEC!r}))
session = Session(db, budget_fraction={BUDGET!r}, variant={VARIANT!r})
results = retune_sequence(session, drifting.phases({PHASES!r}))
print(json.dumps(_fingerprint(results), sort_keys=True))
"""
        root = str(Path(__file__).resolve().parent.parent)

        def run(hashseed):
            return subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": f"{SRC}:{root}",
                     "PYTHONHASHSEED": hashseed,
                     "PATH": "/usr/bin:/bin"},
            ).stdout.strip()

        assert run("1") == run("31337")

    def test_golden_fixture(self, drift_inputs, request):
        """The pinned record of the 2-phase drift scenario: cold tune,
        then one retune with its drop/add/keep diff."""
        db, drifting = drift_inputs
        got = _fingerprint(_sequence(db, drifting))
        if request.config.getoption("--update-golden"):
            GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN.write_text(json.dumps(got, indent=2, sort_keys=True))
            pytest.skip("golden fixture regenerated")
        assert GOLDEN.exists(), "run pytest --update-golden to create"
        want = json.loads(GOLDEN.read_text())
        assert json.loads(json.dumps(got, sort_keys=True)) == want
