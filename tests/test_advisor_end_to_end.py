"""End-to-end advisor runs on a tiny TPC-H instance."""

import pytest

from repro.advisor import AdvisorOptions, TuningAdvisor, tune
from repro.datasets import tpch_workload
from repro.errors import AdvisorError
from repro.sizeest import SizeEstimator
from repro.stats import DatabaseStats
from repro.storage import IndexKind


@pytest.fixture(scope="module")
def tuning_env(tiny_tpch):
    stats = DatabaseStats(tiny_tpch)
    estimator = SizeEstimator(tiny_tpch, stats=stats)
    workload = tpch_workload(tiny_tpch, select_weight=5.0, insert_weight=1.0)
    return tiny_tpch, stats, estimator, workload


class TestTuningRuns:
    def test_dta_improves(self, tuning_env):
        db, stats, estimator, workload = tuning_env
        res = tune(db, workload, db.total_data_bytes() * 0.4,
                   variant="dta", estimator=estimator, stats=stats)
        assert res.improvement > 0.05
        assert not any(ix.is_compressed for ix in res.configuration)

    def test_dtac_beats_dta_at_tight_budget(self, tuning_env):
        db, stats, estimator, workload = tuning_env
        budget = db.total_data_bytes() * 0.05
        dta = tune(db, workload, budget, variant="dta",
                   estimator=estimator, stats=stats)
        dtac = tune(db, workload, budget, variant="dtac-both",
                    estimator=estimator, stats=stats)
        assert dtac.improvement >= dta.improvement

    def test_budget_respected_by_estimates(self, tuning_env):
        db, stats, estimator, workload = tuning_env
        budget = db.total_data_bytes() * 0.10
        res = tune(db, workload, budget, variant="dtac-both",
                   estimator=estimator, stats=stats)
        assert res.consumed_bytes <= budget + 1e-6

    def test_one_base_structure_per_table(self, tuning_env):
        db, stats, estimator, workload = tuning_env
        res = tune(db, workload, db.total_data_bytes() * 0.3,
                   variant="dtac-both", estimator=estimator, stats=stats)
        for table in db.table_names:
            bases = [
                ix for ix in res.configuration
                if ix.table == table
                and ix.kind in (IndexKind.HEAP, IndexKind.CLUSTERED)
                and not ix.is_mv_index
            ]
            assert len(bases) <= 1

    def test_monotone_in_budget(self, tuning_env):
        db, stats, estimator, workload = tuning_env
        tight = tune(db, workload, 0.0, variant="dtac-both",
                     estimator=estimator, stats=stats)
        loose = tune(db, workload, db.total_data_bytes() * 0.6,
                     variant="dtac-both", estimator=estimator, stats=stats)
        assert loose.improvement >= tight.improvement - 0.02

    def test_insert_intensive_uses_less_compression(self, tiny_tpch):
        stats = DatabaseStats(tiny_tpch)
        estimator = SizeEstimator(tiny_tpch, stats=stats)
        budget = tiny_tpch.total_data_bytes() * 0.5
        select_heavy = tune(
            tiny_tpch, tpch_workload(tiny_tpch, 20.0, 1.0), budget,
            variant="dtac-both", estimator=estimator, stats=stats,
        )
        insert_heavy = tune(
            tiny_tpch, tpch_workload(tiny_tpch, 1.0, 50.0), budget,
            variant="dtac-both", estimator=estimator, stats=stats,
        )
        n_sel = sum(1 for ix in select_heavy.configuration
                    if ix.is_compressed)
        n_ins = sum(1 for ix in insert_heavy.configuration
                    if ix.is_compressed)
        assert n_ins <= n_sel

    def test_unknown_variant_rejected(self, tuning_env):
        db, stats, estimator, workload = tuning_env
        with pytest.raises(AdvisorError):
            tune(db, workload, 1e9, variant="nope")

    def test_result_metadata(self, tuning_env):
        db, stats, estimator, workload = tuning_env
        res = tune(db, workload, db.total_data_bytes() * 0.2,
                   variant="dtac-both", estimator=estimator, stats=stats)
        assert res.candidate_count > 0
        assert res.pool_size > 0
        assert res.elapsed_seconds > 0
        assert set(res.sizes) == set(res.configuration)
        assert res.improvement_pct == pytest.approx(
            100 * res.improvement
        )

    def test_all_features_run(self, tuning_env):
        db, stats, estimator, workload = tuning_env
        options = AdvisorOptions(
            budget_bytes=db.total_data_bytes() * 0.3,
            enable_partial=True,
            enable_mv=True,
            enable_compression=True,
            candidate_selection="skyline",
            backtracking=True,
        )
        advisor = TuningAdvisor(db, workload, options,
                                estimator=estimator, stats=stats)
        res = advisor.run()
        assert res.improvement > 0
