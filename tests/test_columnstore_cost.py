"""Quantitative tests of the projection cost model: operate-on-runs CPU
discounts, sort-key pruning, and residual predicate charges."""

import pytest

from repro.catalog import Column, Database, INT, Table, char
from repro.columnstore import (
    ProjectionCostModel,
    ProjectionDef,
    ProjectionSizer,
)
from repro.compression import CompressionMethod
from repro.stats import DatabaseStats
from repro.workload.expr import Comparison
from repro.workload.query import Aggregate, InsertQuery, SelectQuery


def build_database(n_rows=5000):
    t = Table(
        "m",
        [
            Column("grp", char(6)),      # 5 distinct values
            Column("val", INT),          # near unique
        ],
    )
    groups = ["g0", "g1", "g2", "g3", "g4"]
    for i in range(n_rows):
        t.append_row((groups[(i * 5) // n_rows], i * 7 % 99991))
    db = Database("costdb")
    db.add_table(t)
    return db


@pytest.fixture(scope="module")
def database():
    return build_database()


@pytest.fixture(scope="module")
def stats(database):
    return DatabaseStats(database)


@pytest.fixture(scope="module")
def model(database, stats):
    return ProjectionCostModel(database, stats)


@pytest.fixture(scope="module")
def sizer(database):
    return ProjectionSizer(database.table("m"))


def scan_query(predicates=(), group_by=()):
    return SelectQuery(
        tables=("m",),
        aggregates=(Aggregate("SUM", ("val",)),),
        predicates=tuple(predicates),
        group_by=tuple(group_by),
    )


class TestOperateOnRuns:
    def test_rle_scan_cpu_below_raw(self, model, sizer):
        projection = ProjectionDef("m", ("grp", "val"), ("grp",))
        rle = sizer.measure(
            projection, encodings=(CompressionMethod.RLE,)
        )
        raw = sizer.measure(
            projection, encodings=(CompressionMethod.NONE,)
        )
        query = SelectQuery(
            tables=("m",), select_columns=("grp",),
        )
        rle_cost = model.scan_cost(query, "m", rle)
        raw_cost = model.scan_cost(query, "m", raw)
        # grp sorted has 5 runs over 5000 rows: per-value CPU collapses.
        assert rle_cost.cpu < raw_cost.cpu / 10


class TestSortKeyPruning:
    def test_matching_predicate_prunes_io(self, model, sizer):
        matched = sizer.measure(ProjectionDef("m", ("grp", "val"), ("grp",)))
        unmatched = sizer.measure(ProjectionDef("m", ("val", "grp"), ("val",)))
        query = scan_query(predicates=[Comparison("grp", "=", "g2")])
        cost_matched = model.scan_cost(query, "m", matched)
        cost_unmatched = model.scan_cost(query, "m", unmatched)
        assert cost_matched.io < cost_unmatched.io

    def test_fraction_never_below_one_row(self, model, sizer):
        size = sizer.measure(ProjectionDef("m", ("val", "grp"), ("val",)))
        query = scan_query(
            predicates=[Comparison("val", "=", -1)]  # matches nothing
        )
        cost = model.scan_cost(query, "m", size)
        assert cost is not None
        assert cost.io > 0

    def test_unpredicated_scan_reads_everything(self, model, sizer):
        size = sizer.measure(ProjectionDef("m", ("grp", "val"), ("grp",)))
        full = model.scan_cost(scan_query(), "m", size)
        pruned = model.scan_cost(
            scan_query(predicates=[Comparison("grp", "=", "g2")]), "m", size
        )
        assert pruned.io < full.io


class TestResidualPredicates:
    def test_residual_adds_cpu(self, model, sizer):
        size = sizer.measure(ProjectionDef("m", ("grp", "val"), ("grp",)))
        without = model.scan_cost(scan_query(), "m", size)
        with_residual = model.scan_cost(
            scan_query(predicates=[Comparison("val", "<", 500)]), "m", size
        )
        assert with_residual.cpu > without.cpu

    def test_grouping_adds_cpu(self, model, sizer):
        size = sizer.measure(ProjectionDef("m", ("grp", "val"), ("grp",)))
        plain = SelectQuery(tables=("m",), select_columns=("val",))
        grouped = scan_query(group_by=["grp"])
        assert (
            model.scan_cost(grouped, "m", size).cpu
            > model.scan_cost(plain, "m", size).cpu
        )


class TestInsertCost:
    def test_scales_with_rows(self, model, sizer):
        projection = ProjectionDef("m", ("grp", "val"), ("grp",))
        sizes = {projection: sizer.measure(projection)}
        small = model.insert_cost(InsertQuery("m", 100), sizes)
        large = model.insert_cost(InsertQuery("m", 10_000), sizes)
        assert large > small * 50

    def test_other_tables_unaffected(self, model, sizer):
        projection = ProjectionDef("m", ("grp", "val"), ("grp",))
        sizes = {projection: sizer.measure(projection)}
        assert model.insert_cost(InsertQuery("other", 100), sizes) == 0.0
