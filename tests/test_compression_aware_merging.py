"""Tests for the compression-aware merging reshapes (Section 6.2's
closing note): key permutations and included-column promotion."""


from repro.advisor.merging import (
    compression_aware_variants,
    generate_merged_candidates,
    merge_pair,
)
from repro.compression import CompressionMethod
from repro.physical.index_def import IndexDef
from repro.storage.index_build import IndexKind

DISTINCTS = {
    ("t", "flag"): 3,
    ("t", "city"): 40,
    ("t", "price"): 9000,
    ("t", "id"): 10_000,
}


def n_distinct(table, column):
    return DISTINCTS[(table, column)]


def n_rows(table):
    return 10_000


def ix(keys, include=(), method=CompressionMethod.PAGE,
       kind=IndexKind.SECONDARY, **kw):
    return IndexDef("t", tuple(keys), included_columns=tuple(include),
                    kind=kind, method=method, **kw)


class TestKeyPermutation:
    def test_low_cardinality_first(self):
        variants = compression_aware_variants(
            ix(("price", "flag")), n_distinct, n_rows
        )
        keys = [v.key_columns for v in variants]
        assert ("flag", "price") in keys

    def test_already_ordered_key_yields_no_permutation(self):
        variants = compression_aware_variants(
            ix(("flag", "price")), n_distinct, n_rows
        )
        assert all(
            v.key_columns != ("flag", "price") for v in variants
        )

    def test_column_set_preserved(self):
        original = ix(("price", "flag"), include=("id",))
        for v in compression_aware_variants(original, n_distinct, n_rows):
            assert set(v.key_columns) | set(v.included_columns) == {
                "price", "flag", "id"
            }

    def test_method_preserved(self):
        original = ix(("price", "flag"), method=CompressionMethod.ROW)
        for v in compression_aware_variants(original, n_distinct, n_rows):
            assert v.method is CompressionMethod.ROW


class TestIncludedPromotion:
    def test_low_cardinality_included_promoted_to_lead(self):
        variants = compression_aware_variants(
            ix(("price",), include=("flag", "id")), n_distinct, n_rows
        )
        promoted = [
            v for v in variants if v.key_columns == ("flag", "price")
        ]
        assert promoted
        assert promoted[0].included_columns == ("id",)

    def test_high_cardinality_included_not_promoted(self):
        variants = compression_aware_variants(
            ix(("flag",), include=("id",)), n_distinct, n_rows
        )
        assert all("id" not in v.key_columns for v in variants)

    def test_threshold_scales_with_rows(self):
        # 40 distinct over 100 rows is not "low cardinality" any more.
        variants = compression_aware_variants(
            ix(("price",), include=("city",)), n_distinct, lambda t: 100
        )
        assert all("city" not in v.key_columns for v in variants)


class TestGuards:
    def test_non_secondary_rejected(self):
        clustered = ix(("flag",), kind=IndexKind.CLUSTERED)
        assert compression_aware_variants(
            clustered, n_distinct, n_rows
        ) == []

    def test_variants_never_echo_the_original(self):
        original = ix(("flag", "price"))
        assert original not in compression_aware_variants(
            original, n_distinct, n_rows
        )

    def test_single_key_no_includes_no_variants(self):
        assert compression_aware_variants(
            ix(("price",)), n_distinct, n_rows
        ) == []


class TestPlainMergingStillWorks:
    def test_prefix_merge(self):
        merged = merge_pair(
            ix(("flag",), include=("price",)), ix(("flag", "city"))
        )
        assert merged is not None
        assert merged.key_columns == ("flag", "city")
        assert merged.included_columns == ("price",)

    def test_pool_generation_is_bounded(self):
        pool = [ix((c,)) for c in ("flag", "city", "price", "id")]
        pool += [ix(("flag", c)) for c in ("city", "price", "id")]
        out = generate_merged_candidates(pool, max_new=2)
        assert len(out) <= 2
