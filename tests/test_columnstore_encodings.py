"""Tests for column-store encodings and projection definitions."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.catalog import Column, INT, Table, char
from repro.columnstore import (
    COLUMN_ENCODINGS,
    ProjectionDef,
    best_encoding,
    measure_column,
    super_projection,
)
from repro.compression import CompressionMethod, strip_value
from repro.errors import AdvisorError, CompressionError
from repro.storage.page import PAGE_SIZE

INT_COL = Column("v", INT)


def stripped_ints(values):
    return [strip_value(INT.encode(v), INT_COL) for v in values]


class TestMeasureColumn:
    def test_raw_fixed_width(self):
        result = measure_column(
            INT_COL, stripped_ints(range(100)), CompressionMethod.NONE
        )
        assert result.rows == 100
        assert result.pages == 1
        assert result.bytes == PAGE_SIZE
        assert result.used_bytes == 100 * INT_COL.width

    def test_rle_counts_runs(self):
        values = [1] * 50 + [2] * 50 + [1] * 50
        result = measure_column(
            INT_COL, stripped_ints(values), CompressionMethod.RLE
        )
        assert result.runs == 3
        assert result.used_bytes < 50

    def test_rle_sorted_beats_shuffled(self):
        values = [i % 5 for i in range(2000)]
        rng = random.Random(7)
        shuffled = values[:]
        rng.shuffle(shuffled)
        sorted_size = measure_column(
            INT_COL, stripped_ints(sorted(values)), CompressionMethod.RLE
        )
        shuffled_size = measure_column(
            INT_COL, stripped_ints(shuffled), CompressionMethod.RLE
        )
        assert sorted_size.used_bytes < shuffled_size.used_bytes / 10

    def test_global_dict_charges_dictionary(self):
        values = stripped_ints([1, 2, 3] * 100)
        with_dict = measure_column(
            INT_COL, values, CompressionMethod.GLOBAL_DICT,
            n_distinct=3, dictionary_bytes=500,
        )
        without = measure_column(
            INT_COL, values, CompressionMethod.GLOBAL_DICT,
            n_distinct=3, dictionary_bytes=0,
        )
        assert with_dict.bytes == without.bytes + 500

    def test_rejects_row_store_package(self):
        with pytest.raises(CompressionError):
            measure_column(
                INT_COL, stripped_ints([1]), CompressionMethod.PAGE
            )

    def test_empty_column(self):
        result = measure_column(INT_COL, [], CompressionMethod.NONE)
        assert result.rows == 0
        assert result.bytes == 0


class TestBestEncoding:
    def test_constant_column_prefers_rle(self):
        values = stripped_ints([42] * 5000)
        best = best_encoding(INT_COL, values, n_distinct=1,
                             dictionary_bytes=4)
        assert best.encoding in (
            CompressionMethod.RLE, CompressionMethod.BITPACK
        )
        assert best.bytes <= PAGE_SIZE

    def test_unique_unsorted_column_prefers_dense_codes(self):
        rng = random.Random(3)
        values = list(range(4000))
        rng.shuffle(values)
        best = best_encoding(
            INT_COL, stripped_ints(values), n_distinct=4000,
            dictionary_bytes=4000 * 3,
        )
        # 12 bits/value beats raw 8 bytes and beats RLE (no runs).
        assert best.encoding is CompressionMethod.BITPACK

    def test_never_worse_than_raw(self):
        rng = random.Random(5)
        values = [rng.randrange(10**9) for _ in range(3000)]
        best = best_encoding(
            INT_COL, stripped_ints(values), n_distinct=len(set(values)),
            dictionary_bytes=sum(3 for _ in values),
        )
        raw = measure_column(
            INT_COL, stripped_ints(values), CompressionMethod.NONE
        )
        assert best.bytes <= raw.bytes

    @given(st.lists(st.integers(min_value=0, max_value=50),
                    min_size=1, max_size=300))
    def test_best_is_minimum_of_all(self, values):
        stripped = stripped_ints(values)
        n_distinct = len(set(values))
        best = best_encoding(INT_COL, stripped, n_distinct=n_distinct,
                             dictionary_bytes=n_distinct * 2)
        for encoding in COLUMN_ENCODINGS:
            other = measure_column(
                INT_COL, stripped, encoding,
                n_distinct=n_distinct,
                dictionary_bytes=n_distinct * 2,
            )
            assert best.bytes <= other.bytes


class TestProjectionDef:
    def test_requires_columns(self):
        with pytest.raises(AdvisorError):
            ProjectionDef("t", ())

    def test_rejects_duplicate_columns(self):
        with pytest.raises(AdvisorError):
            ProjectionDef("t", ("a", "a"))

    def test_sort_columns_must_be_stored(self):
        with pytest.raises(AdvisorError):
            ProjectionDef("t", ("a", "b"), sort_columns=("c",))

    def test_covers(self):
        p = ProjectionDef("t", ("a", "b", "c"), ("a",))
        assert p.covers(("a", "c"))
        assert not p.covers(("a", "d"))
        assert p.covers(())

    def test_name_is_stable_and_unique_per_shape(self):
        p1 = ProjectionDef("t", ("a", "b"), ("a",))
        p2 = ProjectionDef("t", ("a", "b"), ("b",))
        assert p1.name != p2.name
        assert p1.name == ProjectionDef("t", ("a", "b"), ("a",)).name

    def test_hashable_for_config_sets(self):
        p = ProjectionDef("t", ("a",))
        assert p in {p}


class TestSuperProjection:
    def test_uses_primary_key(self):
        t = Table("t", [Column("id", INT), Column("x", INT)],
                  primary_key=("id",))
        sp = super_projection(t)
        assert sp.columns == ("id", "x")
        assert sp.sort_columns == ("id",)

    def test_falls_back_to_first_column(self):
        t = Table("t", [Column("x", INT), Column("y", INT)])
        sp = super_projection(t)
        assert sp.sort_columns == ("x",)

    def test_covers_everything(self):
        t = Table("t", [Column("a", INT), Column("b", char(4))])
        assert super_projection(t).covers(("a", "b"))
