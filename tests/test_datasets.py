"""Tests for the bundled dataset generators."""

import random

import pytest

from repro.datasets import (
    ZipfSampler,
    sales_database,
    sales_queries,
    tpcds_lite_database,
    tpch_database,
    tpch_workload,
)
from repro.errors import ReproError


class TestZipf:
    def test_uniform_when_z_zero(self):
        rng = random.Random(0)
        s = ZipfSampler(10, 0.0, rng)
        counts = [0] * 10
        for _ in range(10000):
            counts[s.sample()] += 1
        assert max(counts) < 2.0 * min(counts)

    def test_skew_concentrates(self):
        rng = random.Random(0)
        s = ZipfSampler(100, 2.0, rng, shuffle=False)
        counts = {}
        for _ in range(10000):
            v = s.sample()
            counts[v] = counts.get(v, 0) + 1
        assert counts.get(0, 0) > 10 * counts.get(50, 1)

    def test_more_skew_fewer_distinct(self):
        rng = random.Random(1)
        mild = ZipfSampler(1000, 0.5, rng)
        heavy = ZipfSampler(1000, 3.0, rng)
        assert len(set(mild.sample_many(2000))) > len(
            set(heavy.sample_many(2000))
        )

    def test_invalid_params(self):
        with pytest.raises(ReproError):
            ZipfSampler(0, 1.0, random.Random(0))
        with pytest.raises(ReproError):
            ZipfSampler(10, -1.0, random.Random(0))


class TestTPCH:
    def test_deterministic(self):
        a = tpch_database(scale=0.02)
        b = tpch_database(scale=0.02)
        assert a.table("lineitem").rows()[:50] == \
            b.table("lineitem").rows()[:50]

    def test_scaling(self):
        small = tpch_database(scale=0.02)
        large = tpch_database(scale=0.1)
        assert (
            large.table("lineitem").num_rows
            > small.table("lineitem").num_rows
        )

    def test_fk_integrity(self, tiny_tpch):
        orders = set(tiny_tpch.table("orders").column_values("o_orderkey"))
        for v in tiny_tpch.table("lineitem").column_values("l_orderkey"):
            assert v in orders

    def test_fk_closure_from_lineitem(self, tiny_tpch):
        closure = tiny_tpch.foreign_key_closure("lineitem")
        dst = {fk.dst_table for fk in closure}
        assert {"orders", "customer", "nation", "region", "part",
                "supplier"} <= dst

    def test_dates_in_domain(self, tiny_tpch):
        from repro.workload import date_to_days

        lo = date_to_days("1992-01-01")
        hi = date_to_days("1998-12-31")
        for v in tiny_tpch.table("lineitem").column_values("l_shipdate"):
            assert lo <= v <= hi

    def test_skew_changes_distribution(self):
        flat = tpch_database(scale=0.02, z=0.0)
        skew = tpch_database(scale=0.02, z=3.0)
        flat_parts = flat.table("lineitem").column_values("l_partkey")
        skew_parts = skew.table("lineitem").column_values("l_partkey")
        assert len(set(skew_parts)) < len(set(flat_parts))

    def test_workload_weights(self, tiny_tpch):
        wl = tpch_workload(tiny_tpch, select_weight=7.0, insert_weight=3.0)
        assert all(ws.weight == 7.0 for ws in wl.queries)
        assert all(ws.weight == 3.0 for ws in wl.updates)

    def test_bulk_sizes(self, tiny_tpch):
        wl = tpch_workload(tiny_tpch, bulk_fraction=0.2)
        bulk = {ws.name: ws.statement.n_rows for ws in wl.updates}
        assert bulk["BULK_LINEITEM"] == int(
            tiny_tpch.table("lineitem").num_rows * 0.2
        )


class TestSales:
    def test_structure(self):
        db = sales_database(scale=0.05)
        assert set(db.table_names) == {
            "stores", "products", "customers", "sales"
        }
        assert len(db.foreign_keys) == 3

    def test_50_queries(self):
        names = [n for n, _ in sales_queries()]
        assert len(names) == 50
        assert len(set(names)) == 50

    def test_fk_integrity(self):
        db = sales_database(scale=0.05)
        stores = set(db.table("stores").column_values("st_storekey"))
        for v in db.table("sales").column_values("sa_storekey"):
            assert v in stores

    def test_total_consistency(self):
        db = sales_database(scale=0.05)
        sales = db.table("sales")
        for row in list(sales.iter_rows(
            ("sa_quantity", "sa_unitprice", "sa_discount", "sa_total")
        ))[:100]:
            qty, price, disc, total = row
            assert total == qty * price * (100 - disc) // 100


class TestTPCDSLite:
    def test_structure(self):
        db = tpcds_lite_database(scale=0.05)
        assert set(db.table_names) == {
            "item", "date_dim", "customer", "store_sales"
        }

    def test_fk_integrity(self):
        db = tpcds_lite_database(scale=0.05)
        items = set(db.table("item").column_values("i_item_sk"))
        for v in db.table("store_sales").column_values("ss_item_sk"):
            assert v in items
