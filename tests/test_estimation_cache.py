"""Tests for the persistent EstimationCache: content-addressed keys
(compression method can never alias), persistence round-trips, and
invalidation when the sample fingerprint changes."""

import pytest

from repro.compression import CompressionMethod
from repro.parallel import EstimationCache, index_signature, sample_fingerprint
from repro.physical import IndexDef
from repro.sizeest import SizeEstimator
from repro.sizeest.samplecf import SizeEstimate
from repro.sizeest.error_model import ErrorRV


def _estimate_for(index):
    return SizeEstimate(
        index=index,
        est_bytes=12345.0,
        compression_fraction=0.4,
        source="samplecf",
        error=ErrorRV(mean=1.01, var=0.002),
        cost=17.0,
        fraction=0.05,
    )


class TestKeys:
    def test_method_never_aliases(self):
        row = IndexDef("fact", ("f_cat",), method=CompressionMethod.ROW)
        page = row.with_method(CompressionMethod.PAGE)
        assert index_signature(row) != index_signature(page)
        assert (
            EstimationCache.key(row, "fp", 0.5, 0.9)
            != EstimationCache.key(page, "fp", 0.5, 0.9)
        )
        cache = EstimationCache()
        cache.put(row, "fp", 0.5, 0.9, _estimate_for(row))
        assert cache.get(page, "fp", 0.5, 0.9) is None
        got = cache.get(row, "fp", 0.5, 0.9)
        assert got is not None and got.index is row

    def test_fingerprint_and_accuracy_partition_entries(self):
        ix = IndexDef("fact", ("f_cat",), method=CompressionMethod.PAGE)
        cache = EstimationCache()
        cache.put(ix, "fp-a", 0.5, 0.9, _estimate_for(ix))
        assert cache.get(ix, "fp-b", 0.5, 0.9) is None
        assert cache.get(ix, "fp-a", 0.25, 0.9) is None
        assert cache.get(ix, "fp-a", 0.5, 0.9) is not None


class TestPersistence:
    def test_round_trip(self, tmp_path):
        ix = IndexDef("fact", ("f_qty",), method=CompressionMethod.ROW)
        est = _estimate_for(ix)
        first = EstimationCache(tmp_path)
        first.put(ix, "fp", 0.5, 0.9, est)
        first.save()

        second = EstimationCache(tmp_path)
        got = second.get(ix, "fp", 0.5, 0.9)
        assert got is not None
        assert got.est_bytes == est.est_bytes
        assert got.compression_fraction == est.compression_fraction
        assert got.source == est.source
        assert got.error == est.error
        assert got.cost == est.cost
        assert got.fraction == est.fraction
        assert second.stats()["entries"] == 1

    def test_save_merges_concurrent_writers(self, tmp_path):
        a = IndexDef("fact", ("f_qty",), method=CompressionMethod.ROW)
        b = IndexDef("fact", ("f_cat",), method=CompressionMethod.PAGE)
        writer_a = EstimationCache(tmp_path)
        writer_b = EstimationCache(tmp_path)
        writer_a.put(a, "fp", 0.5, 0.9, _estimate_for(a))
        writer_b.put(b, "fp", 0.5, 0.9, _estimate_for(b))
        writer_a.save()
        writer_b.save()
        merged = EstimationCache(tmp_path)
        assert merged.get(a, "fp", 0.5, 0.9) is not None
        assert merged.get(b, "fp", 0.5, 0.9) is not None

    def test_corrupt_file_is_ignored(self, tmp_path):
        (tmp_path / "estimates.json").write_text("{not json")
        cache = EstimationCache(tmp_path)
        assert len(cache) == 0

    def test_file_path_rejected_up_front(self, tmp_path):
        from repro.errors import ReproError

        not_a_dir = tmp_path / "plain-file"
        not_a_dir.write_text("")
        with pytest.raises(ReproError, match="not a directory"):
            EstimationCache(not_a_dir)


class TestForkView:
    """Snapshot views: what sweep units see, regardless of which
    process they run in."""

    def test_view_sees_snapshot_not_sibling_stores(self, tmp_path):
        a = IndexDef("fact", ("f_qty",), method=CompressionMethod.ROW)
        b = IndexDef("fact", ("f_cat",), method=CompressionMethod.PAGE)
        base = EstimationCache(tmp_path)
        base.put(a, "fp", 0.5, 0.9, _estimate_for(a))

        view1 = base.fork_view()
        view2 = base.fork_view()
        assert view1.get(a, "fp", 0.5, 0.9) is not None

        # A sibling's fresh store stays invisible to this view (and to
        # the base), even after the sibling persists it.
        view1.put(b, "fp", 0.5, 0.9, _estimate_for(b))
        view1.save()
        assert view2.get(b, "fp", 0.5, 0.9) is None
        assert base.get(b, "fp", 0.5, 0.9) is None

        # ... but the persisted file has it for the *next* sweep (the
        # view's save also carries the snapshot it inherited — entries
        # are immutable, so persisting them early is harmless).
        fresh = EstimationCache(tmp_path)
        assert fresh.get(b, "fp", 0.5, 0.9) is not None
        assert fresh.get(a, "fp", 0.5, 0.9) is not None

    def test_view_saves_merge(self, tmp_path):
        a = IndexDef("fact", ("f_qty",), method=CompressionMethod.ROW)
        b = IndexDef("fact", ("f_cat",), method=CompressionMethod.PAGE)
        base = EstimationCache(tmp_path)
        view1, view2 = base.fork_view(), base.fork_view()
        view1.put(a, "fp", 0.5, 0.9, _estimate_for(a))
        view2.put(b, "fp", 0.5, 0.9, _estimate_for(b))
        view1.save()
        view2.save()
        merged = EstimationCache(tmp_path)
        assert merged.get(a, "fp", 0.5, 0.9) is not None
        assert merged.get(b, "fp", 0.5, 0.9) is not None

    def test_view_counters_start_fresh(self, tmp_path):
        a = IndexDef("fact", ("f_qty",), method=CompressionMethod.ROW)
        base = EstimationCache(tmp_path)
        base.put(a, "fp", 0.5, 0.9, _estimate_for(a))
        base.get(a, "fp", 0.5, 0.9)
        view = base.fork_view()
        assert (view.hits, view.misses, view.stores) == (0, 0, 0)
        assert len(view) == len(base)


class TestEstimatorIntegration:
    @pytest.fixture()
    def targets(self):
        return [
            IndexDef("fact", ("f_cat",), method=CompressionMethod.ROW),
            IndexDef("fact", ("f_cat",), method=CompressionMethod.PAGE),
            IndexDef("fact", ("f_qty", "f_cat"),
                     method=CompressionMethod.PAGE),
        ]

    def test_second_run_hits_and_reproduces(self, small_db, tmp_path, targets):
        cold = SizeEstimator(small_db, cache=EstimationCache(tmp_path))
        cold_est = cold.estimate_many(targets)
        assert cold.cache.hits == 0
        assert cold.cache.stores == len(targets)

        warm = SizeEstimator(small_db, cache=EstimationCache(tmp_path))
        warm_est = warm.estimate_many(targets)
        assert warm.cache.hits == len(targets)
        assert warm.cache.misses == 0
        assert warm.cache.hit_rate == 1.0
        for ix in targets:
            assert warm_est[ix].est_bytes == cold_est[ix].est_bytes
            assert warm_est[ix].error == cold_est[ix].error

    def test_data_change_invalidates(self, small_db, tmp_path, targets):
        cold = SizeEstimator(small_db, cache=EstimationCache(tmp_path))
        cold.estimate_many(targets)

        # Same schema, one appended row: the sample fingerprint moves,
        # so every persisted estimate misses.
        import copy

        changed = copy.deepcopy(small_db)
        fact = changed.table("fact")
        fact.append_row((99999, 0, "CAT_0", 1, 10, 1))
        fresh = SizeEstimator(changed, cache=EstimationCache(tmp_path))
        assert fresh.sample_fingerprint != cold.sample_fingerprint
        fresh.estimate_many(targets)
        assert fresh.cache.hits == 0
        assert fresh.cache.misses == len(targets)

    def test_seed_change_invalidates(self, small_db):
        from repro.sampling import SampleManager

        fp_a = sample_fingerprint(SampleManager(small_db, seed=1))
        fp_b = sample_fingerprint(SampleManager(small_db, seed=2))
        assert fp_a != fp_b

    def test_uncompressed_indexes_never_persisted(self, small_db, tmp_path):
        est = SizeEstimator(small_db, cache=EstimationCache(tmp_path))
        est.estimate_many([IndexDef("fact", ("f_cat",))])
        assert est.cache.stores == 0
        assert est.cache.lookups == 0
