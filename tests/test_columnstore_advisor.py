"""Tests for the projection cost model and the column-store advisor."""

import pytest

from repro.catalog import Database
from repro.columnstore import (
    ColumnStoreAdvisor,
    ColumnStoreOptions,
    ProjectionCostModel,
    ProjectionDef,
    ProjectionSizer,
    super_projection,
    tune_columnstore,
)
from repro.errors import AdvisorError, OptimizerError
from repro.stats import DatabaseStats
from repro.workload.expr import Comparison
from repro.workload.query import (
    Aggregate,
    InsertQuery,
    SelectQuery,
    Workload,
)

from tests.test_columnstore_sizing import make_table


@pytest.fixture(scope="module")
def database():
    db = Database("csdb")
    db.add_table(make_table())
    return db


@pytest.fixture(scope="module")
def stats(database):
    return DatabaseStats(database)


@pytest.fixture(scope="module")
def sizer(database):
    return ProjectionSizer(database.table("facts"))


def region_query():
    return SelectQuery(
        tables=("facts",),
        aggregates=(Aggregate("SUM", ("amount",)),),
        predicates=(Comparison("region", "=", "north"),),
        group_by=("category",),
    )


class TestCostModel:
    def make_model(self, database, stats):
        return ProjectionCostModel(database, stats)

    def test_non_covering_projection_is_infeasible(self, database, stats,
                                                   sizer):
        model = self.make_model(database, stats)
        p = ProjectionDef("facts", ("region",), ("region",))
        size = sizer.measure(p)
        assert model.scan_cost(region_query(), "facts", size) is None

    def test_sort_matched_projection_beats_super(self, database, stats,
                                                 sizer):
        model = self.make_model(database, stats)
        query = region_query()
        matched = sizer.measure(
            ProjectionDef(
                "facts", ("region", "category", "amount"), ("region",)
            )
        )
        sp = sizer.measure(super_projection(database.table("facts")))
        matched_cost = model.scan_cost(query, "facts", matched)
        super_cost = model.scan_cost(query, "facts", sp)
        assert matched_cost is not None and super_cost is not None
        assert matched_cost.total < super_cost.total

    def test_column_pruning_reduces_io(self, database, stats, sizer):
        model = self.make_model(database, stats)
        sp = sizer.measure(super_projection(database.table("facts")))
        narrow = SelectQuery(
            tables=("facts",), select_columns=("amount",)
        )
        wide = SelectQuery(
            tables=("facts",),
            select_columns=("id", "region", "category", "amount"),
        )
        narrow_cost = model.scan_cost(narrow, "facts", sp)
        wide_cost = model.scan_cost(wide, "facts", sp)
        assert narrow_cost.io < wide_cost.io

    def test_wrong_table_rejected(self, database, stats, sizer):
        model = self.make_model(database, stats)
        sp = sizer.measure(super_projection(database.table("facts")))
        with pytest.raises(OptimizerError):
            model.scan_cost(region_query(), "other", sp)

    def test_insert_charges_every_projection(self, database, stats, sizer):
        model = self.make_model(database, stats)
        sp = super_projection(database.table("facts"))
        extra = ProjectionDef("facts", ("region", "amount"), ("region",))
        one = {sp: sizer.measure(sp)}
        two = dict(one)
        two[extra] = sizer.measure(extra)
        insert = InsertQuery("facts", 1000)
        assert model.insert_cost(insert, two) > model.insert_cost(insert, one)

    def test_statement_cost_requires_covering_projection(self, database,
                                                         stats, sizer):
        model = self.make_model(database, stats)
        only_narrow = {
            ProjectionDef("facts", ("region",), ("region",)):
                sizer.measure(ProjectionDef("facts", ("region",), ("region",)))
        }
        with pytest.raises(OptimizerError):
            model.statement_cost(region_query(), only_narrow)


def make_workload():
    wl = Workload()
    wl.add(region_query(), weight=5.0, name="q_region")
    wl.add(
        SelectQuery(
            tables=("facts",),
            select_columns=("id", "amount"),
            predicates=(Comparison("category", "<", 15),),
        ),
        weight=3.0,
        name="q_category",
    )
    wl.add(InsertQuery("facts", 500), weight=1.0, name="load")
    return wl


class TestAdvisor:
    def test_improves_over_base(self, database):
        result = tune_columnstore(
            database, make_workload(), budget_bytes=200_000
        )
        assert result.improvement > 0
        assert result.consumed_bytes <= result.budget_bytes + 1e-6

    def test_zero_budget_keeps_base_only(self, database):
        result = tune_columnstore(
            database, make_workload(), budget_bytes=0.0
        )
        base = {super_projection(t) for t in database.tables}
        assert set(result.projections) == base
        assert result.improvement == pytest.approx(0.0)

    def test_negative_budget_rejected(self, database):
        with pytest.raises(AdvisorError):
            tune_columnstore(database, make_workload(), budget_bytes=-1.0)

    def test_monotone_in_budget(self, database):
        wl = make_workload()
        improvements = [
            tune_columnstore(database, wl, budget_bytes=b).improvement
            for b in (0.0, 50_000, 200_000, 500_000)
        ]
        for lo, hi in zip(improvements, improvements[1:]):
            assert hi >= lo - 1e-9

    def test_aware_at_least_as_good_as_blind(self, database):
        wl = make_workload()
        budget = 100_000
        aware = tune_columnstore(database, wl, budget,
                                 compression_aware=True)
        blind = tune_columnstore(database, wl, budget,
                                 compression_aware=False)
        assert aware.improvement >= blind.improvement - 1e-9
        # The blind tool's recommendation must still physically fit.
        assert blind.consumed_bytes <= budget + 1e-6

    def test_candidates_cover_predicate_sort_orders(self, database):
        options = ColumnStoreOptions(budget_bytes=1.0)
        advisor = ColumnStoreAdvisor(database, make_workload(), options)
        leads = {
            c.sort_columns[0] for c in advisor.candidate_projections()
        }
        assert "region" in leads
        assert "category" in leads

    def test_blind_sizes_are_fixed_width(self, database):
        options = ColumnStoreOptions(
            budget_bytes=1.0, compression_aware=False
        )
        advisor = ColumnStoreAdvisor(database, make_workload(), options)
        p = ProjectionDef("facts", ("amount",))
        blind = advisor.size_of(p, aware=False)
        table = database.table("facts")
        fixed = table.num_rows * table.column("amount").width
        assert blind.column_used_bytes["amount"] == fixed

    def test_sampling_mode_runs(self, database):
        result = tune_columnstore(
            database, make_workload(), budget_bytes=200_000,
            sample_fraction=0.25,
        )
        assert result.final_cost <= result.base_cost + 1e-9
