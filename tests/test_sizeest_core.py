"""Tests for analytic sizing, SampleCF and the deduction engine, checked
against ground-truth full builds on the shared small database."""

import pytest

from repro.compression import CompressionMethod
from repro.errors import SizeEstimationError
from repro.physical import IndexDef
from repro.sampling import SampleManager
from repro.sizeest import (
    AnalyticSizer,
    DEFAULT_ERROR_MODEL,
    DeductionEngine,
    MultiColumnDistinct,
    SampleCFRunner,
    SizeEstimator,
)
from repro.storage import IndexKind
from repro.workload import Comparison


@pytest.fixture(scope="module")
def toolkit(small_db, small_stats):
    manager = SampleManager(small_db, min_sample_rows=150)
    sizer = AnalyticSizer(small_db, small_stats, manager)
    runner = SampleCFRunner(manager, sizer, DEFAULT_ERROR_MODEL)
    distinct = MultiColumnDistinct(small_db, manager, fraction=0.1)
    deduction = DeductionEngine(small_db, sizer, distinct)
    estimator = SizeEstimator(small_db, stats=small_stats, manager=manager)
    return manager, sizer, runner, deduction, estimator


def ix(*keys, method=CompressionMethod.NONE, table="fact", **kw):
    return IndexDef(table, tuple(keys), method=method, **kw)


class TestAnalyticSizer:
    def test_uncompressed_matches_truth(self, toolkit):
        _m, sizer, _r, _d, estimator = toolkit
        index = ix("f_cat", "f_qty")
        est = sizer.uncompressed_bytes(index)
        truth = estimator.true_size(index)
        assert est == pytest.approx(truth, rel=0.05)

    def test_partial_rows(self, toolkit, small_db):
        _m, sizer, _r, _d, _e = toolkit
        pred = Comparison("f_qty", "<", 50)
        partial = ix("f_cat", filter=pred)
        full_rows = sizer.estimated_rows(ix("f_cat"))
        part_rows = sizer.estimated_rows(partial)
        assert 0 < part_rows < full_rows
        assert part_rows == pytest.approx(full_rows / 2, rel=0.15)

    def test_clustered_rows_equal_table(self, toolkit, small_db):
        _m, sizer, _r, _d, _e = toolkit
        rows = sizer.estimated_rows(ix("f_cat", kind=IndexKind.CLUSTERED))
        assert rows == small_db.table("fact").num_rows

    def test_row_width_secondary_includes_rid(self, toolkit, small_db):
        _m, sizer, _r, _d, _e = toolkit
        fact = small_db.table("fact")
        width = sizer.row_width(ix("f_cat", "f_qty"))
        assert width == (
            fact.column("f_cat").width + fact.column("f_qty").width + 8
        )

    def test_ns_reduction_positive(self, toolkit):
        _m, sizer, _r, _d, _e = toolkit
        assert sizer.ns_reduction_bytes(ix("f_qty", "f_price")) > 0

    def test_samplecf_cost_grows_with_width(self, toolkit):
        _m, sizer, _r, _d, _e = toolkit
        narrow = sizer.samplecf_cost(ix("f_cat"), 0.1)
        wide = sizer.samplecf_cost(
            ix("f_cat", "f_qty", "f_price", "f_day"), 0.1
        )
        assert wide > narrow


class TestSampleCF:
    @pytest.mark.parametrize("method", [
        CompressionMethod.ROW, CompressionMethod.PAGE,
    ])
    def test_close_to_truth(self, toolkit, method):
        _m, _s, runner, _d, estimator = toolkit
        index = ix("f_cat", "f_qty", method=method)
        est = runner.run(index, 0.1)
        truth = estimator.true_size(index)
        assert est.est_bytes == pytest.approx(truth, rel=0.15)

    def test_metadata(self, toolkit):
        _m, _s, runner, _d, _e = toolkit
        est = runner.run(ix("f_cat", method=CompressionMethod.ROW), 0.1)
        assert est.source == "samplecf"
        assert est.cost >= 1.0
        assert 0.0 < est.compression_fraction < 1.0

    def test_timing_by_category(self, toolkit):
        _m, _s, runner, _d, _e = toolkit
        runner.reset_timings()
        runner.run(ix("f_cat", method=CompressionMethod.ROW), 0.1)
        assert runner.timings["table"] > 0
        assert runner.run_count == 1


class TestDeduction:
    def test_colset_requires_ord_ind(self, toolkit):
        _m, _s, runner, deduction, _e = toolkit
        source = runner.run(
            ix("f_cat", "f_qty", method=CompressionMethod.ROW), 0.1
        )
        target = ix("f_qty", "f_cat", method=CompressionMethod.PAGE)
        with pytest.raises(SizeEstimationError):
            deduction.colset(target, source)

    def test_colset_same_bytes(self, toolkit):
        _m, _s, runner, deduction, _e = toolkit
        source = runner.run(
            ix("f_cat", "f_qty", method=CompressionMethod.ROW), 0.1
        )
        target = ix("f_qty", "f_cat", method=CompressionMethod.ROW)
        assert deduction.colset(target, source) == source.est_bytes

    @pytest.mark.parametrize("method", [
        CompressionMethod.ROW, CompressionMethod.PAGE,
    ])
    def test_colext_close_to_truth(self, toolkit, method):
        _m, _s, runner, deduction, estimator = toolkit
        target = ix("f_cat", "f_day", method=method)
        parts = [
            runner.run(ix("f_cat", method=method), 0.1),
            runner.run(ix("f_day", method=method), 0.1),
        ]
        deduced = deduction.colext(target, parts)
        truth = estimator.true_size(target)
        assert deduced == pytest.approx(truth, rel=0.25)

    def test_colext_bounded_by_uncompressed(self, toolkit):
        _m, sizer, runner, deduction, _e = toolkit
        target = ix("f_cat", "f_day", method=CompressionMethod.PAGE)
        parts = [
            runner.run(ix("f_cat", method=CompressionMethod.PAGE), 0.1),
            runner.run(ix("f_day", method=CompressionMethod.PAGE), 0.1),
        ]
        deduced = deduction.colext(target, parts)
        assert deduced <= sizer.uncompressed_bytes(target)
        assert deduced > 0

    def test_fragmentation_in_unit_range(self, toolkit):
        _m, _s, _r, deduction, _e = toolkit
        index = ix("f_cat", "f_qty", method=CompressionMethod.PAGE)
        for col in ("f_cat", "f_qty"):
            f = deduction._fragmentation(index, col)
            assert 0.0 <= f <= 1.0

    def test_leading_column_less_fragmented(self, toolkit):
        """F(I_AB, A) >= F(I_BA, A): a column fragments when it is not
        the leading key (the paper's Figure 2 intuition)."""
        _m, _s, _r, deduction, _e = toolkit
        leading = ix("f_cat", "f_day", method=CompressionMethod.PAGE)
        trailing = ix("f_day", "f_cat", method=CompressionMethod.PAGE)
        f_lead = deduction._fragmentation(leading, "f_cat")
        f_trail = deduction._fragmentation(trailing, "f_cat")
        assert f_lead >= f_trail - 1e-9


class TestMultiColumnDistinct:
    def test_single_column_close(self, toolkit, small_db):
        _m, _s, _r, deduction, _e = toolkit
        est = deduction.distinct.estimate("fact", ("f_cat",))
        assert est == pytest.approx(8, rel=0.3)

    def test_combination_at_least_single(self, toolkit):
        _m, _s, _r, deduction, _e = toolkit
        single = deduction.distinct.estimate("fact", ("f_cat",))
        combo = deduction.distinct.estimate("fact", ("f_cat", "f_dkey"))
        assert combo >= single * 0.9

    def test_cached(self, toolkit):
        _m, _s, _r, deduction, _e = toolkit
        a = deduction.distinct.estimate("fact", ("f_qty",))
        b = deduction.distinct.estimate("fact", ("f_qty",))
        assert a == b


class TestSizeEstimatorFacade:
    def test_uncompressed_estimate_is_exact_source(self, toolkit):
        _m, _s, _r, _d, estimator = toolkit
        est = estimator.estimate(ix("f_cat"))
        assert est.source == "exact"
        assert est.error.var == 0.0

    def test_batch_uses_deduction(self, small_db, small_stats):
        estimator = SizeEstimator(small_db, stats=small_stats)
        batch = [
            ix("f_cat", method=CompressionMethod.ROW),
            ix("f_day", method=CompressionMethod.ROW),
            ix("f_cat", "f_day", method=CompressionMethod.ROW),
            ix("f_day", "f_cat", method=CompressionMethod.ROW),
        ]
        results = estimator.estimate_many(batch, e=0.5, q=0.8)
        sources = {r.source for r in results.values()}
        assert "samplecf" in sources
        assert sources & {"colset", "colext"}

    def test_no_deduction_mode(self, small_db, small_stats):
        estimator = SizeEstimator(
            small_db, stats=small_stats, use_deduction=False
        )
        batch = [
            ix("f_cat", method=CompressionMethod.ROW),
            ix("f_cat", "f_day", method=CompressionMethod.ROW),
        ]
        results = estimator.estimate_many(batch)
        assert all(r.source == "samplecf" for r in results.values())

    def test_caching(self, toolkit):
        _m, _s, _r, _d, estimator = toolkit
        index = ix("f_qty", method=CompressionMethod.PAGE)
        a = estimator.estimate(index)
        b = estimator.estimate(index)
        assert a is b

    def test_estimates_close_to_truth(self, toolkit):
        _m, _s, _r, _d, estimator = toolkit
        for method in (CompressionMethod.ROW, CompressionMethod.PAGE):
            index = ix("f_cat", "f_price", method=method)
            est = estimator.estimate(index)
            truth = estimator.true_size(index)
            assert est.est_bytes == pytest.approx(truth, rel=0.3)

    def test_partial_index_estimate(self, toolkit):
        _m, _s, _r, _d, estimator = toolkit
        pred = Comparison("f_qty", "<", 50)
        partial = ix("f_cat", method=CompressionMethod.ROW, filter=pred)
        full = ix("f_cat", method=CompressionMethod.ROW)
        assert (
            estimator.estimate(partial).est_bytes
            < estimator.estimate(full).est_bytes
        )

    def test_register_existing(self, small_db, small_stats):
        estimator = SizeEstimator(small_db, stats=small_stats)
        index = ix("f_cat", method=CompressionMethod.ROW)
        estimator.register_existing([index])
        est = estimator.estimate(index)
        assert est.source == "exact"
        assert est.cost == 0.0
