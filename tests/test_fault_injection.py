"""Chaos suite: the job tier's runtime guardrails under scheduled
faults (see ``repro.service.faults``).

The contract under test: whatever a :class:`FaultPlan` throws at the
tier — journal ``ENOSPC``, a worker dying mid-claim or mid-run, an
exploding cost batch, a blown deadline — every submitted job reaches a
journaled terminal state, event streams terminate, no lease outlives
its owner, and a job that succeeds on a retry returns a result
byte-identical to a sequential ``tune()``.

Fast scenarios run against a stub service (instant executions, the
same pattern as ``tests/test_journal.py``); one end-to-end test drives
a real :class:`AdvisorService` through a retry.  Every async scenario
is wrapped in ``asyncio.wait_for`` so a hung stream fails the test
instead of the suite (CI adds pytest-timeout on top; the suite must
not require it locally).

``REPRO_CHAOS_SEED`` selects the seeded schedule the randomized
scenario replays — the CI chaos matrix runs seeds 0..2; every seed
must converge to all-terminal.
"""

import asyncio
import errno
import json
import os
import time

import pytest

from repro.api import tune
from repro.datasets.sales import sales_database, sales_workload
from repro.errors import JobError
from repro.service import (
    AdvisorService,
    JobWorker,
    serialize_result,
)
from repro.service import faults
from repro.service.faults import (
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedFault,
    SITES,
)
from repro.service.jobs import JobManager, retry_delay
from repro.service.journal import JobJournal
from repro.service.scheduler import ContextScheduler


CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


@pytest.fixture(autouse=True)
def clean_faults():
    """No plan leaks across tests, whatever a scenario installed."""
    faults.clear()
    yield
    faults.clear()


def run(coro, timeout=30):
    return asyncio.run(asyncio.wait_for(coro, timeout=timeout))


class StubService:
    """Quacks like AdvisorService as far as JobManager/JobWorker care,
    with fault-site emulation: ``_execute`` fires the same injection
    sites the real service's execution path does, so seeded plans
    exercise the retry machinery without real tuning runs."""

    def __init__(self, journal=None, fail_times=0, **manager_kwargs):
        self.contexts = {"alpha": object(), "beta": object()}
        self.started = True
        self._closing = False
        self.max_pending = 64
        self.scheduler = ContextScheduler(workers=1, max_lanes=2)
        self.journal = journal
        self.executed = []
        #: fail the first N executions with a transient error.
        self.fail_times = fail_times
        #: optional hook called with (payload, progress) per execution.
        self.on_execute = None
        self.jobs = JobManager(self, journal=journal, **manager_kwargs)

    def _execute(self, kind, context, payload, lane=None, progress=None):
        self.executed.append(payload.get("job"))
        # Emulate the real call graph's injection sites.
        faults.fire("service.execute", kind=kind, context=context)
        faults.fire("coster.batch", configs=1)
        faults.fire("estimator.estimate", indexes=1)
        if self.on_execute is not None:
            self.on_execute(payload, progress)
        if len(self.executed) <= self.fail_times:
            raise ValueError(f"transient boom #{len(self.executed)}")
        if progress is not None:
            progress({"event": "phase", "phase": "work"})
        return {"ok": True, "execution": len(self.executed)}

    def save_caches(self):
        pass

    def shutdown(self):
        self.scheduler.shutdown()
        if self.journal is not None:
            self.journal.close()


def doctor_lease_dead(journal, job_id):
    """Rewrite a lease as an unreachable owner: no pid (liveness falls
    back to the heartbeat) and a heartbeat far past the TTL — how a
    died-with-its-host worker looks from the coordinator."""
    path = journal._lease_path(job_id)
    with open(path, encoding="utf-8") as fh:
        info = json.load(fh)
    info["pid"] = None
    info["heartbeat"] = 0.0
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(info, fh)


class TestFaultPlanGrammar:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "journal.append:enospc@5x3;"
            "coster.batch:errorx1@2;"
            "estimator.estimate:delay=0.05;"
            "worker.heartbeat:stall~job-000007"
        )
        a, b, c, d = plan.specs
        assert (a.site, a.kind, a.after, a.times) == \
            ("journal.append", "enospc", 5, 3)
        # @ and x suffixes compose in either order.
        assert (b.site, b.kind, b.after, b.times) == \
            ("coster.batch", "error", 2, 1)
        assert (c.kind, c.delay, c.times) == ("delay", 0.05, None)
        assert (d.kind, d.match) == ("stall", "job-000007")

    def test_parse_rejects_unknowns(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("no.such.site:error")
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("journal.append:frobnicate")
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("journal.append")
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("estimator.estimate:delay=nope")

    def test_fire_honors_after_times_and_match(self):
        plan = FaultPlan([FaultSpec("coster.batch", "error",
                                    after=1, times=1)])
        plan.fire("coster.batch")  # skipped: after=1
        with pytest.raises(InjectedFault):
            plan.fire("coster.batch")
        plan.fire("coster.batch")  # exhausted: times=1
        assert plan.specs[0].calls == 3
        assert plan.specs[0].fired == 1

        scoped = FaultPlan([FaultSpec("scheduler.lane", "error",
                                      match="alpha")])
        scoped.fire("scheduler.lane", context="beta")  # no match
        with pytest.raises(InjectedFault):
            scoped.fire("scheduler.lane", context="alpha")

    def test_errno_kinds_raise_oserror(self):
        plan = FaultPlan([FaultSpec("journal.append", "enospc"),
                          FaultSpec("journal.fsync", "eio")])
        with pytest.raises(OSError) as err:
            plan.fire("journal.append")
        assert err.value.errno == errno.ENOSPC
        with pytest.raises(OSError) as err:
            plan.fire("journal.fsync")
        assert err.value.errno == errno.EIO

    def test_seeded_schedules_are_deterministic(self):
        for seed in range(3):
            first = FaultPlan.seeded(seed).describe()
            again = FaultPlan.seeded(seed).describe()
            assert first == again
            for spec in first:
                assert spec["site"] in SITES
                assert spec["kind"] in ("error", "enospc")
                assert 1 <= spec["times"] <= 2
        assert FaultPlan.seeded(0).describe() != \
            FaultPlan.seeded(1).describe()

    def test_install_rebinds_out_of_package_hooks(self):
        import repro.optimizer.whatif as whatif
        import repro.parallel.cache as cache
        import repro.sizeest.estimator as estimator

        plan = faults.install(FaultPlan.parse("coster.batch:errorx1"))
        assert whatif.FAULT_HOOK is faults.fire
        assert cache.FAULT_HOOK is faults.fire
        assert estimator.FAULT_HOOK is faults.fire
        assert faults.active() is plan
        assert faults.describe_active() == plan.describe()
        faults.clear()
        assert whatif.FAULT_HOOK is None
        assert faults.active() is None
        assert faults.describe_active() is None

    def test_install_from_env(self):
        assert faults.install_from_env({}) is None
        plan = faults.install_from_env(
            {"REPRO_FAULTS": "journal.append:enospcx1"}
        )
        assert plan is not None
        assert faults.active() is plan
        # Unset env leaves an installed plan alone.
        assert faults.install_from_env({}) is None
        assert faults.active() is plan


class TestRetryPolicy:
    def test_retry_delay_is_jittered_exponential_and_deterministic(self):
        d1 = retry_delay("job-000001", 1, 0.5)
        d2 = retry_delay("job-000001", 2, 0.5)
        assert 0.25 <= d1 < 0.75        # 0.5 * 2^0 * [0.5, 1.5)
        assert 0.5 <= d2 < 1.5          # 0.5 * 2^1 * [0.5, 1.5)
        assert d1 == retry_delay("job-000001", 1, 0.5)
        assert retry_delay("job-000001", 1, 0.0) == 0.0

    def test_submit_validates_guardrail_fields(self):
        service = StubService()
        try:
            for bad in (dict(deadline_s=0), dict(deadline_s="soon"),
                        dict(retries=-1), dict(retries=True),
                        dict(retries=1.5), dict(retry_backoff=-0.1),
                        dict(retry_backoff="fast")):
                with pytest.raises(JobError):
                    service.jobs.submit("tune", "alpha", {}, **bad)
        finally:
            service.shutdown()

    def test_transient_failure_retries_then_succeeds(self, tmp_path):
        async def scenario():
            journal = JobJournal(str(tmp_path), "coordinator")
            service = StubService(journal=journal, fail_times=1)
            try:
                record = service.jobs.submit(
                    "tune", "alpha", {"job": "j"},
                    retries=2, retry_backoff=0.0,
                )
                await service.jobs.drain()
                return (record.snapshot(), list(record.events),
                        service.jobs.stats(),
                        journal.replay()[record.id])
            finally:
                service.shutdown()

        snapshot, events, stats, image = run(scenario())
        assert snapshot["state"] == "done"
        assert snapshot["attempt"] == 1
        assert snapshot["result"]["execution"] == 2
        assert stats["retried"] == 1
        retry_events = [e for e in events if e["event"] == "retry"]
        assert len(retry_events) == 1
        assert retry_events[0]["attempt"] == 1
        assert "transient boom" in retry_events[0]["error"]
        # The journal agrees: terminal done on attempt 1, gapless.
        assert image.state == "done"
        assert image.attempt == 1
        assert image.seq_gapless()
        # A retried job was never failed.
        states = [e.get("state") for e in events
                  if e["event"] == "state"]
        assert "failed" not in states

    def test_exhausted_retry_budget_fails_terminally(self, tmp_path):
        async def scenario():
            journal = JobJournal(str(tmp_path), "coordinator")
            service = StubService(journal=journal, fail_times=10)
            try:
                record = service.jobs.submit(
                    "tune", "alpha", {"job": "j"},
                    retries=2, retry_backoff=0.0,
                )
                await service.jobs.drain()
                return record.snapshot(), service.jobs.stats(), \
                    journal.replay()[record.id]
            finally:
                service.shutdown()

        snapshot, stats, image = run(scenario())
        assert snapshot["state"] == "failed"
        assert snapshot["attempt"] == 2     # initial + 2 retries
        assert "transient boom #3" in snapshot["error"]
        assert stats["retried"] == 2
        assert image.state == "failed"

    def test_injected_coster_fault_is_retried(self, tmp_path):
        """The enumerated estimator/coster-exception plan: one injected
        failure, one retry, job done."""

        async def scenario():
            faults.install(FaultPlan.parse("coster.batch:errorx1"))
            service = StubService(
                journal=JobJournal(str(tmp_path), "coordinator"))
            try:
                record = service.jobs.submit(
                    "tune", "alpha", {"job": "j"},
                    retries=1, retry_backoff=0.0,
                )
                await service.jobs.drain()
                return record.snapshot(), faults.describe_active()
            finally:
                service.shutdown()

        snapshot, schedule = run(scenario())
        assert snapshot["state"] == "done"
        assert snapshot["attempt"] == 1
        assert schedule[0]["fired"] == 1


class TestDeadlines:
    def test_expired_before_start_fails_without_running(self):
        async def scenario():
            service = StubService()
            try:
                record = service.jobs.submit(
                    "tune", "alpha", {"job": "j"},
                    deadline_s=5.0, retries=3, retry_backoff=0.0,
                )
                # Age the submission past its deadline before the task
                # gets its first turn: the pre-run check must fail it.
                record.created -= 100.0
                await service.jobs.drain()
                return (record.snapshot(), list(record.events),
                        service.jobs.stats(), service.executed)
            finally:
                service.shutdown()

        snapshot, events, stats, executed = run(scenario())
        assert snapshot["state"] == "failed"
        assert snapshot["timeout"] is True
        assert executed == []               # never ran
        assert stats["retried"] == 0        # deadlines are not retried
        terminal = [e for e in events if e.get("state") == "failed"]
        assert terminal and terminal[0]["timeout"] is True

    def test_expiry_mid_run_unwinds_via_progress_hook(self):
        async def scenario():
            service = StubService()

            def expire_then_progress(payload, progress):
                record = service.jobs.get(payload["job_id"])
                record.created -= 100.0
                progress({"event": "phase", "phase": "late"})

            service.on_execute = expire_then_progress
            try:
                record = service.jobs.submit(
                    "tune", "alpha",
                    {"job": "j", "job_id": "job-000001"},
                    deadline_s=5.0, retries=3, retry_backoff=0.0,
                )
                await service.jobs.drain()
                return record.snapshot(), service.jobs.stats()
            finally:
                service.shutdown()

        snapshot, stats = run(scenario())
        assert snapshot["state"] == "failed"
        assert snapshot["timeout"] is True
        assert "deadline" in snapshot["error"]
        assert stats["retried"] == 0

    def test_stream_terminates_after_timeout(self):
        async def scenario():
            service = StubService()
            try:
                record = service.jobs.submit(
                    "tune", "alpha", {"job": "j"}, deadline_s=5.0)
                record.created -= 100.0
                events = []
                async for event in service.jobs.stream(record.id):
                    events.append(event)
                return events
            finally:
                service.shutdown()

        events = run(scenario(), timeout=10)
        assert events[-1]["state"] == "failed"
        assert events[-1]["timeout"] is True
        assert [e["seq"] for e in events] == \
            list(range(1, len(events) + 1))

    def test_queued_deadline_swept_by_watchdog(self, tmp_path):
        journal = JobJournal(str(tmp_path), "coordinator")
        service = StubService(journal=journal, execute_jobs=False)
        try:
            record = service.jobs.submit(
                "tune", "alpha", {"job": "j"}, deadline_s=0.01)
            time.sleep(0.03)
            swept = service.jobs.watchdog_sweep()
            assert swept["deadline_expired"] == 1
            assert record.state == "failed"
            assert record.timeout is True
            assert journal.replay()[record.id].state == "failed"
        finally:
            service.shutdown()


class TestDiskPressureDegradation:
    def test_enospc_flips_degraded_and_probe_recovers(self, tmp_path):
        async def scenario():
            faults.install(FaultPlan.parse("journal.append:enospcx2"))
            journal = JobJournal(str(tmp_path), "coordinator")
            service = StubService(journal=journal)
            try:
                # The submit's own journal write hits ENOSPC: the tier
                # degrades but the job still runs to completion.
                record = service.jobs.submit("tune", "alpha",
                                             {"job": "j"})
                assert service.jobs.degraded is True
                await service.jobs.drain()
                assert record.state == "done"
                degraded_stats = service.jobs.stats()["degraded"]
                # First probe replays into the second injected ENOSPC;
                # the next one drains the whole buffer.
                still_degraded = service.jobs.journal_probe()
                recovered = service.jobs.journal_probe()
                return (record.snapshot(), degraded_stats,
                        still_degraded, recovered,
                        service.jobs.degraded, journal.replay())
            finally:
                service.shutdown()

        (snapshot, degraded_stats, still_degraded, recovered,
         degraded_after, images) = run(scenario())
        assert degraded_stats["active"] is True
        assert "injected" in degraded_stats["reason"]
        assert degraded_stats["buffered"] > 0
        assert still_degraded is False
        assert recovered is True
        assert degraded_after is False
        # Nothing was lost: the drained journal replays the full job.
        image = images[snapshot["id"]]
        assert image.state == "done"
        assert image.seq_gapless()
        assert image.result == snapshot["result"]
        # The degraded window itself is journaled: a mode-record pair.
        segment = os.path.join(str(tmp_path),
                               "segment-coordinator.jsonl")
        with open(segment, encoding="utf-8") as fh:
            modes = [json.loads(line)["mode"] for line in fh
                     if '"rec":"mode"' in line]
        assert modes == ["degraded", "healthy"]

    def test_non_disk_oserror_still_raises(self, tmp_path):
        async def scenario():
            faults.install(FaultPlan.parse("journal.append:errorx1"))
            journal = JobJournal(str(tmp_path), "coordinator")
            service = StubService(journal=journal)
            try:
                with pytest.raises(InjectedFault):
                    service.jobs.submit("tune", "alpha", {"job": "j"})
                return service.jobs.degraded
            finally:
                service.shutdown()

        assert run(scenario()) is False

    def test_cache_save_degrades_and_recovers(self, tmp_path):
        from repro.parallel.cache import _PersistentJsonCache

        cache = _PersistentJsonCache(str(tmp_path / "cache"))
        cache._store("k", {"v": 1})
        faults.install(FaultPlan.parse("cache.save:enospcx1"))
        cache.save()                      # injected ENOSPC: swallowed
        assert cache.degraded is True
        assert cache.save_errors == 1
        assert cache.stats()["degraded"] is True
        cache.save()                      # probe-and-recover
        assert cache.degraded is False
        assert _PersistentJsonCache(str(tmp_path / "cache")) \
            ._lookup("k") == {"v": 1}


class TestWorkerWatchdog:
    def make_tier(self, tmp_path, **submit_kwargs):
        coordinator = StubService(
            journal=JobJournal(str(tmp_path), "coordinator"),
            execute_jobs=False,
        )
        record = coordinator.jobs.submit("tune", "alpha", {"job": "j"},
                                         **submit_kwargs)
        return coordinator, record

    def make_worker(self, tmp_path, writer):
        service = StubService(
            journal=JobJournal(str(tmp_path), writer),
            execute_jobs=False,
        )
        return service, JobWorker(service, poll_interval=0.01)

    def test_death_mid_claim_is_swept_and_redispatched(self, tmp_path):
        coordinator, record = self.make_tier(tmp_path)
        wsvc, worker = self.make_worker(tmp_path, "worker-a")
        try:
            faults.install(FaultPlan.parse("worker.claim:errorx1"))
            with pytest.raises(InjectedFault):
                worker.run_once()         # dies with the lease held
            assert coordinator.journal.lease_info(record.id) is not None
            assert record.state == "queued"
            doctor_lease_dead(coordinator.journal, record.id)
            swept = coordinator.jobs.watchdog_sweep()
            assert swept["lease_breaks"] == 1
            assert coordinator.journal.lease_info(record.id) is None
            # Still queued: breaking the lease re-exposed it.
            assert worker.run_once() == record.id
            coordinator.jobs.apply_external(
                coordinator.journal.refresh())
            assert record.state == "done"
            assert coordinator.journal.lease_info(record.id) is None
        finally:
            coordinator.shutdown()
            wsvc.shutdown()

    def test_death_mid_run_requeues_with_retry_budget(self, tmp_path):
        coordinator, record = self.make_tier(
            tmp_path, retries=1, retry_backoff=0.0)
        dead = JobJournal(str(tmp_path), "worker-dead")
        wsvc, worker = self.make_worker(tmp_path, "worker-a")
        try:
            assert dead.claim(record.id)
            dead.append_state(record.id, "running", time.time())
            coordinator.jobs.apply_external(
                coordinator.journal.refresh())
            assert record.state == "running"
            doctor_lease_dead(coordinator.journal, record.id)
            swept = coordinator.jobs.watchdog_sweep()
            assert swept == {"lease_breaks": 1, "requeued": 1,
                             "failed": 0, "quarantined": 0,
                             "deadline_expired": 0}
            assert record.state == "queued"
            assert record.attempt == 1
            retry = [e for e in record.events if e["event"] == "retry"]
            assert retry and "worker-dead" in retry[0]["error"]
            # A healthy worker picks the orphan up and finishes it.
            assert worker.run_once() == record.id
            coordinator.jobs.apply_external(
                coordinator.journal.refresh())
            assert record.state == "done"
            assert coordinator.journal.replay()[record.id].attempt == 1
        finally:
            dead.close()
            coordinator.shutdown()
            wsvc.shutdown()

    def test_death_mid_run_without_budget_fails_the_job(self, tmp_path):
        coordinator, record = self.make_tier(tmp_path)
        dead = JobJournal(str(tmp_path), "worker-dead")
        try:
            assert dead.claim(record.id)
            dead.append_state(record.id, "running", time.time())
            coordinator.jobs.apply_external(
                coordinator.journal.refresh())
            doctor_lease_dead(coordinator.journal, record.id)
            swept = coordinator.jobs.watchdog_sweep()
            assert swept["failed"] == 1
            assert record.state == "failed"
            assert "worker-dead died mid-run" in record.error
            assert coordinator.journal.replay()[record.id].state == \
                "failed"
        finally:
            dead.close()
            coordinator.shutdown()

    def test_repeat_offender_is_quarantined(self, tmp_path):
        coordinator = StubService(
            journal=JobJournal(str(tmp_path), "coordinator"),
            execute_jobs=False,
        )
        evil = JobJournal(str(tmp_path), "worker-evil")
        try:
            for i in range(3):
                record = coordinator.jobs.submit(
                    "tune", "alpha", {"job": f"j{i}"})
                assert evil.claim(record.id)
                doctor_lease_dead(coordinator.journal, record.id)
                coordinator.jobs.watchdog_sweep()
            stats = coordinator.jobs.stats()["watchdog"]
            assert stats["lease_breaks"] == 3
            assert stats["lease_breaks_by_writer"]["worker-evil"] == 3
            assert stats["quarantined"] == 1
            assert coordinator.journal.writer_quarantined("worker-evil")
            assert coordinator.journal.quarantined_writers() == \
                ["worker-evil"]
            # The benched worker's claim loop refuses work even with
            # claimable jobs queued.
            wsvc, worker = self.make_worker(tmp_path, "worker-evil")
            try:
                assert worker.run_once() is None
            finally:
                wsvc.shutdown()
            # A healthy worker is unaffected.
            wsvc2, healthy = self.make_worker(tmp_path, "worker-good")
            try:
                assert healthy.run_once() is not None
            finally:
                wsvc2.shutdown()
        finally:
            evil.close()
            coordinator.shutdown()


class TestSeededChaos:
    def test_seeded_schedule_converges_to_all_terminal(self, tmp_path):
        """The CI matrix scenario: a seeded fault schedule over the
        execution-path sites, a batch of retrying jobs, and the
        invariant that everything reaches a journaled terminal state
        with gapless, terminating streams and no leases left behind."""
        seed = CHAOS_SEED

        async def scenario():
            faults.install(FaultPlan.seeded(seed, sites=[
                "service.execute", "coster.batch",
                "estimator.estimate",
            ]))
            journal = JobJournal(str(tmp_path), "coordinator")
            service = StubService(journal=journal)
            try:
                records = [
                    service.jobs.submit(
                        "tune", "alpha", {"job": f"j{i}"},
                        retries=2, retry_backoff=0.0,
                    )
                    for i in range(6)
                ]
                await service.jobs.drain()
                streams = []
                for record in records:
                    events = []
                    async for event in service.jobs.stream(record.id):
                        events.append(event)
                    streams.append(events)
                return ([r.snapshot() for r in records], streams,
                        journal.leases(), journal.replay(),
                        faults.describe_active())
            finally:
                service.shutdown()

        snapshots, streams, leases, images, schedule = \
            run(scenario(), timeout=60)
        assert leases == []
        fired = sum(spec["fired"] for spec in schedule)
        failed = sum(1 for s in snapshots if s["state"] == "failed")
        for snapshot, events in zip(snapshots, streams):
            assert snapshot["state"] in ("done", "failed")
            assert [e["seq"] for e in events] == \
                list(range(1, len(events) + 1))
            image = images[snapshot["id"]]
            assert image.state == snapshot["state"]
            assert image.seq_gapless()
        # Retry budget (2 per job) covers up to two firings per job;
        # only a 3-faults-on-one-job pileup may fail, and a failure
        # implies at least three firings landed somewhere.
        assert failed == 0 or fired >= 3


@pytest.fixture(scope="module")
def tuning_inputs():
    db = sales_database(scale=0.02)
    wl = sales_workload(db)
    return db, wl


class TestEndToEndRetryByteIdentity:
    def test_retry_succeeded_job_matches_sequential_tune(
            self, tuning_inputs, tmp_path):
        """A real AdvisorService whose first cost batch explodes: the
        retry re-runs the tune and the delivered result is
        byte-identical to a sequential ``tune()``."""
        db, wl = tuning_inputs

        async def scenario():
            service = AdvisorService(
                cache_dir=str(tmp_path / "cache"),
                fault_plan="coster.batch:errorx1",
            )
            service.register("sales", db, wl)
            await service.start()
            try:
                record = service.submit_job(
                    "tune", "sales",
                    dict(budget_fraction=0.12, variant="dtac-none"),
                    retries=1, retry_backoff=0.0,
                )
                events = []
                async for event in service.job_events(record.id):
                    events.append(event)
                return (record.snapshot(), events,
                        service.stats(), service.jobs.stats())
            finally:
                await service.stop()

        snapshot, events, svc_stats, job_stats = \
            run(scenario(), timeout=300)
        assert snapshot["state"] == "done"
        assert snapshot["attempt"] == 1
        assert job_stats["retried"] == 1
        assert svc_stats["degraded"] is False
        assert svc_stats["faults"][0]["fired"] == 1
        retry = [e for e in events if e["event"] == "retry"]
        assert len(retry) == 1
        assert "injected error" in retry[0]["error"]
        assert [e["seq"] for e in events] == \
            list(range(1, len(events) + 1))
        direct = tune(db, wl, db.total_data_bytes() * 0.12,
                      variant="dtac-none")
        assert snapshot["result"]["result"] == \
            serialize_result(direct)["result"]
