"""Cross-layer integration: estimated sizes vs measured truths, and the
advisor's budget accounting checked against ground-truth index builds."""

import pytest

from repro.api import tune
from repro.compression import ADVISOR_METHODS, CompressionMethod
from repro.datasets import tpch_workload
from repro.physical import IndexDef
from repro.sizeest import SizeEstimator
from repro.stats import DatabaseStats
from repro.storage import IndexKind


class TestEstimateVsTruth:
    @pytest.fixture(scope="class")
    def estimator(self, tiny_tpch):
        return SizeEstimator(tiny_tpch)

    @pytest.mark.parametrize("method", [m for m in ADVISOR_METHODS])
    def test_lineitem_indexes(self, estimator, method):
        index = IndexDef(
            "lineitem", ("l_shipdate", "l_discount"),
            included_columns=("l_extendedprice",),
            method=method,
        )
        est = estimator.estimate(index).est_bytes
        truth = estimator.true_size(index)
        assert est == pytest.approx(truth, rel=0.25)

    def test_clustered_index(self, estimator):
        index = IndexDef(
            "orders", ("o_orderdate",), kind=IndexKind.CLUSTERED,
            method=CompressionMethod.ROW,
        )
        est = estimator.estimate(index).est_bytes
        truth = estimator.true_size(index)
        assert est == pytest.approx(truth, rel=0.25)

    def test_cf_ordering_page_beats_row(self, estimator):
        """PAGE compresses at least as well as ROW on every estimate —
        matching the codec guarantee."""
        for keys in (("l_shipmode",), ("l_returnflag", "l_shipmode")):
            row = estimator.estimate(
                IndexDef("lineitem", keys, method=CompressionMethod.ROW)
            ).est_bytes
            page = estimator.estimate(
                IndexDef("lineitem", keys, method=CompressionMethod.PAGE)
            ).est_bytes
            assert page <= row * 1.05


class TestAdvisorBudgetAgainstTruth:
    def test_true_consumption_close_to_budget(self, tiny_tpch):
        stats = DatabaseStats(tiny_tpch)
        estimator = SizeEstimator(tiny_tpch, stats=stats)
        workload = tpch_workload(tiny_tpch, 5.0, 1.0)
        budget = tiny_tpch.total_data_bytes() * 0.15
        result = tune(tiny_tpch, workload, budget, variant="dtac-both",
                      estimator=estimator, stats=stats)

        # Recompute consumption with ground-truth sizes: estimation error
        # must not blow the budget by more than the (e, q) tolerance.
        true_consumed = 0.0
        for ix in result.configuration:
            truth = estimator.true_size(ix)
            if ix.kind is IndexKind.SECONDARY or ix.is_mv_index:
                true_consumed += truth
            else:
                original = estimator.true_size(
                    IndexDef(ix.table, (), kind=IndexKind.HEAP)
                )
                true_consumed += truth - original
        assert true_consumed <= budget * (1.0 + estimator.e)
