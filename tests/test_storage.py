"""Tests for page packing and physical index construction."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import Column, INT, Table, char
from repro.compression import CompressionMethod, make_codecs
from repro.errors import StorageError
from repro.storage import (
    PAGE_CAPACITY,
    PAGE_SIZE,
    ROW_OVERHEAD,
    IndexKind,
    SerializedTable,
    btree_overhead_pages,
    compression_fraction,
    measure_structure,
    pack_columns,
    pack_fixed_width,
    stored_columns,
)
from repro.storage.rowcache import RID_COLUMN


def make_table(n=2000, seed=5):
    rng = random.Random(seed)
    t = Table(
        "t",
        [Column("a", INT), Column("b", char(10)), Column("c", INT)],
        primary_key=("a",),
    )
    for i in range(n):
        t.append_row((i, f"G{rng.randrange(6)}", rng.randrange(1000)))
    return t


class TestPackFixedWidth:
    def test_zero_rows(self):
        assert pack_fixed_width(0, 40).pages == 0

    def test_exact_page_math(self):
        per_row = 40 + ROW_OVERHEAD
        rows_per_page = PAGE_CAPACITY // per_row
        assert pack_fixed_width(rows_per_page, 40).pages == 1
        assert pack_fixed_width(rows_per_page + 1, 40).pages == 2

    def test_row_too_wide(self):
        with pytest.raises(StorageError):
            pack_fixed_width(1, PAGE_CAPACITY + 1)

    @given(st.integers(min_value=1, max_value=100000),
           st.integers(min_value=1, max_value=500))
    def test_page_capacity_invariant(self, rows, width):
        result = pack_fixed_width(rows, width)
        assert result.pages * (PAGE_CAPACITY // (width + ROW_OVERHEAD)) >= rows


class TestPackColumns:
    def _pack(self, n, method=CompressionMethod.ROW):
        cols = [Column("a", INT)]
        values = [INT.encode(i).lstrip(b"\x00") for i in range(n)]
        codecs = make_codecs(method, cols, {"a": n})
        return pack_columns([values], codecs)

    def test_empty(self):
        assert self._pack(0).pages == 0

    def test_rows_preserved(self):
        assert self._pack(500).rows == 500

    def test_pages_never_overflow(self):
        result = self._pack(50000)
        # Every page's used bytes must fit capacity on average.
        assert result.used_bytes <= result.pages * PAGE_CAPACITY

    def test_mismatched_codecs(self):
        with pytest.raises(StorageError):
            pack_columns([[b"a"]], [])

    def test_ragged_columns(self):
        cols = [Column("a", INT), Column("b", INT)]
        codecs = make_codecs(CompressionMethod.ROW, cols)
        with pytest.raises(StorageError):
            pack_columns([[b"a"], [b"a", b"b"]], codecs)

    def test_extra_bytes_carried(self):
        result = self._pack(10, CompressionMethod.ROW)
        assert result.total_bytes == result.pages * PAGE_SIZE


class TestBtreeOverhead:
    def test_single_leaf_no_interior(self):
        assert btree_overhead_pages(1, 20) == 0

    def test_grows_with_leaves(self):
        assert btree_overhead_pages(10000, 20) > btree_overhead_pages(100, 20)

    def test_wide_keys_lower_fanout(self):
        assert btree_overhead_pages(10000, 4000) >= btree_overhead_pages(
            10000, 8
        )


class TestSerializedTable:
    def test_stripped_cached(self):
        s = SerializedTable(make_table(100))
        assert s.stripped("a") is s.stripped("a")

    def test_rid_values(self):
        s = SerializedTable(make_table(300))
        rids = s.rid_stripped()
        assert len(rids) == 300
        assert rids[0] == b""  # rid 0 strips to nothing
        assert rids[299] == (299).to_bytes(2, "big").lstrip(b"\x00")

    def test_distinct(self):
        s = SerializedTable(make_table(500))
        assert s.n_distinct("b") == 6

    def test_sort_order_sorted(self):
        t = make_table(200)
        s = SerializedTable(t)
        order = s.sort_order(("c",))
        values = t.column_values("c")
        assert all(
            values[order[i]] <= values[order[i + 1]]
            for i in range(len(order) - 1)
        )

    def test_sort_order_handles_nulls(self):
        t = Table("n", [Column("a", INT, nullable=True)])
        t.extend_rows([(3,), (None,), (1,)])
        s = SerializedTable(t)
        order = s.sort_order(("a",))
        assert t.column_values("a")[order[0]] is None


class TestMeasureStructure:
    def test_heap_vs_clustered_same_columns(self):
        s = SerializedTable(make_table(1000))
        heap = measure_structure(s, IndexKind.HEAP)
        clustered = measure_structure(s, IndexKind.CLUSTERED, ("a",))
        assert heap.leaf_pages == clustered.leaf_pages
        assert clustered.interior_pages >= heap.interior_pages

    def test_clustered_requires_keys(self):
        s = SerializedTable(make_table(10))
        with pytest.raises(StorageError):
            measure_structure(s, IndexKind.CLUSTERED)

    def test_secondary_narrower_than_clustered(self):
        s = SerializedTable(make_table(1000))
        secondary = measure_structure(s, IndexKind.SECONDARY, ("b",))
        clustered = measure_structure(s, IndexKind.CLUSTERED, ("b",))
        assert secondary.total_bytes < clustered.total_bytes

    def test_compression_shrinks(self):
        s = SerializedTable(make_table(2000))
        for method in (CompressionMethod.ROW, CompressionMethod.PAGE):
            cf = compression_fraction(s, IndexKind.SECONDARY, ("b",),
                                      ("c",), method)
            assert cf < 1.0

    def test_page_never_worse_than_row(self):
        s = SerializedTable(make_table(2000))
        row = measure_structure(s, IndexKind.SECONDARY, ("b",), ("c",),
                                CompressionMethod.ROW)
        page = measure_structure(s, IndexKind.SECONDARY, ("b",), ("c",),
                                 CompressionMethod.PAGE)
        assert page.total_bytes <= row.total_bytes

    def test_ord_ind_invariance(self):
        """The ColSet premise: ROW-compressed size is (near) identical for
        any key order over the same column set."""
        s = SerializedTable(make_table(3000))
        ab = measure_structure(s, IndexKind.SECONDARY, ("b", "c"), (),
                               CompressionMethod.ROW)
        ba = measure_structure(s, IndexKind.SECONDARY, ("c", "b"), (),
                               CompressionMethod.ROW)
        assert abs(ab.leaf_pages - ba.leaf_pages) <= 1

    def test_ord_dep_sensitivity(self):
        """PAGE compression should generally differ between key orders
        (local dictionaries see different per-page distributions)."""
        s = SerializedTable(make_table(3000))
        ab = measure_structure(s, IndexKind.SECONDARY, ("b", "a"), (),
                               CompressionMethod.PAGE)
        ba = measure_structure(s, IndexKind.SECONDARY, ("a", "b"), (),
                               CompressionMethod.PAGE)
        assert ab.used_bytes != ba.used_bytes

    def test_stored_columns_secondary_has_rid(self):
        s = SerializedTable(make_table(10))
        cols = stored_columns(s, IndexKind.SECONDARY, ("b",), ("c",))
        assert cols[-1].name == RID_COLUMN.name
        assert [c.name for c in cols[:-1]] == ["b", "c"]

    def test_stored_columns_clustered_has_all(self):
        s = SerializedTable(make_table(10))
        cols = stored_columns(s, IndexKind.CLUSTERED, ("c",))
        assert {c.name for c in cols} == {"a", "b", "c"}
        assert cols[0].name == "c"

    def test_rle_on_sorted_column_compresses(self):
        s = SerializedTable(make_table(3000))
        rle = measure_structure(s, IndexKind.SECONDARY, ("b",), (),
                                CompressionMethod.RLE)
        plain = measure_structure(s, IndexKind.SECONDARY, ("b",))
        assert rle.total_bytes < plain.total_bytes

    def test_global_dict_has_extra_bytes(self):
        s = SerializedTable(make_table(2000))
        g = measure_structure(s, IndexKind.SECONDARY, ("b",), (),
                              CompressionMethod.GLOBAL_DICT)
        assert g.extra_bytes > 0

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=1, max_value=400))
    def test_rows_always_preserved(self, n):
        s = SerializedTable(make_table(n, seed=n))
        result = measure_structure(s, IndexKind.SECONDARY, ("b",), (),
                                   CompressionMethod.PAGE)
        assert result.rows == n
