"""Tests for the distinct-value estimators (Table 1 machinery)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StatisticsError
from repro.stats import (
    adaptive_estimator,
    chao_estimator,
    frequency_statistics,
    gee_estimator,
    independence_estimator,
    multiply_estimator,
)


def sample_counts(population: list, fraction: float, seed=0):
    """Bernoulli-sample a population of group labels; return freq stats."""
    rng = random.Random(seed)
    counts = {}
    for label in population:
        if rng.random() < fraction:
            counts[label] = counts.get(label, 0) + 1
    return counts


class TestFrequencyStatistics:
    def test_basic(self):
        assert frequency_statistics([1, 1, 2, 3]) == {1: 2, 2: 1, 3: 1}

    def test_rejects_nonpositive(self):
        with pytest.raises(StatisticsError):
            frequency_statistics([0])


class TestAdaptiveEstimator:
    def test_empty_sample(self):
        assert adaptive_estimator({}, 0, 0, 100) == 0.0

    def test_full_sample_returns_d(self):
        assert adaptive_estimator({1: 5}, 5, 5, 5) == 5.0

    def test_inconsistent_inputs(self):
        with pytest.raises(StatisticsError):
            adaptive_estimator({1: 3}, 5, 3, 100)

    def test_negative_inputs(self):
        with pytest.raises(StatisticsError):
            adaptive_estimator({}, -1, 0, 0)

    def test_uniform_small_groups(self):
        """1000 groups of 10 tuples, 10% sample: AE should land near
        1000 where Multiply badly overshoots is impossible here (d < D)
        and naive d underestimates."""
        population = [g for g in range(1000) for _ in range(10)]
        counts = sample_counts(population, 0.10, seed=1)
        freq = frequency_statistics(list(counts.values()))
        d = len(counts)
        r = sum(counts.values())
        est = adaptive_estimator(freq, d, r, len(population))
        assert est == pytest.approx(1000, rel=0.25)
        assert est >= d

    def test_skewed_groups(self):
        rng = random.Random(3)
        population = []
        for g in range(500):
            size = 1 + int(rng.expovariate(1 / 20))
            population.extend([g] * size)
        counts = sample_counts(population, 0.08, seed=2)
        freq = frequency_statistics(list(counts.values()))
        d, r = len(counts), sum(counts.values())
        est = adaptive_estimator(freq, d, r, len(population))
        assert est == pytest.approx(500, rel=0.4)

    def test_few_large_groups_counted_exactly(self):
        population = [g for g in range(20) for _ in range(5000)]
        counts = sample_counts(population, 0.05, seed=4)
        freq = frequency_statistics(list(counts.values()))
        d, r = len(counts), sum(counts.values())
        est = adaptive_estimator(freq, d, r, len(population))
        assert est == pytest.approx(20, rel=0.05)

    def test_capped_by_population(self):
        est = adaptive_estimator({1: 10}, 10, 10, 50)
        assert est <= 50 + 1e-9

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=20, max_value=400),
           st.integers(min_value=2, max_value=30))
    def test_estimate_at_least_observed(self, groups, size):
        population = [g for g in range(groups) for _ in range(size)]
        counts = sample_counts(population, 0.1, seed=groups * size)
        if not counts:
            return
        freq = frequency_statistics(list(counts.values()))
        d, r = len(counts), sum(counts.values())
        est = adaptive_estimator(freq, d, r, len(population))
        assert est >= d - 1e-9
        assert est <= len(population) + 1e-9


class TestBaselines:
    def test_multiply(self):
        assert multiply_estimator(50, 0.1) == pytest.approx(500)

    def test_multiply_invalid_fraction(self):
        with pytest.raises(StatisticsError):
            multiply_estimator(5, 0.0)

    def test_independence_capped(self):
        assert independence_estimator([100, 100], 500) == 500

    def test_independence_product(self):
        assert independence_estimator([3, 4], 1e9) == 12

    def test_gee(self):
        # All singletons: sqrt(n/r) * f1.
        est = gee_estimator({1: 10}, 10, 100, 10000)
        assert est == pytest.approx(100.0)

    def test_chao(self):
        assert chao_estimator({1: 4, 2: 2}, 6) == pytest.approx(6 + 16 / 4)

    def test_chao_no_f2(self):
        assert chao_estimator({1: 3}, 3) == pytest.approx(3 + 3.0)
