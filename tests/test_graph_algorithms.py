"""Tests for the estimation graph, greedy and optimal planners."""

import pytest

from repro.compression import CompressionMethod
from repro.physical import IndexDef
from repro.sampling import SampleManager
from repro.sizeest import (
    AnalyticSizer,
    DEFAULT_ERROR_MODEL,
    EstimationGraph,
    NodeState,
    PlanEvaluator,
    choose_plan,
    execute_plan,
    node_key,
    plan_all_sampled,
    plan_greedy,
    plan_optimal,
)
from repro.sizeest.deduction import DeductionEngine, MultiColumnDistinct
from repro.sizeest.graph import _segment_partitions
from repro.sizeest.samplecf import SampleCFRunner
from repro.storage import IndexKind


def ix(*keys, method=CompressionMethod.ROW):
    return IndexDef("fact", tuple(keys), kind=IndexKind.SECONDARY,
                    method=method)


@pytest.fixture()
def evaluator_factory(small_db, small_stats):
    manager = SampleManager(small_db, min_sample_rows=100)
    sizer = AnalyticSizer(small_db, small_stats, manager)

    def make(targets, existing=(), fraction=0.1):
        graph = EstimationGraph()
        for e in existing:
            graph.add_index(e, is_existing=True)
        for t in targets:
            graph.add_index(t, is_target=True)
        return PlanEvaluator(
            graph, DEFAULT_ERROR_MODEL, sizer, manager, fraction
        )

    return make


class TestPartitions:
    def test_two_columns(self):
        parts = _segment_partitions(("a", "b"), 3)
        assert parts == [(("a",), ("b",))]

    def test_three_columns(self):
        parts = _segment_partitions(("a", "b", "c"), 3)
        assert (("a",), ("b",), ("c",)) in parts
        assert (("a", "b"), ("c",)) in parts
        assert (("a",), ("b", "c")) in parts
        assert len(parts) == 3

    def test_max_segments_respected(self):
        parts = _segment_partitions(("a", "b", "c", "d"), 2)
        assert all(len(p) == 2 for p in parts)


class TestGraph:
    def test_expand_creates_children(self, evaluator_factory):
        ev = evaluator_factory([ix("f_cat", "f_qty")])
        key = node_key(ix("f_cat", "f_qty"))
        deds = ev.graph.expand_node(key)
        assert any(d.kind == "colext" for d in deds)
        assert node_key(ix("f_cat")) in ev.graph.nodes

    def test_colset_candidates_same_set(self, evaluator_factory):
        a = ix("f_cat", "f_qty")
        b = ix("f_qty", "f_cat")
        ev = evaluator_factory([a, b])
        deds = ev.graph.expand_node(node_key(a))
        colsets = [d for d in deds if d.kind == "colset"]
        assert any(d.children == (node_key(b),) for d in colsets)

    def test_no_colset_for_page(self, evaluator_factory):
        a = ix("f_cat", "f_qty", method=CompressionMethod.PAGE)
        b = ix("f_qty", "f_cat", method=CompressionMethod.PAGE)
        ev = evaluator_factory([a, b])
        deds = ev.graph.expand_node(node_key(a))
        assert not [d for d in deds if d.kind == "colset"]

    def test_existing_marked_sampled(self, evaluator_factory):
        e = ix("f_cat")
        ev = evaluator_factory([ix("f_cat", "f_qty")], existing=[e])
        assert ev.graph.nodes[node_key(e)].state is NodeState.SAMPLED


class TestGreedy:
    def test_all_targets_decided(self, evaluator_factory):
        targets = [ix("f_cat"), ix("f_qty"), ix("f_cat", "f_qty")]
        ev = evaluator_factory(targets)
        plan = plan_greedy(ev, e=0.5, q=0.8)
        for t in targets:
            assert ev.graph.nodes[node_key(t)].state is not NodeState.NONE
        assert plan.total_cost > 0

    def test_greedy_never_costs_more_than_all(self, evaluator_factory):
        targets = [
            ix("f_cat"), ix("f_qty"),
            ix("f_cat", "f_qty"), ix("f_cat", "f_qty", "f_day"),
        ]
        greedy = plan_greedy(evaluator_factory(targets), 0.5, 0.8)
        all_plan = plan_all_sampled(evaluator_factory(targets), 0.5, 0.8)
        assert greedy.total_cost <= all_plan.total_cost + 1e-9

    def test_deduces_composite_from_singletons(self, evaluator_factory):
        targets = [ix("f_cat"), ix("f_qty"), ix("f_cat", "f_qty")]
        ev = evaluator_factory(targets)
        plan_greedy(ev, e=0.5, q=0.8)
        composite = ev.graph.nodes[node_key(ix("f_cat", "f_qty"))]
        assert composite.state is NodeState.DEDUCED

    def test_tight_constraint_forces_sampling(self, evaluator_factory):
        targets = [ix("f_cat"), ix("f_qty"), ix("f_cat", "f_qty")]
        ev = evaluator_factory(targets)
        plan = plan_greedy(ev, e=0.01, q=0.999)
        composite = ev.graph.nodes[node_key(ix("f_cat", "f_qty"))]
        assert composite.state is NodeState.SAMPLED

    def test_existing_index_is_free(self, evaluator_factory):
        existing = ix("f_cat")
        targets = [ix("f_cat")]
        ev = evaluator_factory(targets, existing=[existing])
        plan = plan_greedy(ev, 0.5, 0.9)
        assert plan.total_cost == 0.0

    def test_feasibility_reported(self, evaluator_factory):
        targets = [ix("f_cat", method=CompressionMethod.PAGE)]
        ev = evaluator_factory(targets, fraction=0.01)
        plan = plan_greedy(ev, e=0.001, q=0.9999)
        assert not plan.feasible


class TestOptimal:
    def test_optimal_not_worse_than_greedy(self, evaluator_factory):
        targets = [
            ix("f_cat"), ix("f_qty"),
            ix("f_cat", "f_qty"), ix("f_cat", "f_qty", "f_day"),
        ]
        greedy = plan_greedy(evaluator_factory(targets), 0.5, 0.8)
        optimal = plan_optimal(evaluator_factory(targets), 0.5, 0.8)
        assert optimal.total_cost <= greedy.total_cost + 1e-9
        assert optimal.feasible

    def test_single_target(self, evaluator_factory):
        ev = evaluator_factory([ix("f_cat")])
        plan = plan_optimal(ev, 0.5, 0.9)
        assert plan.feasible
        assert plan.total_cost > 0

    def test_infeasible_falls_back(self, evaluator_factory):
        ev = evaluator_factory(
            [ix("f_cat", method=CompressionMethod.PAGE)], fraction=0.01
        )
        plan = plan_optimal(ev, e=0.0001, q=0.9999)
        assert not plan.feasible


class TestPlannerAndExecution:
    def test_choose_plan_picks_cheapest_feasible(self, small_db, small_stats):
        manager = SampleManager(small_db, min_sample_rows=100)
        sizer = AnalyticSizer(small_db, small_stats, manager)
        targets = [ix("f_cat"), ix("f_cat", "f_qty")]
        result = choose_plan(
            targets, [], DEFAULT_ERROR_MODEL, sizer, manager,
            e=0.5, q=0.8, fractions=(0.05, 0.2),
        )
        assert result.plan.feasible
        finite = {
            f: c for f, c in result.considered.items() if c != float("inf")
        }
        assert result.plan.total_cost == min(finite.values())

    def test_execute_plan_produces_estimates(self, small_db, small_stats):
        manager = SampleManager(small_db, min_sample_rows=100)
        sizer = AnalyticSizer(small_db, small_stats, manager)
        runner = SampleCFRunner(manager, sizer, DEFAULT_ERROR_MODEL)
        distinct = MultiColumnDistinct(small_db, manager, fraction=0.1)
        deduction = DeductionEngine(small_db, sizer, distinct)
        targets = [ix("f_cat"), ix("f_qty"), ix("f_cat", "f_qty")]
        result = choose_plan(
            targets, [], DEFAULT_ERROR_MODEL, sizer, manager,
            e=0.5, q=0.8, fractions=(0.1,),
        )
        estimates = execute_plan(
            result.plan, runner, deduction, DEFAULT_ERROR_MODEL, manager
        )
        for t in targets:
            assert node_key(t) in estimates
            assert estimates[node_key(t)].est_bytes > 0
