"""Tests for Table and Database catalog objects."""

import random

import pytest

from repro.catalog import Column, Database, INT, Table, build_database, char
from repro.errors import CatalogError


def make_table(n=100):
    t = Table(
        "t",
        [Column("a", INT), Column("b", char(8))],
        primary_key=("a",),
    )
    for i in range(n):
        t.append_row((i, f"v{i % 7}"))
    return t


class TestTable:
    def test_row_width(self):
        assert make_table(0).row_width == 16

    def test_num_rows(self):
        assert make_table(5).num_rows == 5

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table("x", [Column("a", INT), Column("a", INT)])

    def test_empty_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table("x", [])

    def test_unknown_pk_rejected(self):
        with pytest.raises(CatalogError):
            Table("x", [Column("a", INT)], primary_key=("zz",))

    def test_append_wrong_arity(self):
        t = make_table(0)
        with pytest.raises(CatalogError):
            t.append_row((1,))

    def test_iter_rows_projection(self):
        t = make_table(3)
        assert list(t.iter_rows(["b"])) == [("v0",), ("v1",), ("v2",)]

    def test_rows_full(self):
        t = make_table(2)
        assert t.rows() == [(0, "v0"), (1, "v1")]

    def test_unknown_column(self):
        with pytest.raises(CatalogError):
            make_table(1).column_values("nope")

    def test_set_column_data_length_check(self):
        t = make_table(3)
        with pytest.raises(CatalogError):
            t.set_column_data("a", [1, 2])

    def test_project(self):
        t = make_table(4)
        p = t.project(["b"])
        assert p.column_names == ("b",)
        assert p.num_rows == 4

    def test_empty_clone(self):
        c = make_table(5).empty_clone("c")
        assert c.num_rows == 0
        assert c.column_names == ("a", "b")
        assert c.primary_key == ("a",)


class TestSampling:
    def test_sample_fraction_bounds(self):
        t = make_table(10)
        with pytest.raises(CatalogError):
            t.sample(0.0, random.Random(1))
        with pytest.raises(CatalogError):
            t.sample(1.5, random.Random(1))

    def test_sample_full(self):
        t = make_table(10)
        s = t.sample(1.0, random.Random(1))
        assert s.num_rows == 10

    def test_sample_deterministic(self):
        t = make_table(1000)
        s1 = t.sample(0.1, random.Random(42))
        s2 = t.sample(0.1, random.Random(42))
        assert s1.rows() == s2.rows()

    def test_sample_size_reasonable(self):
        t = make_table(5000)
        s = t.sample(0.1, random.Random(7))
        assert 350 <= s.num_rows <= 650

    def test_sample_rows_come_from_table(self):
        t = make_table(200)
        s = t.sample(0.2, random.Random(3))
        original = set(t.rows())
        assert set(s.rows()) <= original


class TestDatabase:
    def test_duplicate_table_rejected(self):
        db = Database("d")
        db.add_table(make_table(1))
        with pytest.raises(CatalogError):
            db.add_table(make_table(1))

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Database("d").table("zz")

    def test_foreign_key_validates_columns(self):
        db = Database("d")
        db.add_table(make_table(1))
        other = Table("o", [Column("k", INT)])
        db.add_table(other)
        with pytest.raises(CatalogError):
            db.add_foreign_key("t", "nope", "o", "k")
        fk = db.add_foreign_key("t", "a", "o", "k")
        assert fk.src_table == "t"

    def test_fk_closure(self, small_db):
        closure = small_db.foreign_key_closure("fact")
        assert [(fk.src_table, fk.dst_table) for fk in closure] == [
            ("fact", "dim")
        ]

    def test_total_data_bytes(self, small_db):
        fact = small_db.table("fact")
        dim = small_db.table("dim")
        expected = (
            fact.num_rows * fact.row_width + dim.num_rows * dim.row_width
        )
        assert small_db.total_data_bytes() == expected

    def test_build_database_helper(self):
        db = build_database(
            "x",
            [make_table(1)],
        )
        assert db.has_table("t")
