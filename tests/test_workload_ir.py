"""Tests for predicates, statements and workloads."""

import pytest

from repro.errors import WorkloadError
from repro.workload import (
    Aggregate,
    Between,
    Comparison,
    Conjunction,
    InList,
    InsertQuery,
    Join,
    SelectQuery,
    UpdateQuery,
    Workload,
    conjunction_of,
    flatten,
)


class TestPredicates:
    def test_comparison_ops(self):
        row = {"x": 5}
        assert Comparison("x", "=", 5).evaluate(row)
        assert Comparison("x", "!=", 4).evaluate(row)
        assert Comparison("x", "<", 6).evaluate(row)
        assert Comparison("x", "<=", 5).evaluate(row)
        assert Comparison("x", ">", 4).evaluate(row)
        assert Comparison("x", ">=", 5).evaluate(row)
        assert not Comparison("x", "=", 4).evaluate(row)

    def test_unknown_op(self):
        with pytest.raises(WorkloadError):
            Comparison("x", "~", 1)

    def test_null_never_matches(self):
        assert not Comparison("x", "=", None).evaluate({"x": None})
        assert not Between("x", 1, 2).evaluate({"x": None})

    def test_between_inclusive(self):
        assert Between("x", 1, 3).evaluate({"x": 1})
        assert Between("x", 1, 3).evaluate({"x": 3})
        assert not Between("x", 1, 3).evaluate({"x": 4})

    def test_in_list(self):
        p = InList("x", (1, 2, 3))
        assert p.evaluate({"x": 2})
        assert not p.evaluate({"x": 9})
        assert p.is_equality

    def test_classification(self):
        assert Comparison("x", "=", 1).is_equality
        assert Comparison("x", "<", 1).is_range
        assert Between("x", 1, 2).is_range
        assert not Between("x", 1, 2).is_equality

    def test_conjunction(self):
        c = Conjunction((Comparison("x", ">", 1), Comparison("y", "=", 2)))
        assert c.evaluate({"x": 5, "y": 2})
        assert not c.evaluate({"x": 0, "y": 2})
        assert c.columns() == ("x", "y")

    def test_conjunction_of_normalizes(self):
        assert conjunction_of([]) is None
        single = Comparison("x", "=", 1)
        assert conjunction_of([single]) is single
        nested = conjunction_of(
            [Conjunction((single,)), Comparison("y", "=", 2)]
        )
        assert isinstance(nested, Conjunction)
        assert len(nested.predicates) == 2

    def test_flatten(self):
        single = Comparison("x", "=", 1)
        assert flatten(None) == ()
        assert flatten(single) == (single,)
        assert flatten(Conjunction((single, single))) == (single, single)


class TestSelectQuery:
    def make(self):
        return SelectQuery(
            tables=("fact", "dim"),
            select_columns=("d_name",),
            aggregates=(Aggregate("SUM", ("f_price", "f_qty")),),
            joins=(Join("f_dkey", "d_key"),),
            predicates=(Comparison("f_cat", "=", "CAT_1"),),
            group_by=("d_name",),
            order_by=("d_name",),
        )

    def test_referenced_columns(self):
        cols = self.make().referenced_columns()
        assert set(cols) == {
            "f_cat", "f_dkey", "d_key", "d_name", "f_price", "f_qty"
        }

    def test_columns_of_table(self, small_db):
        q = self.make()
        assert set(q.columns_of_table(small_db, "fact")) == {
            "f_cat", "f_dkey", "f_price", "f_qty"
        }
        assert set(q.columns_of_table(small_db, "dim")) == {
            "d_key", "d_name"
        }

    def test_predicates_of_table(self, small_db):
        q = self.make()
        assert len(q.predicates_of_table(small_db, "fact")) == 1
        assert q.predicates_of_table(small_db, "dim") == ()

    def test_validate_catches_unknown(self, small_db):
        q = SelectQuery(tables=("fact",), select_columns=("nope",))
        with pytest.raises(WorkloadError):
            q.validate(small_db)

    def test_aggregate_validation(self):
        with pytest.raises(WorkloadError):
            Aggregate("MEDIAN", ("x",))


class TestWorkload:
    def test_partition(self):
        wl = Workload()
        wl.add(SelectQuery(tables=("t",)), name="q")
        wl.add(InsertQuery("t", 100), name="i")
        assert len(wl.queries) == 1
        assert len(wl.updates) == 1
        assert len(wl) == 2

    def test_reweighted(self):
        wl = Workload()
        wl.add(SelectQuery(tables=("t",)), weight=1.0)
        wl.add(InsertQuery("t", 10), weight=1.0)
        heavy = wl.reweighted(select_weight=9.0, update_weight=2.0)
        assert heavy.queries[0].weight == 9.0
        assert heavy.updates[0].weight == 2.0
        # original untouched
        assert wl.queries[0].weight == 1.0

    def test_update_query_flags(self):
        u = UpdateQuery("t", ("a",))
        assert not u.is_select
