"""Tests for the stochastic error model (Section 5.1)."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.compression import CompressionMethod
from repro.errors import SizeEstimationError
from repro.sizeest import DEFAULT_ERROR_MODEL, ErrorModel, ErrorRV


class TestErrorRV:
    def test_exact(self):
        rv = ErrorRV.exact()
        assert rv.mean == 1.0
        assert rv.var == 0.0
        assert rv.prob_within(0.01) == 1.0

    def test_prob_within_zero_var_outside(self):
        rv = ErrorRV(mean=2.0, var=0.0)
        assert rv.prob_within(0.5) == 0.0

    def test_prob_within_increases_with_e(self):
        rv = ErrorRV(mean=1.0, var=0.04)
        probs = [rv.prob_within(e) for e in (0.05, 0.2, 0.5, 1.0)]
        assert probs == sorted(probs)

    def test_prob_within_negative_e_rejected(self):
        with pytest.raises(SizeEstimationError):
            ErrorRV(1.0, 0.01).prob_within(-0.1)

    def test_product_identity(self):
        rv = ErrorRV(1.1, 0.02)
        combined = ErrorRV.product([rv, ErrorRV.exact()])
        assert combined.mean == pytest.approx(rv.mean)
        assert combined.var == pytest.approx(rv.var)

    def test_goodman_product_vs_monte_carlo(self):
        """Goodman's variance-of-product formula checked by simulation."""
        rng = random.Random(7)
        a = ErrorRV(1.05, 0.01)
        b = ErrorRV(0.95, 0.02)
        combined = ErrorRV.product([a, b])
        samples = [
            rng.gauss(a.mean, math.sqrt(a.var))
            * rng.gauss(b.mean, math.sqrt(b.var))
            for _ in range(200000)
        ]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert combined.mean == pytest.approx(mean, rel=0.02)
        assert combined.var == pytest.approx(var, rel=0.05)

    @given(st.lists(
        st.tuples(st.floats(0.8, 1.2), st.floats(0.0, 0.05)),
        min_size=1, max_size=5,
    ))
    def test_product_variance_nonnegative(self, params):
        rvs = [ErrorRV(m, v) for m, v in params]
        combined = ErrorRV.product(rvs)
        assert combined.var >= 0.0


class TestErrorModel:
    def test_samplecf_errors_shrink_with_f(self):
        m = DEFAULT_ERROR_MODEL
        small = m.samplecf_rv(CompressionMethod.PAGE, 0.01)
        big = m.samplecf_rv(CompressionMethod.PAGE, 0.10)
        assert big.var < small.var
        assert abs(big.mean - 1) < abs(small.mean - 1)

    def test_samplecf_full_fraction_exact(self):
        rv = DEFAULT_ERROR_MODEL.samplecf_rv(CompressionMethod.PAGE, 1.0)
        assert rv.mean == pytest.approx(1.0)
        assert rv.var == pytest.approx(0.0)

    def test_invalid_fraction(self):
        with pytest.raises(SizeEstimationError):
            DEFAULT_ERROR_MODEL.samplecf_rv(CompressionMethod.ROW, 0.0)

    def test_ld_worse_than_ns(self):
        m = DEFAULT_ERROR_MODEL
        ns = m.samplecf_rv(CompressionMethod.ROW, 0.05)
        ld = m.samplecf_rv(CompressionMethod.PAGE, 0.05)
        assert ld.var > ns.var

    def test_colext_grows_with_a(self):
        m = DEFAULT_ERROR_MODEL
        a2 = m.colext_rv(CompressionMethod.PAGE, 2)
        a4 = m.colext_rv(CompressionMethod.PAGE, 4)
        assert a4.var > a2.var

    def test_colext_needs_sources(self):
        with pytest.raises(SizeEstimationError):
            DEFAULT_ERROR_MODEL.colext_rv(CompressionMethod.ROW, 0)

    def test_colset_small_error(self):
        rv = DEFAULT_ERROR_MODEL.colset_rv(CompressionMethod.ROW)
        assert rv.prob_within(0.01) > 0.99

    def test_custom_model(self):
        m = ErrorModel(samplecf_std={"NS": 0.5, "LD": 0.5})
        rv = m.samplecf_rv(CompressionMethod.ROW, 0.01)
        assert rv.prob_within(0.1) < 0.5
