"""Async tuning service: concurrency determinism, in-flight coalescing,
backpressure, and clean shutdown.

The stress contract under test (see ``repro.service.service``): any mix
of concurrent clients gets byte-identical responses to sequential
execution (request isolation mirrors sweep units), identical in-flight
requests run once (coalescing counters prove the dedup), the bounded
queue rejects honestly when full, and stopping the service under load
leaks neither the scheduler's lane threads nor any engine pool.
"""

import asyncio
import threading

import pytest

from repro.api import tune
from repro.datasets.sales import sales_database, sales_workload
from repro.errors import BackpressureError, ServiceError
from repro.parallel.engine import ParallelEngine, fork_available
from repro.service import AdvisorService, serialize_result
from repro.service.service import canonical_payload


@pytest.fixture(scope="module")
def service_inputs():
    db = sales_database(scale=0.02)
    wl = sales_workload(db)
    return db, wl


def run(coro):
    return asyncio.run(coro)


async def _make_service(db, wl, **kwargs):
    service = AdvisorService(**kwargs)
    service.register("sales", db, wl)
    await service.start()
    return service


TUNE_A = dict(budget_fraction=0.12, variant="dtac-none")
TUNE_B = dict(budget_fraction=0.2, variant="dtac-none")
EST = dict(index={"table": "sales", "key_columns": ["sa_date"],
                  "method": "page"})
COST = dict(statement_index=0,
            indexes=[{"table": "sales", "key_columns": ["sa_date"]}])


class TestConcurrencyDeterminism:
    def test_concurrent_identical_to_sequential_and_direct(
        self, service_inputs
    ):
        """≥4 concurrent clients with overlapping tune/estimate/cost
        requests: every response is byte-identical to the same request
        executed sequentially on a fresh service, and tune responses are
        byte-identical to direct ``tune()`` calls."""
        db, wl = service_inputs

        async def concurrent():
            service = await _make_service(db, wl)
            try:
                return await asyncio.gather(
                    service.tune("sales", **TUNE_A),
                    service.tune("sales", **TUNE_B),
                    service.estimate_size("sales", **EST),
                    service.whatif_cost("sales", **COST),
                    service.tune("sales", **TUNE_A),  # coalesces
                    service.estimate_size("sales", **EST),
                )
            finally:
                await service.stop()

        async def sequential():
            service = await _make_service(db, wl)
            try:
                out = []
                out.append(await service.tune("sales", **TUNE_A))
                out.append(await service.tune("sales", **TUNE_B))
                out.append(await service.estimate_size("sales", **EST))
                out.append(await service.whatif_cost("sales", **COST))
                out.append(await service.tune("sales", **TUNE_A))
                out.append(await service.estimate_size("sales", **EST))
                return out
            finally:
                await service.stop()

        conc = run(concurrent())
        seq = run(sequential())
        for c, s in zip(conc, seq):
            if "result" in c:
                assert c["result"] == s["result"]
            else:
                assert c == s
        # And against the advisor invoked directly, no service involved.
        direct_a = tune(db, wl, db.total_data_bytes() * 0.12,
                        variant="dtac-none")
        assert conc[0]["result"] == serialize_result(direct_a)["result"]
        assert conc[4]["result"] == conc[0]["result"]

    @pytest.mark.slow
    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_shared_engine_pool_identical_results(self, service_inputs):
        """The shared keep-alive engine pool (workers=2) must not move
        any float of a response."""
        db, wl = service_inputs

        async def with_engine(engine):
            service = await _make_service(db, wl, engine=engine)
            try:
                return await service.tune("sales", **TUNE_A)
            finally:
                await service.stop()

        seq = run(with_engine(ParallelEngine(1)))
        par_engine = ParallelEngine(2)
        par = run(with_engine(par_engine))
        assert par["result"] == seq["result"]
        assert par_engine._pool is None  # stop() released the pool


class TestCoalescing:
    def test_identical_inflight_requests_coalesce(self, service_inputs):
        db, wl = service_inputs

        async def scenario():
            service = await _make_service(db, wl)
            try:
                answers = await asyncio.gather(
                    *[service.estimate_size("sales", **EST)
                      for _ in range(5)],
                    *[service.whatif_cost("sales", **COST)
                      for _ in range(3)],
                )
                return answers, service.stats()
            finally:
                await service.stop()

        answers, stats = run(scenario())
        for a in answers[:5]:
            assert a == answers[0]
        for a in answers[5:]:
            assert a == answers[5]
        assert stats["coalesced"]["estimate_size"] == 4
        assert stats["coalesced"]["whatif_cost"] == 2
        # The deduped work really ran once per distinct payload.
        assert stats["completed"]["estimate_size"] == 1
        assert stats["completed"]["whatif_cost"] == 1

    def test_key_ignores_payload_key_order(self):
        assert canonical_payload({"a": 1, "b": [1, 2]}) == \
            canonical_payload({"b": [1, 2], "a": 1})

    def test_completed_requests_do_not_coalesce(self, service_inputs):
        """Coalescing is strictly in-flight: a repeat after completion
        re-executes (and may hit warm caches instead)."""
        db, wl = service_inputs

        async def scenario():
            service = await _make_service(db, wl)
            try:
                first = await service.whatif_cost("sales", **COST)
                second = await service.whatif_cost("sales", **COST)
                return first, second, service.stats()
            finally:
                await service.stop()

        first, second, stats = run(scenario())
        assert first == second
        assert stats["coalesced"]["whatif_cost"] == 0
        assert stats["completed"]["whatif_cost"] == 2


class TestBackpressure:
    def test_queue_full_rejects_nowait_and_recovers(self, service_inputs):
        db, wl = service_inputs

        async def scenario():
            service = await _make_service(db, wl, max_pending=2)
            context = service.contexts["sales"]
            started = threading.Event()
            release = threading.Event()
            original = context.run_whatif_cost

            def blocking(payload):
                started.set()
                assert release.wait(30)
                return original(payload)

            context.run_whatif_cost = blocking
            try:
                # One request occupies the context's lane thread...
                blocked = asyncio.ensure_future(
                    service.whatif_cost("sales", **COST)
                )
                await asyncio.get_running_loop().run_in_executor(
                    None, started.wait, 30
                )
                # ...then fill the bounded queue with distinct requests.
                queued = [
                    asyncio.ensure_future(service.request(
                        "whatif_cost", "sales",
                        {**COST, "statement_index": i + 1},
                    ))
                    for i in range(2)
                ]
                await asyncio.sleep(0.05)
                assert service.stats()["queue_depth"] == 2
                with pytest.raises(BackpressureError):
                    await service.request(
                        "whatif_cost", "sales",
                        {**COST, "statement_index": 9}, wait=False,
                    )
                assert service.rejected == 1
                release.set()
                answers = await asyncio.gather(blocked, *queued)
                # After draining, the queue takes requests again.
                again = await service.request(
                    "whatif_cost", "sales",
                    {**COST, "statement_index": 9}, wait=False,
                )
                return answers, again, service.stats()
            finally:
                context.run_whatif_cost = original
                await service.stop()

        answers, again, stats = run(scenario())
        assert len(answers) == 3
        assert again["total"] > 0
        assert stats["rejected"] == 1

    def test_cancelled_originator_does_not_strand_waiters(
        self, service_inputs
    ):
        """A request cancelled while parked in the bounded queue's
        put() must resolve the coalesced future: waiters that attached
        to it get a loud ServiceError instead of hanging forever."""
        db, wl = service_inputs

        async def scenario():
            service = await _make_service(db, wl, max_pending=1)
            context = service.contexts["sales"]
            started = threading.Event()
            release = threading.Event()
            original = context.run_whatif_cost

            def blocking(payload):
                started.set()
                assert release.wait(30)
                return original(payload)

            context.run_whatif_cost = blocking
            try:
                blocked = asyncio.ensure_future(
                    service.whatif_cost("sales", **COST)
                )
                await asyncio.get_running_loop().run_in_executor(
                    None, started.wait, 30
                )
                filler = asyncio.ensure_future(service.request(
                    "whatif_cost", "sales",
                    {**COST, "statement_index": 1},
                ))
                await asyncio.sleep(0.05)
                # Originator parks in queue.put(); waiter coalesces.
                originator = asyncio.ensure_future(service.request(
                    "whatif_cost", "sales",
                    {**COST, "statement_index": 2},
                ))
                await asyncio.sleep(0.05)
                waiter = asyncio.ensure_future(service.request(
                    "whatif_cost", "sales",
                    {**COST, "statement_index": 2},
                ))
                await asyncio.sleep(0.05)
                assert service.stats()["coalesced"]["whatif_cost"] == 1
                originator.cancel()
                with pytest.raises(ServiceError,
                                   match="cancelled before execution"):
                    await asyncio.wait_for(waiter, timeout=5)
                release.set()
                return await asyncio.gather(blocked, filler)
            finally:
                context.run_whatif_cost = original
                await service.stop()

        answers = run(scenario())
        assert all(a["total"] > 0 for a in answers)

    def test_blocking_request_waits_for_slot(self, service_inputs):
        """``wait=True`` parks the caller instead of rejecting: the
        request completes once the queue drains."""
        db, wl = service_inputs

        async def scenario():
            service = await _make_service(db, wl, max_pending=1)
            context = service.contexts["sales"]
            started = threading.Event()
            release = threading.Event()
            original = context.run_whatif_cost

            def blocking(payload):
                started.set()
                assert release.wait(30)
                return original(payload)

            context.run_whatif_cost = blocking
            try:
                blocked = asyncio.ensure_future(
                    service.whatif_cost("sales", **COST)
                )
                await asyncio.get_running_loop().run_in_executor(
                    None, started.wait, 30
                )
                filler = asyncio.ensure_future(service.request(
                    "whatif_cost", "sales",
                    {**COST, "statement_index": 1},
                ))
                await asyncio.sleep(0.05)
                waiter = asyncio.ensure_future(service.request(
                    "whatif_cost", "sales",
                    {**COST, "statement_index": 2},
                ))
                await asyncio.sleep(0.05)
                assert not waiter.done()  # parked on the full queue
                release.set()
                return await asyncio.gather(blocked, filler, waiter)
            finally:
                context.run_whatif_cost = original
                await service.stop()

        answers = run(scenario())
        assert all(a["total"] > 0 for a in answers)


class TestLifecycle:
    def test_shutdown_under_load_leaks_nothing(self, service_inputs):
        """stop(drain=False) with queued work: queued requests fail
        with ServiceError, no engine pool or executor survives, and the
        service can start again afterwards."""
        db, wl = service_inputs

        async def scenario():
            service = await _make_service(db, wl, max_pending=8)
            context = service.contexts["sales"]
            started = threading.Event()
            release = threading.Event()
            original = context.run_whatif_cost

            def blocking(payload):
                started.set()
                assert release.wait(30)
                return original(payload)

            context.run_whatif_cost = blocking
            running = asyncio.ensure_future(
                service.whatif_cost("sales", **COST)
            )
            await asyncio.get_running_loop().run_in_executor(
                None, started.wait, 30
            )
            queued = [
                asyncio.ensure_future(service.request(
                    "whatif_cost", "sales",
                    {**COST, "statement_index": i + 1},
                ))
                for i in range(3)
            ]
            await asyncio.sleep(0.05)
            # Stop while the lane thread is still blocked mid-job, then
            # let the job finish so the lane executors can drain.
            stopper = asyncio.ensure_future(service.stop(drain=False))
            await asyncio.sleep(0.05)
            release.set()
            await stopper
            context.run_whatif_cost = original
            assert service.engine._pool is None
            assert all(
                lane.engine._pool is None
                for lane in service.scheduler.lanes
            )
            assert not service.started
            outcomes = await asyncio.gather(
                running, *queued, return_exceptions=True
            )
            # Restartable: the same service object serves again.
            await service.start()
            try:
                after = await service.whatif_cost("sales", **COST)
            finally:
                await service.stop()
            return outcomes, after

        outcomes, after = run(scenario())
        failures = [o for o in outcomes if isinstance(o, ServiceError)]
        assert failures  # queued work failed loudly, not silently
        assert after["total"] > 0

    def test_drain_stop_completes_queued_work(self, service_inputs):
        db, wl = service_inputs

        async def scenario():
            service = await _make_service(db, wl)
            futures = [
                asyncio.ensure_future(service.request(
                    "whatif_cost", "sales",
                    {**COST, "statement_index": i},
                ))
                for i in range(3)
            ]
            await asyncio.sleep(0)
            await service.stop(drain=True)
            return await asyncio.gather(*futures)

        answers = run(scenario())
        assert len(answers) == 3
        assert all(a["total"] > 0 for a in answers)

    def test_request_errors(self, service_inputs):
        db, wl = service_inputs

        async def scenario():
            service = await _make_service(db, wl)
            try:
                with pytest.raises(ServiceError, match="unknown context"):
                    await service.tune("nope", **TUNE_A)
                with pytest.raises(ServiceError, match="unknown request"):
                    await service.request("frobnicate", "sales", {})
                with pytest.raises(ServiceError, match="budget"):
                    await service.tune("sales", variant="dtac-none")
                with pytest.raises(ServiceError, match="unknown variant"):
                    await service.tune(
                        "sales", budget_fraction=0.1, variant="bogus"
                    )
                with pytest.raises(ServiceError, match="advisor options"):
                    await service.tune(
                        "sales", budget_fraction=0.1,
                        options={"workers": 4},
                    )
            finally:
                await service.stop()

        run(scenario())

    def test_duplicate_context_rejected(self, service_inputs):
        db, wl = service_inputs
        service = AdvisorService()
        service.register("sales", db, wl)
        with pytest.raises(ServiceError, match="already registered"):
            service.register("sales", db, wl)

    def test_request_before_start_rejected(self, service_inputs):
        db, wl = service_inputs

        async def scenario():
            service = AdvisorService()
            service.register("sales", db, wl)
            with pytest.raises(ServiceError, match="not running"):
                await service.whatif_cost("sales", **COST)

        run(scenario())

    def test_request_after_stop_raises_promptly(self, service_inputs):
        """A stopped service rejects both admission styles immediately
        — no caller may ever park against a gate nobody will open."""
        db, wl = service_inputs

        async def scenario():
            service = await _make_service(db, wl)
            await service.stop()
            with pytest.raises(ServiceError, match="not running"):
                await asyncio.wait_for(
                    service.whatif_cost("sales", **COST), timeout=5
                )
            with pytest.raises(ServiceError, match="not running"):
                await asyncio.wait_for(
                    service.request("whatif_cost", "sales", COST,
                                    wait=False),
                    timeout=5,
                )

        run(scenario())


class TestCacheSharing:
    def test_cost_cache_warms_across_requests(self, service_inputs,
                                              tmp_path):
        """A second identical tune (after the first completed, so no
        coalescing) replays what-if costs from the absorbed cache — and
        still answers byte-identically."""
        db, wl = service_inputs

        async def scenario():
            service = await _make_service(
                db, wl, cache_dir=str(tmp_path)
            )
            try:
                first = await service.tune("sales", **TUNE_A)
                absorbed = len(service.cost_cache)
                second = await service.tune("sales", **TUNE_A)
                return first, second, absorbed, service.stats()
            finally:
                await service.stop()

        first, second, absorbed, stats = run(scenario())
        assert second["result"] == first["result"]
        # The first run's cost entries were absorbed into the parent...
        assert absorbed > 0
        # ...so the second run's fork view replays instead of recosting.
        assert first["meta"]["cost_cache_stats"]["hits"] == 0
        assert second["meta"]["cost_cache_stats"]["hits"] > 0
        assert stats["coalesced"]["tune"] == 0
        # The caches were persisted on stop.
        assert (tmp_path / "costs.json").exists()

    def test_cached_tune_identical_to_uncached(self, service_inputs,
                                               tmp_path):
        db, wl = service_inputs

        async def with_cache(cache_dir):
            service = await _make_service(db, wl, cache_dir=cache_dir)
            try:
                return await service.tune("sales", **TUNE_B)
            finally:
                await service.stop()

        cached = run(with_cache(str(tmp_path)))
        warm = run(with_cache(str(tmp_path)))  # fresh service, warm dir
        bare = run(with_cache(None))
        assert cached["result"] == bare["result"]
        assert warm["result"] == bare["result"]
