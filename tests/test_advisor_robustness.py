"""Robustness and shape tests for the tuning advisor as a whole:
zero/degenerate budgets, degenerate workloads, and the Appendix D.2
behaviour of compressing existing base structures."""

import pytest

from repro.api import tune
from repro.advisor.advisor import AdvisorResult
from repro.datasets import tpch_database, tpch_workload
from repro.errors import AdvisorError
from repro.physical.configuration import Configuration
from repro.sizeest import SizeEstimator
from repro.stats import DatabaseStats
from repro.storage.index_build import IndexKind
from repro.workload.query import InsertQuery, Workload


@pytest.fixture(scope="module")
def env():
    db = tpch_database(scale=0.05)
    stats = DatabaseStats(db)
    estimator = SizeEstimator(db, stats=stats)
    return db, stats, estimator


class TestZeroBudget:
    def test_dtac_improves_at_zero_budget(self, env):
        """Appendix D.2: DTAc can recommend at 0% budget by compressing
        existing heaps and spending the saved space."""
        db, stats, estimator = env
        workload = tpch_workload(db, select_weight=5.0, insert_weight=1.0)
        result = tune(db, workload, 0.0, variant="dtac-both",
                      estimator=estimator, stats=stats)
        assert result.improvement > 0.0
        assert result.consumed_bytes <= 1e-6
        assert any(ix.is_compressed for ix in result.configuration)

    def test_dta_cannot_improve_at_zero_budget(self, env):
        db, stats, estimator = env
        workload = tpch_workload(db, select_weight=5.0, insert_weight=1.0)
        result = tune(db, workload, 0.0, variant="dta",
                      estimator=estimator, stats=stats)
        assert result.improvement == pytest.approx(0.0, abs=1e-9)


class TestBudgetMonotonicity:
    def test_dtac_improvement_non_decreasing(self, env):
        db, stats, estimator = env
        workload = tpch_workload(db, select_weight=5.0, insert_weight=1.0)
        total = db.total_data_bytes()
        improvements = [
            tune(db, workload, total * f, variant="dtac-both",
                 estimator=estimator, stats=stats).improvement
            for f in (0.0, 0.1, 0.3, 0.7)
        ]
        for lo, hi in zip(improvements, improvements[1:]):
            assert hi >= lo - 0.01

    def test_dtac_never_below_dta(self, env):
        db, stats, estimator = env
        workload = tpch_workload(db, select_weight=2.0, insert_weight=5.0)
        total = db.total_data_bytes()
        for f in (0.1, 0.5):
            dtac = tune(db, workload, total * f, variant="dtac-both",
                        estimator=estimator, stats=stats)
            dta = tune(db, workload, total * f, variant="dta",
                       estimator=estimator, stats=stats)
            assert dtac.improvement >= dta.improvement - 0.01


class TestDegenerateWorkloads:
    def test_empty_workload(self, env):
        db, stats, estimator = env
        result = tune(db, Workload(), db.total_data_bytes(),
                      variant="dtac-both",
                      estimator=estimator, stats=stats)
        assert result.improvement == pytest.approx(0.0)
        assert result.candidate_count == 0

    def test_insert_only_workload_adds_no_secondary_indexes(self, env):
        db, stats, estimator = env
        workload = Workload()
        workload.add(InsertQuery("lineitem", 1000), weight=10.0)
        result = tune(db, workload, db.total_data_bytes(),
                      variant="dtac-both",
                      estimator=estimator, stats=stats)
        secondaries = [
            ix for ix in result.configuration
            if ix.kind is IndexKind.SECONDARY
        ]
        assert secondaries == []

    def test_unknown_variant_rejected(self, env):
        db, stats, estimator = env
        with pytest.raises(AdvisorError):
            tune(db, Workload(), 0.0, variant="dtac-turbo",
                 estimator=estimator, stats=stats)


class TestDecoupledStrawman:
    def test_everything_compressed(self, env):
        from repro.api import tune_decoupled

        db, stats, estimator = env
        workload = tpch_workload(db, select_weight=1.0, insert_weight=10.0)
        result = tune_decoupled(db, workload, db.total_data_bytes() * 0.4,
                                estimator=estimator, stats=stats)
        assert all(ix.is_compressed for ix in result.configuration)
        assert any("decoupled" in step for step in result.steps)

    def test_integrated_never_loses(self, env):
        from repro.api import tune_decoupled

        db, stats, estimator = env
        workload = tpch_workload(db, select_weight=1.0, insert_weight=10.0)
        budget = db.total_data_bytes() * 0.4
        integrated = tune(db, workload, budget, variant="dtac-both",
                          estimator=estimator, stats=stats)
        staged = tune_decoupled(db, workload, budget,
                                estimator=estimator, stats=stats)
        assert integrated.improvement >= staged.improvement - 0.01


class TestAdvisorResult:
    def test_zero_base_cost_improvement(self):
        result = AdvisorResult(
            configuration=Configuration(),
            base_configuration=Configuration(),
            base_cost=0.0,
            final_cost=0.0,
            consumed_bytes=0.0,
            budget_bytes=0.0,
            elapsed_seconds=0.0,
            candidate_count=0,
            pool_size=0,
        )
        assert result.improvement == 0.0
        assert result.improvement_pct == 0.0

    def test_improvement_pct_scaling(self):
        result = AdvisorResult(
            configuration=Configuration(),
            base_configuration=Configuration(),
            base_cost=100.0,
            final_cost=25.0,
            consumed_bytes=0.0,
            budget_bytes=0.0,
            elapsed_seconds=0.0,
            candidate_count=0,
            pool_size=0,
        )
        assert result.improvement == pytest.approx(0.75)
        assert result.improvement_pct == pytest.approx(75.0)
