"""Tests for sweep orchestration: byte-identical results against a
sequential per-run ``tune()`` loop (at workers=1 and workers=2), warm
persistent caches reproducing the cold sweep with a >90% cost-cache hit
rate, and cache snapshot isolation between sweep units."""

import pytest

from repro.api import run_sweep, tune
from repro.datasets import sales_database, sales_workload
from repro.errors import AdvisorError
from repro.parallel.engine import fork_available
from repro.sampling import DEFAULT_SAMPLE_SEED, SampleManager
from repro.sizeest import SizeEstimator

VARIANT = "dtac-none"
SEEDS = (DEFAULT_SAMPLE_SEED, DEFAULT_SAMPLE_SEED + 7)


@pytest.fixture(scope="module")
def sweep_inputs():
    db = sales_database(scale=0.03)
    wl = sales_workload(db)
    total = db.total_data_bytes()
    return db, wl, (total * 0.1, total * 0.2)


def _assert_same_result(a, b):
    assert a.configuration == b.configuration
    assert a.final_cost == b.final_cost
    assert a.base_cost == b.base_cost
    assert a.consumed_bytes == b.consumed_bytes
    assert a.steps == b.steps


@pytest.fixture(scope="module")
def sequential_baseline(sweep_inputs):
    """The ground truth: independent tune() calls, one fresh estimator
    per (seed, budget), seeds outer / budgets inner."""
    db, wl, budgets = sweep_inputs
    results = []
    for seed in SEEDS:
        for budget in budgets:
            estimator = SizeEstimator(
                db, manager=SampleManager(db, seed=seed)
            )
            results.append(
                tune(db, wl, budget, variant=VARIANT, estimator=estimator)
            )
    return results


class TestSweepEquivalence:
    def test_workers_one_matches_tune_loop(
        self, sweep_inputs, sequential_baseline
    ):
        db, wl, budgets = sweep_inputs
        sweep = run_sweep(
            db, wl, budgets, seeds=SEEDS, variant=VARIANT, workers=1
        )
        assert [
            (run.seed, run.budget_bytes) for run in sweep.runs
        ] == [(seed, budget) for seed in SEEDS for budget in budgets]
        for run, expected in zip(sweep.runs, sequential_baseline):
            _assert_same_result(run.result, expected)
        assert sweep.engine_stats["parallel_maps"] == 0

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_sharded_matches_tune_loop(
        self, sweep_inputs, sequential_baseline, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        db, wl, budgets = sweep_inputs
        sweep = run_sweep(
            db, wl, budgets, seeds=SEEDS, variant=VARIANT, workers=2
        )
        for run, expected in zip(sweep.runs, sequential_baseline):
            _assert_same_result(run.result, expected)
        # The whole sweep ran as ONE engine session with run-level units.
        assert sweep.engine_stats["parallel_maps"] == 1
        assert sweep.engine_stats["tasks_dispatched"] == len(sweep.runs)

    def test_run_for_lookup(self, sweep_inputs):
        db, wl, budgets = sweep_inputs
        sweep = run_sweep(
            db, wl, budgets[:1], seeds=SEEDS, variant=VARIANT
        )
        result = sweep.run_for(budgets[0], seed=SEEDS[1])
        assert result is sweep.runs[1].result
        with pytest.raises(AdvisorError, match="2 sweep runs"):
            sweep.run_for(budgets[0])

    def test_rejects_reserved_options_and_bad_variant(self, sweep_inputs):
        db, wl, budgets = sweep_inputs
        with pytest.raises(AdvisorError, match="unknown variant"):
            run_sweep(db, wl, budgets, variant="bogus")
        with pytest.raises(AdvisorError, match="budget_bytes"):
            run_sweep(db, wl, budgets, variant=VARIANT, budget_bytes=1.0)
        with pytest.raises(AdvisorError, match="at least one budget"):
            run_sweep(db, wl, [], variant=VARIANT)


class TestSweepCaches:
    def test_warm_sweep_reproduces_and_hits(self, sweep_inputs, tmp_path):
        db, wl, budgets = sweep_inputs
        cold = run_sweep(
            db, wl, budgets, seeds=SEEDS[:1], variant=VARIANT,
            cache_dir=tmp_path,
        )
        # Cold sweep units see the empty pre-sweep snapshot: no hits,
        # so the cold sweep equals an uncached one by construction.
        assert cold.cost_cache_stats["hits"] == 0
        assert cold.cost_cache_stats["stores"] > 0
        assert (tmp_path / "costs.json").exists()
        assert (tmp_path / "estimates.json").exists()

        warm = run_sweep(
            db, wl, budgets, seeds=SEEDS[:1], variant=VARIANT,
            cache_dir=tmp_path,
        )
        for cold_run, warm_run in zip(cold.runs, warm.runs):
            _assert_same_result(cold_run.result, warm_run.result)
        # The acceptance bar: a warm sweep skips costing almost entirely.
        assert warm.cost_cache_stats["hit_rate"] > 0.9
        assert warm.estimation_cache_stats["hit_rate"] > 0.9

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_sharded_cached_sweep_persists_and_reproduces(
        self, sweep_inputs, tmp_path, monkeypatch
    ):
        """The headline combination: run-level sharding *with* a cache
        directory.  fork_view snapshots are taken inside forked workers
        and multiple worker processes save concurrently through the
        advisory lock — the warm sequential rerun must see everything
        they persisted and reproduce the sharded results exactly."""
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        db, wl, budgets = sweep_inputs
        cold = run_sweep(
            db, wl, budgets, seeds=SEEDS, variant=VARIANT,
            workers=2, cache_dir=tmp_path,
        )
        assert cold.engine_stats["parallel_maps"] == 1
        assert (tmp_path / "costs.json").exists()

        warm = run_sweep(
            db, wl, budgets, seeds=SEEDS, variant=VARIANT,
            workers=1, cache_dir=tmp_path,
        )
        for cold_run, warm_run in zip(cold.runs, warm.runs):
            _assert_same_result(cold_run.result, warm_run.result)
        # Every worker's entries reached disk: the warm rerun costs
        # nothing — no run's save may have clobbered a sibling's.
        assert warm.cost_cache_stats["hit_rate"] == 1.0
        assert warm.estimation_cache_stats["hit_rate"] == 1.0

    def test_cold_cached_sweep_matches_uncached(self, sweep_inputs, tmp_path):
        db, wl, budgets = sweep_inputs
        plain = run_sweep(
            db, wl, budgets[:1], seeds=SEEDS[:1], variant=VARIANT
        )
        cached = run_sweep(
            db, wl, budgets[:1], seeds=SEEDS[:1], variant=VARIANT,
            cache_dir=tmp_path,
        )
        for a, b in zip(plain.runs, cached.runs):
            _assert_same_result(a.result, b.result)

    def test_different_seeds_partition_cost_entries(
        self, sweep_inputs, tmp_path
    ):
        """A warm rerun under a *different* sampling seed must not replay
        the first seed's costs: its size estimates differ, and the
        sized-structure keys diverge with them."""
        db, wl, budgets = sweep_inputs
        run_sweep(db, wl, budgets[:1], seeds=SEEDS[:1], variant=VARIANT,
                  cache_dir=tmp_path)
        other_seed = run_sweep(
            db, wl, budgets[:1], seeds=(DEFAULT_SAMPLE_SEED + 99,),
            variant=VARIANT, cache_dir=tmp_path,
        )
        assert other_seed.cost_cache_stats["hit_rate"] == 0.0
