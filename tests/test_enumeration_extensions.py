"""Tests for the enumeration extensions: seeded multi-start greedy, the
final method-polish pass, and base-structure compression as first-class
pool moves."""

import pytest

from repro.advisor.enumeration import EnumerationOptions, Enumerator
from repro.compression import CompressionMethod
from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.storage.index_build import IndexKind
from repro.workload.query import Workload

MB = 1024 * 1024


class TrapCost:
    """A cost surface with a greedy trap.

    Picking the big index B (benefit 12) first exhausts the budget; the
    optimum is the two smaller indexes {S1, S2} (benefit 8 + 7).  Single
    seed greedy falls in; fanout >= 2 escapes.
    """

    BASE = 100.0

    def __init__(self):
        self.big = IndexDef("t", ("b",))
        self.s1 = IndexDef("t", ("s1",))
        self.s2 = IndexDef("t", ("s2",))
        self.heap = IndexDef("t", (), kind=IndexKind.HEAP)
        self.sizes = {
            self.big: 10.0 * MB,
            self.s1: 5.0 * MB,
            self.s2: 5.0 * MB,
            self.heap: 0.0,
        }

    def size(self, ix):
        if ix not in self.sizes:
            return self.sizes.get(ix.uncompressed(), 0.0) * 0.5
        return self.sizes[ix]

    def cost(self, config):
        cost = self.BASE
        if self.big in config:
            cost -= 12.0
        if self.s1 in config:
            cost -= 8.0
        if self.s2 in config:
            cost -= 7.0
        return cost

    def pool(self):
        return [self.big, self.s1, self.s2]

    def base(self):
        return Configuration([self.heap])


def make_enumerator(fake, budget_mb=10.0, seed_fanout=3,
                    backtracking=False, allow_compression=True):
    options = EnumerationOptions(
        budget_bytes=budget_mb * MB,
        backtracking=backtracking,
        seed_fanout=seed_fanout,
        allow_compression=allow_compression,
    )
    return Enumerator(Workload(), fake.cost, fake.size, {"t": 0.0}, options)


class TestSeededMultiStart:
    def test_single_seed_falls_into_trap(self):
        fake = TrapCost()
        result = make_enumerator(fake, seed_fanout=1).run(
            fake.pool(), fake.base()
        )
        assert fake.big in result.configuration
        assert result.cost == pytest.approx(88.0)

    def test_fanout_escapes_trap(self):
        fake = TrapCost()
        result = make_enumerator(fake, seed_fanout=3).run(
            fake.pool(), fake.base()
        )
        assert fake.s1 in result.configuration
        assert fake.s2 in result.configuration
        assert result.cost == pytest.approx(85.0)

    def test_fanout_never_worse_than_single_seed(self):
        fake = TrapCost()
        single = make_enumerator(fake, seed_fanout=1).run(
            fake.pool(), fake.base()
        )
        multi = make_enumerator(fake, seed_fanout=4).run(
            fake.pool(), fake.base()
        )
        assert multi.cost <= single.cost

    def test_empty_pool_returns_base(self):
        fake = TrapCost()
        result = make_enumerator(fake).run([], fake.base())
        assert result.configuration == fake.base()
        assert result.cost == pytest.approx(TrapCost.BASE)

    def test_budget_always_respected(self):
        fake = TrapCost()
        for budget in (0.0, 4.9, 5.0, 10.0, 100.0):
            result = make_enumerator(fake, budget_mb=budget).run(
                fake.pool(), fake.base()
            )
            assert result.consumed_bytes <= budget * MB + 1e-6


class PolishCost:
    """Cost surface where the PAGE variant of S beats uncompressed after
    the greedy finishes (e.g. I/O-bound scan)."""

    BASE = 50.0

    def __init__(self):
        self.s = IndexDef("t", ("s",))
        self.s_page = self.s.with_method(CompressionMethod.PAGE)
        self.heap = IndexDef("t", (), kind=IndexKind.HEAP)

    def size(self, ix):
        if ix == self.heap:
            return 0.0
        return 4.0 * MB if ix.is_compressed else 10.0 * MB

    def cost(self, config):
        cost = self.BASE
        if self.s_page in config:
            cost -= 12.0
        elif self.s in config:
            cost -= 10.0
        return cost


class TestPolish:
    def test_polish_upgrades_method(self):
        fake = PolishCost()
        enumerator = make_enumerator(fake, budget_mb=20.0)
        # Only the uncompressed variant is in the pool: the polish pass
        # must still find the better PAGE variant.
        result = enumerator.run([fake.s], Configuration([fake.heap]))
        assert fake.s_page in result.configuration
        assert result.cost == pytest.approx(38.0)

    def test_polish_respects_budget(self):
        fake = PolishCost()
        # PAGE variant is smaller here, so shrink the budget so only the
        # compressed variant fits; polish must still land inside it.
        enumerator = make_enumerator(fake, budget_mb=5.0)
        result = enumerator.run([fake.s_page], Configuration([fake.heap]))
        assert result.consumed_bytes <= 5.0 * MB + 1e-6

    def test_polish_disabled_without_compression(self):
        fake = PolishCost()
        enumerator = make_enumerator(
            fake, budget_mb=20.0, allow_compression=False
        )
        result = enumerator.run([fake.s], Configuration([fake.heap]))
        assert fake.s in result.configuration
        assert fake.s_page not in result.configuration

    def test_polish_can_decompress(self):
        """The reverse direction: a compressed pick whose uncompressed
        variant is faster and fits gets decompressed."""
        fake = PolishCost()

        def cost(config):
            c = fake.BASE
            if fake.s in config:
                c -= 12.0       # uncompressed now faster
            elif fake.s_page in config:
                c -= 10.0
            return c

        options = EnumerationOptions(
            budget_bytes=20.0 * MB, seed_fanout=2
        )
        enumerator = Enumerator(
            Workload(), cost, fake.size, {"t": 0.0}, options
        )
        result = enumerator.run([fake.s_page], Configuration([fake.heap]))
        assert fake.s in result.configuration
