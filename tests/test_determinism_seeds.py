"""CI-friendly determinism: samples, Zipf draws and derived advisor
state must be identical run-to-run, independent of PYTHONHASHSEED.

The sampling layer used to seed its per-(table, fraction) RNG streams
from builtin ``hash()``, whose string hashing is randomized per
process — every run drew different samples, so compression-fraction
estimates (and benchmark JSON) wobbled.  These tests pin the fix by
comparing digests across subprocesses with *different* hash seeds.
"""

import hashlib
import subprocess
import sys
from pathlib import Path

import pytest

from repro.datasets.zipf import ZipfSampler
from repro.errors import ReproError

SRC = str(Path(__file__).resolve().parent.parent / "src")

_SAMPLE_DIGEST_SCRIPT = """
import hashlib
from repro.datasets import sales_database
from repro.sampling import SampleManager

db = sales_database(scale=0.03)
manager = SampleManager(db, seed=77)
h = hashlib.sha256()
for table in ("sales", "products"):
    for fraction in (0.05, 0.1):
        sample = manager.table_sample(table, fraction).table
        for row in sample.iter_rows():
            h.update(repr(row).encode())
print(h.hexdigest())
"""

_ZIPF_DIGEST_SCRIPT = """
from repro.datasets.zipf import ZipfSampler
print(ZipfSampler(1000, 1.2, seed=5).sample_many(500))
"""

_DELTA_TUNE_DIGEST_SCRIPT = """
from repro.api import tune
from repro.datasets.sales import sales_database, sales_workload

db = sales_database(scale=0.03)
wl = sales_workload(db)
budget = db.total_data_bytes() * 0.15
result = tune(db, wl, budget, variant="dtac-none", delta_costing=True)
names = sorted(ix.display_name() for ix in result.configuration)
print(repr((names, result.base_cost, result.final_cost, result.steps)))
"""


def _run_with_hashseed(script: str, hashseed: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PYTHONHASHSEED": hashseed, "PATH": "/usr/bin:/bin"},
        check=True,
    )
    return result.stdout.strip()


class TestHashseedIndependence:
    def test_samples_stable_across_hashseeds(self):
        a = _run_with_hashseed(_SAMPLE_DIGEST_SCRIPT, "1")
        b = _run_with_hashseed(_SAMPLE_DIGEST_SCRIPT, "31337")
        assert a == b

    def test_zipf_stable_across_hashseeds(self):
        a = _run_with_hashseed(_ZIPF_DIGEST_SCRIPT, "2")
        b = _run_with_hashseed(_ZIPF_DIGEST_SCRIPT, "777")
        assert a == b

    def test_delta_costed_tune_stable_across_hashseeds(self):
        """The delta coster's diff/probe/patch machinery walks sets of
        index identities; none of it may leak hash-order into the
        recommendation, the costs or the step log."""
        a = _run_with_hashseed(_DELTA_TUNE_DIGEST_SCRIPT, "3")
        b = _run_with_hashseed(_DELTA_TUNE_DIGEST_SCRIPT, "4242")
        assert a == b


class TestSeedEntryPoints:
    def test_zipf_explicit_seed_reproduces(self):
        first = ZipfSampler(100, 0.9, seed=42).sample_many(200)
        second = ZipfSampler(100, 0.9, seed=42).sample_many(200)
        assert first == second
        other = ZipfSampler(100, 0.9, seed=43).sample_many(200)
        assert first != other

    def test_zipf_default_seed_is_stable(self):
        assert (
            ZipfSampler(50, 1.0).sample_many(50)
            == ZipfSampler(50, 1.0).sample_many(50)
        )

    def test_zipf_rejects_rng_and_seed_together(self):
        import random

        with pytest.raises(ReproError):
            ZipfSampler(10, 0.5, rng=random.Random(1), seed=2)

    def test_sample_manager_seed_streams_are_stable(self, small_db):
        from repro.sampling import SampleManager

        def digest(manager):
            h = hashlib.sha256()
            for row in manager.table_sample("fact", 0.05).table.iter_rows():
                h.update(repr(row).encode())
            return h.hexdigest()

        assert digest(SampleManager(small_db, seed=9)) == digest(
            SampleManager(small_db, seed=9)
        )
        assert digest(SampleManager(small_db, seed=9)) != digest(
            SampleManager(small_db, seed=10)
        )
