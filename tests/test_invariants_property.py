"""Cross-module property tests on the library's core invariants:
configuration algebra, skyline selection, page quantization, and the
estimation error model's probability machinery."""

from hypothesis import given, settings, strategies as st

from repro.advisor.selection import (
    CandidateConfiguration,
    cluster_skyline,
    select_skyline,
    select_top_k,
)
from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.storage.index_build import IndexKind
from repro.storage.page import PAGE_SIZE, quantize_bytes

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
column_names = st.sampled_from(["a", "b", "c", "d", "e"])
key_sets = st.lists(column_names, min_size=1, max_size=3, unique=True)


@st.composite
def index_defs(draw):
    keys = tuple(draw(key_sets))
    kind = draw(st.sampled_from([IndexKind.SECONDARY, IndexKind.CLUSTERED]))
    return IndexDef("t", keys, kind=kind)


@st.composite
def candidate_configs(draw):
    cost = draw(st.floats(min_value=0.0, max_value=1000.0,
                          allow_nan=False))
    size = draw(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    return CandidateConfiguration(frozenset(), cost=cost, size=size)


# ----------------------------------------------------------------------
class TestConfigurationAlgebra:
    @given(st.lists(index_defs(), max_size=6))
    def test_one_base_structure_per_table(self, indexes):
        config = Configuration()
        for ix in indexes:
            config = config.add(ix)
        bases = [
            i for i in config
            if i.kind in (IndexKind.HEAP, IndexKind.CLUSTERED)
        ]
        assert len(bases) <= 1  # single table "t" in this strategy

    @given(index_defs())
    def test_add_then_remove_roundtrip(self, ix):
        config = Configuration()
        grown = config.add(ix)
        assert ix in grown
        assert grown.remove(ix) == config

    @given(st.lists(index_defs(), max_size=6))
    def test_add_is_idempotent(self, indexes):
        config = Configuration()
        for ix in indexes:
            config = config.add(ix)
        for ix in list(config):
            assert config.add(ix) == config

    @given(st.lists(index_defs(), max_size=5))
    def test_equality_is_order_insensitive(self, indexes):
        forward = Configuration()
        for ix in indexes:
            forward = forward.add(ix)
        backward = Configuration()
        for ix in reversed(indexes):
            backward = backward.add(ix)
        # Clustered adds replace each other, so only compare when the
        # insertion order cannot matter (secondary-only sets).
        if all(i.kind is IndexKind.SECONDARY for i in indexes):
            assert forward == backward
            assert hash(forward) == hash(backward)


# ----------------------------------------------------------------------
class TestSkylineProperties:
    @settings(max_examples=60)
    @given(st.lists(candidate_configs(), min_size=1, max_size=25))
    def test_no_skyline_member_is_dominated(self, configs):
        skyline = select_skyline(configs)
        for member in skyline:
            assert not any(
                other.dominates(member)
                for other in configs
                if other is not member
            )

    @settings(max_examples=60)
    @given(st.lists(candidate_configs(), min_size=1, max_size=25))
    def test_cheapest_always_on_skyline(self, configs):
        skyline = select_skyline(configs)
        cheapest_cost = min(c.cost for c in configs)
        assert any(c.cost == cheapest_cost for c in skyline)

    @settings(max_examples=60)
    @given(st.lists(candidate_configs(), min_size=1, max_size=25),
           st.integers(min_value=1, max_value=8))
    def test_cluster_bound_and_topk_retention(self, configs, max_points):
        skyline = select_skyline(configs)
        clustered = cluster_skyline(skyline, max_points)
        assert len(clustered) <= max_points + 2
        for keep in select_top_k(skyline, 2):
            assert keep in clustered

    @settings(max_examples=60)
    @given(st.lists(candidate_configs(), min_size=1, max_size=25),
           st.integers(min_value=1, max_value=5))
    def test_top_k_is_sorted_prefix(self, configs, k):
        top = select_top_k(configs, k)
        assert len(top) == min(k, len(configs))
        costs = [c.cost for c in top]
        assert costs == sorted(costs)
        assert costs[-1] <= max(c.cost for c in configs)


# ----------------------------------------------------------------------
class TestQuantizeBytes:
    @given(st.floats(min_value=0.0, max_value=1e12, allow_nan=False))
    def test_multiple_of_page_and_covers_input(self, size):
        q = quantize_bytes(size)
        assert q % PAGE_SIZE == 0
        assert q >= size or q == PAGE_SIZE
        assert q >= PAGE_SIZE

    @given(st.floats(min_value=0.0, max_value=1e12, allow_nan=False))
    def test_idempotent(self, size):
        q = quantize_bytes(size)
        assert quantize_bytes(q) == q

    @given(st.floats(min_value=1.0, max_value=1e12, allow_nan=False))
    def test_within_one_page_of_input(self, size):
        assert quantize_bytes(size) - size < PAGE_SIZE

    def test_zero_and_negative(self):
        assert quantize_bytes(0.0) == PAGE_SIZE
        assert quantize_bytes(-5.0) == PAGE_SIZE
