"""Tests for candidate generation, selection (skyline), merging and
enumeration — including the paper's Figure 6/8 backtracking scenario."""

import pytest
from hypothesis import given, strategies as st

from repro.advisor import (
    CandidateConfiguration,
    CandidateOptions,
    EnumerationOptions,
    Enumerator,
    candidate_indexes,
    cluster_skyline,
    expand_compression_variants,
    generate_merged_candidates,
    merge_pair,
    mv_candidates,
    select_skyline,
    select_top_k,
)
from repro.compression import CompressionMethod
from repro.physical import Configuration, IndexDef
from repro.storage import IndexKind
from repro.workload import (
    Aggregate,
    Join,
    SelectQuery,
    Workload,
    parse_query,
)


def q_fact():
    return parse_query(
        "SELECT SUM(f_price) FROM fact WHERE f_cat = 'CAT_1' "
        "AND f_day BETWEEN 10 AND 50 GROUP BY f_dkey"
    )


class TestCandidateGeneration:
    def test_basic_candidates(self, small_db):
        cands = candidate_indexes(small_db, q_fact(), CandidateOptions())
        keys = {c.key_columns for c in cands}
        assert ("f_cat",) in keys
        assert ("f_cat", "f_day") in keys

    def test_covering_variants_present(self, small_db):
        cands = candidate_indexes(small_db, q_fact(), CandidateOptions())
        assert any(c.included_columns for c in cands)

    def test_clustered_candidate_present(self, small_db):
        cands = candidate_indexes(small_db, q_fact(), CandidateOptions())
        assert any(c.kind is IndexKind.CLUSTERED for c in cands)

    def test_partial_candidates_toggle(self, small_db):
        off = candidate_indexes(
            small_db, q_fact(), CandidateOptions(enable_partial=False)
        )
        on = candidate_indexes(
            small_db, q_fact(), CandidateOptions(enable_partial=True)
        )
        assert not any(c.is_partial for c in off)
        assert any(c.is_partial for c in on)

    def test_mv_candidates_need_joins(self, small_db):
        assert mv_candidates(small_db, q_fact()) == []
        join_q = SelectQuery(
            tables=("fact", "dim"),
            aggregates=(Aggregate("SUM", ("f_price",)),),
            joins=(Join("f_dkey", "d_key"),),
            group_by=("d_group",),
        )
        mvs = mv_candidates(small_db, join_q)
        assert mvs
        assert all(mv.fact_table == "fact" for mv in mvs)

    def test_insert_statement_yields_nothing(self, small_db):
        from repro.workload import InsertQuery

        assert candidate_indexes(
            small_db, InsertQuery("fact", 10), CandidateOptions()
        ) == []

    def test_compression_expansion(self):
        base = [IndexDef("fact", ("f_cat",))]
        expanded = expand_compression_variants(base, True)
        methods = {ix.method for ix in expanded}
        assert methods == {
            CompressionMethod.NONE, CompressionMethod.ROW,
            CompressionMethod.PAGE,
        }
        assert len(expand_compression_variants(base, False)) == 1

    def test_key_cap(self, small_db):
        cands = candidate_indexes(
            small_db, q_fact(), CandidateOptions(max_key_columns=1)
        )
        assert all(len(c.key_columns) <= 1 for c in cands)


def cc(cost, size):
    return CandidateConfiguration(frozenset(), cost=cost, size=size)


class TestSelection:
    def test_top_k(self):
        configs = [cc(5, 1), cc(1, 9), cc(3, 3)]
        picked = select_top_k(configs, 2)
        assert [c.cost for c in picked] == [1, 3]

    def test_skyline_removes_dominated(self):
        configs = [cc(1, 9), cc(3, 3), cc(5, 1), cc(6, 4)]
        skyline = select_skyline(configs)
        assert cc(6, 4) not in skyline
        assert len(skyline) == 3

    def test_skyline_keeps_slow_small(self):
        """The paper's Figure 5 point: a slow-but-small configuration
        survives the skyline though top-k would drop it."""
        configs = [cc(1, 100), cc(2, 90), cc(10, 5)]
        assert cc(10, 5) in select_skyline(configs)
        assert cc(10, 5) not in select_top_k(configs, 2)

    @given(st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)),
        min_size=1, max_size=40,
    ))
    def test_skyline_mutually_nondominated(self, points):
        configs = [cc(c, s) for c, s in points]
        skyline = select_skyline(configs)
        for a in skyline:
            for b in skyline:
                if a is not b:
                    assert not a.dominates(b)

    def test_cluster_skyline_bounds(self):
        configs = [cc(100 - i, i) for i in range(30)]
        clustered = cluster_skyline(configs, 5)
        # At most max_points representatives plus the always-retained
        # two cheapest configurations.
        assert 5 <= len(clustered) <= 7
        cheapest = sorted(configs, key=lambda c: c.cost)[:2]
        assert all(c in clustered for c in cheapest)

    def test_cluster_noop_when_small(self):
        configs = [cc(1, 2), cc(2, 1)]
        assert cluster_skyline(configs, 5) == configs


class TestMerging:
    def test_prefix_merge(self):
        a = IndexDef("t", ("a",), included_columns=("x",))
        b = IndexDef("t", ("a", "b"), included_columns=("y",))
        merged = merge_pair(a, b)
        assert merged.key_columns == ("a", "b")
        assert set(merged.included_columns) == {"x", "y"}

    def test_non_prefix_not_merged(self):
        a = IndexDef("t", ("a",))
        b = IndexDef("t", ("b", "a"))
        assert merge_pair(a, b) is None

    def test_different_tables_not_merged(self):
        assert merge_pair(IndexDef("t", ("a",)),
                          IndexDef("u", ("a",))) is None

    def test_different_methods_not_merged(self):
        a = IndexDef("t", ("a",), method=CompressionMethod.ROW)
        b = IndexDef("t", ("a", "b"))
        assert merge_pair(a, b) is None

    def test_identity_merge_skipped(self):
        a = IndexDef("t", ("a",))
        b = IndexDef("t", ("a", "b"))
        merged = merge_pair(a, b)
        assert merged == b or merged is None

    def test_generate_bounded(self):
        pool = [
            IndexDef("t", ("a",), included_columns=(c,))
            for c in "bcdefgh"
        ]
        pool += [IndexDef("t", ("a", "z"))]
        out = generate_merged_candidates(pool, max_new=5)
        assert len(out) <= 5


class FakeCost:
    """A hand-built workload-cost oracle for the Figure 6/8 scenario.

    Budget 15MB.  Indexes: B (10MB, speeds the query by 10), B^c (5MB,
    speeds by 8), C (10MB, speeds by 5; only with C can the design reach
    the optimum).  Pure greedy picks B first and gets stuck; backtracking
    recovers {B^c, C}.
    """

    BASE = 100.0
    MB = 1024 * 1024

    def __init__(self):
        self.b = IndexDef("t", ("b",))
        self.bc = IndexDef("t", ("b",), method=CompressionMethod.ROW)
        self.c = IndexDef("t", ("c",))
        self.heap = IndexDef("t", (), kind=IndexKind.HEAP)
        self.sizes = {
            self.b: 10.0 * self.MB,
            self.bc: 5.0 * self.MB,
            self.c: 10.0 * self.MB,
            self.heap: 0.0,
        }

    def size(self, ix):
        # Backtracking may synthesize compressed variants (e.g. a ROW
        # compressed heap); give them a compressed-ish default.
        if ix not in self.sizes:
            return self.sizes.get(ix.uncompressed(), 0.0) * 0.5
        return self.sizes[ix]

    def cost(self, config):
        cost = self.BASE
        # B-family benefit: the best of B (10) / compressed B (8).
        if self.b in config:
            cost -= 10.0
        elif self.bc in config:
            cost -= 8.0
        if self.c in config:
            cost -= 5.0
        return cost


class TestEnumeration:
    def make(self, backtracking, strategy="greedy", budget_mb=15.0,
             seed_fanout=3):
        fake = FakeCost()
        options = EnumerationOptions(
            budget_bytes=budget_mb * FakeCost.MB,
            strategy=strategy,
            backtracking=backtracking,
            seed_fanout=seed_fanout,
        )
        enumerator = Enumerator(
            Workload(),
            fake.cost,
            fake.size,
            {"t": 0.0},
            options,
        )
        return fake, enumerator

    def test_pure_greedy_gets_stuck(self):
        """Figure 6: single-seed greedy picks B (benefit 10), then
        nothing fits. (seed_fanout=1 pins the classic pathology that
        multi-start seeding and backtracking exist to escape.)"""
        fake, enumerator = self.make(backtracking=False, seed_fanout=1)
        result = enumerator.run(
            [fake.b, fake.bc, fake.c], Configuration([fake.heap])
        )
        assert fake.b in result.configuration
        assert fake.c not in result.configuration
        assert result.cost == pytest.approx(90.0)

    def test_backtracking_recovers_optimum(self):
        """Figure 8: the oversized {B, C} is recovered as {B^c, C}."""
        fake, enumerator = self.make(backtracking=True)
        result = enumerator.run(
            [fake.b, fake.bc, fake.c], Configuration([fake.heap])
        )
        assert fake.bc in result.configuration
        assert fake.c in result.configuration
        assert result.cost == pytest.approx(100.0 - 8.0 - 5.0)

    def test_density_greedy_prefers_compressed(self):
        """Figure 7: density picks B^c first (8/5 > 10/10), then C."""
        fake, enumerator = self.make(backtracking=False, strategy="density")
        result = enumerator.run(
            [fake.b, fake.bc, fake.c], Configuration([fake.heap])
        )
        assert fake.bc in result.configuration
        assert fake.c in result.configuration

    def test_plain_greedy_wins_at_large_budget(self):
        """Figure 7's flip side: with 20MB, {B, C} is optimal and pure
        greedy finds it while density would still start from B^c."""
        fake, enumerator = self.make(backtracking=False, budget_mb=20.0)
        result = enumerator.run(
            [fake.b, fake.bc, fake.c], Configuration([fake.heap])
        )
        assert fake.b in result.configuration
        assert fake.c in result.configuration
        assert result.cost == pytest.approx(85.0)

    def test_budget_respected(self):
        fake, enumerator = self.make(backtracking=True, budget_mb=15.0)
        result = enumerator.run(
            [fake.b, fake.bc, fake.c], Configuration([fake.heap])
        )
        assert result.consumed_bytes <= 15.0 * FakeCost.MB + 1e-6

    def test_base_swap_frees_budget(self):
        """A compressed base structure has negative consumed bytes."""
        fake, _ = self.make(backtracking=False)
        heap_row = IndexDef("t", (), kind=IndexKind.HEAP,
                            method=CompressionMethod.ROW)
        fake.sizes[heap_row] = -0.0  # placeholder
        options = EnumerationOptions(budget_bytes=0.0)
        enumerator = Enumerator(
            Workload(),
            lambda cfg: 100.0 - (5.0 if heap_row in cfg else 0.0),
            lambda ix: {heap_row: 4.0 * FakeCost.MB}.get(
                ix, fake.sizes.get(ix, 0.0)
            ),
            {"t": 10.0 * FakeCost.MB},
            options,
        )
        result = enumerator.run([heap_row], Configuration([fake.heap]))
        assert heap_row in result.configuration
        assert result.consumed_bytes < 0
