"""Tests for IndexDef, Configuration and MVDefinition."""

import pytest

from repro.catalog import IntType, decimal
from repro.compression import CompressionMethod
from repro.errors import AdvisorError
from repro.physical import Configuration, IndexDef, MVDefinition
from repro.physical.mv_def import aggregate_column_name
from repro.storage import IndexKind
from repro.workload import Aggregate, Comparison, Join


class TestIndexDef:
    def test_key_included_overlap_rejected(self):
        with pytest.raises(AdvisorError):
            IndexDef("t", ("a",), included_columns=("a",))

    def test_clustered_needs_keys(self):
        with pytest.raises(AdvisorError):
            IndexDef("t", (), kind=IndexKind.CLUSTERED)

    def test_heap_allows_empty_keys(self):
        heap = IndexDef("t", (), kind=IndexKind.HEAP)
        assert heap.column_sequence == ()

    def test_with_method_preserves_rest(self):
        a = IndexDef("t", ("a",), included_columns=("b",))
        b = a.with_method(CompressionMethod.PAGE)
        assert b.method is CompressionMethod.PAGE
        assert b.key_columns == a.key_columns
        assert b.included_columns == a.included_columns
        assert a.method is CompressionMethod.NONE  # original untouched

    def test_uncompressed(self):
        a = IndexDef("t", ("a",), method=CompressionMethod.ROW)
        assert a.uncompressed().method is CompressionMethod.NONE

    def test_covers(self):
        ix = IndexDef("t", ("a",), included_columns=("b",))
        assert ix.covers(("a", "b"))
        assert not ix.covers(("a", "c"))
        cl = IndexDef("t", ("a",), kind=IndexKind.CLUSTERED)
        assert cl.covers(("anything", "at", "all"))

    def test_key_prefix_length(self):
        ix = IndexDef("t", ("a", "b", "c"))
        assert ix.key_prefix_length({"a", "b"}) == 2
        assert ix.key_prefix_length({"a"}, {"b"}) == 2  # eq then range
        assert ix.key_prefix_length({"b"}) == 0
        assert ix.key_prefix_length({"a", "b", "c"}) == 3
        assert ix.key_prefix_length(set(), {"a"}) == 1  # range stops scan

    def test_display_name_tags(self):
        ix = IndexDef("t", ("a",), kind=IndexKind.CLUSTERED,
                      method=CompressionMethod.PAGE)
        name = ix.display_name()
        assert "cl" in name and "page" in name

    def test_hashable_and_equal(self):
        a = IndexDef("t", ("a",))
        b = IndexDef("t", ("a",))
        assert a == b
        assert len({a, b}) == 1


class TestConfiguration:
    def test_two_bases_rejected(self):
        with pytest.raises(AdvisorError):
            Configuration([
                IndexDef("t", (), kind=IndexKind.HEAP),
                IndexDef("t", ("a",), kind=IndexKind.CLUSTERED),
            ])

    def test_base_swap_on_add(self):
        heap = IndexDef("t", (), kind=IndexKind.HEAP)
        clustered = IndexDef("t", ("a",), kind=IndexKind.CLUSTERED)
        config = Configuration([heap]).add(clustered)
        assert heap not in config
        assert config.base_structure("t") == clustered

    def test_secondary_add_keeps_base(self):
        heap = IndexDef("t", (), kind=IndexKind.HEAP)
        sec = IndexDef("t", ("a",))
        config = Configuration([heap]).add(sec)
        assert heap in config and sec in config

    def test_remove_and_replace(self):
        sec = IndexDef("t", ("a",))
        config = Configuration([sec])
        assert len(config.remove(sec)) == 0
        replaced = config.replace(sec, sec.with_method(CompressionMethod.ROW))
        assert sec not in replaced
        with pytest.raises(AdvisorError):
            config.remove(IndexDef("t", ("zz",)))

    def test_total_size(self):
        a = IndexDef("t", ("a",))
        b = IndexDef("t", ("b",))
        config = Configuration([a, b])
        assert config.total_size({a: 10.0, b: 5.0}) == 15.0

    def test_indexes_on(self):
        a = IndexDef("t", ("a",))
        b = IndexDef("u", ("b",))
        config = Configuration([a, b])
        assert config.indexes_on("t") == [a]

    def test_equality_and_hash(self):
        a = Configuration([IndexDef("t", ("a",))])
        b = Configuration([IndexDef("t", ("a",))])
        assert a == b
        assert hash(a) == hash(b)


class TestMVDefinition:
    def mv(self, **kw):
        defaults = dict(
            name="m",
            fact_table="fact",
            tables=("fact", "dim"),
            joins=(Join("f_dkey", "d_key"),),
            group_by=("d_group",),
            aggregates=(Aggregate("SUM", ("f_price",)),),
        )
        defaults.update(kw)
        return MVDefinition(**defaults)

    def test_aggregate_column_name(self):
        assert aggregate_column_name(Aggregate("SUM", ("a", "b"))) == \
            "sum_a_b"
        assert aggregate_column_name(Aggregate("COUNT", ())) == "count_all"

    def test_storage_columns_with_count(self, small_db):
        cols = dict(self.mv().storage_columns(small_db))
        assert set(cols) == {"d_group", "sum_f_price", "count_all"}
        assert isinstance(cols["count_all"], IntType)
        assert isinstance(cols["sum_f_price"], type(decimal()))

    def test_explicit_count_not_duplicated(self, small_db):
        mv = self.mv(aggregates=(Aggregate("COUNT", ()),))
        names = [n for n, _ in mv.storage_columns(small_db)]
        assert names.count("count_all") == 1

    def test_min_keeps_source_type(self, small_db):
        mv = self.mv(aggregates=(Aggregate("MIN", ("f_qty",)),))
        cols = dict(mv.storage_columns(small_db))
        assert cols["min_f_qty"].width == \
            small_db.table("fact").column("f_qty").width

    def test_referenced_base_columns(self):
        mv = self.mv(predicates=(Comparison("f_qty", "<", 10),))
        refs = mv.referenced_base_columns()
        assert set(refs) == {
            "f_qty", "f_dkey", "d_key", "d_group", "f_price"
        }

    def test_projection_view_columns(self, small_db):
        mv = self.mv(group_by=(), aggregates=(),
                     predicates=(Comparison("d_group", "=", "G1"),))
        names = [n for n, _ in mv.storage_columns(small_db)]
        assert "count_all" not in names
        assert "d_group" in names
