"""The paper's Section 4.2 closing claim: the ORD-DEP column
extrapolation is "in principle also applicable to RLE compression
although we have not empirically evaluated it".  We evaluate it."""

import pytest

from repro.compression import CompressionMethod
from repro.physical import IndexDef
from repro.sampling import SampleManager
from repro.sizeest import (
    AnalyticSizer,
    DEFAULT_ERROR_MODEL,
    DeductionEngine,
    MultiColumnDistinct,
    SampleCFRunner,
    SizeEstimator,
)
from repro.stats import DatabaseStats
from repro.storage import IndexKind


@pytest.fixture(scope="module")
def rle_toolkit(small_db):
    stats = DatabaseStats(small_db)
    manager = SampleManager(small_db, min_sample_rows=150)
    sizer = AnalyticSizer(small_db, stats, manager)
    runner = SampleCFRunner(manager, sizer, DEFAULT_ERROR_MODEL)
    distinct = MultiColumnDistinct(small_db, manager, fraction=0.1)
    deduction = DeductionEngine(small_db, sizer, distinct)
    estimator = SizeEstimator(small_db, stats=stats, manager=manager)
    return runner, deduction, estimator


def ix(*keys):
    return IndexDef("fact", tuple(keys), kind=IndexKind.SECONDARY,
                    method=CompressionMethod.RLE)


class TestRLEDeduction:
    def test_rle_is_ord_dep(self):
        assert CompressionMethod.RLE.is_order_dependent

    def test_samplecf_works_for_rle(self, rle_toolkit):
        runner, _d, estimator = rle_toolkit
        est = runner.run(ix("f_cat"), 0.1)
        truth = estimator.true_size(ix("f_cat"))
        assert est.est_bytes == pytest.approx(truth, rel=0.2)

    def test_colext_applies_to_rle(self, rle_toolkit):
        runner, deduction, estimator = rle_toolkit
        target = ix("f_cat", "f_day")
        parts = [runner.run(ix("f_cat"), 0.1), runner.run(ix("f_day"), 0.1)]
        deduced = deduction.colext(target, parts)
        truth = estimator.true_size(target)
        # The paper expected this to work "in principle": on our substrate
        # the deduction lands within a modest factor of the truth.
        assert deduced == pytest.approx(truth, rel=0.5)

    def test_rle_fragmentation_penalty_applied(self, rle_toolkit):
        """The trailing column's run lengths collapse when it is not the
        leading key; the deduction must penalize its reduction."""
        _r, deduction, _e = rle_toolkit
        lead = deduction._fragmentation(ix("f_day", "f_cat"), "f_day")
        trail = deduction._fragmentation(ix("f_cat", "f_day"), "f_day")
        assert trail <= lead + 1e-9
