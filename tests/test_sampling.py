"""Tests for the sample manager, join synopses and MV samples."""

import pytest

from repro.engine import Executor
from repro.errors import SamplingError
from repro.physical import IndexDef, MVDefinition
from repro.sampling import SampleManager, build_join_synopsis, build_mv_sample
from repro.storage import IndexKind
from repro.workload import Aggregate, Comparison, Join, SelectQuery


@pytest.fixture()
def manager(small_db):
    return SampleManager(small_db, min_sample_rows=100)


class TestTableSamples:
    def test_cached_per_fraction(self, manager):
        a = manager.table_sample("fact", 0.1)
        b = manager.table_sample("fact", 0.1)
        assert a is b

    def test_different_fractions_differ(self, manager):
        a = manager.table_sample("fact", 0.1)
        b = manager.table_sample("fact", 0.5)
        assert a is not b
        assert b.table.num_rows > a.table.num_rows

    def test_min_rows_floor(self, manager, small_db):
        sample = manager.table_sample("dim", 0.01)
        assert sample.table.num_rows == small_db.table("dim").num_rows

    def test_effective_fraction(self, manager):
        assert manager.effective_fraction("fact", 0.5) == 0.5
        assert manager.effective_fraction("dim", 0.01) == 1.0

    def test_timing_recorded(self, manager):
        manager.table_sample("fact", 0.2)
        assert manager.counts["table_sample"] >= 1
        manager.reset_timings()
        assert not manager.counts


class TestFilteredSamples:
    def test_filter_applied(self, manager):
        pred = Comparison("f_cat", "=", "CAT_1")
        filtered = manager.filtered_sample("fact", (pred,), 0.2)
        values = set(filtered.table.column_values("f_cat"))
        assert values <= {"CAT_1"}

    def test_cached(self, manager):
        pred = Comparison("f_qty", "<", 10)
        a = manager.filtered_sample("fact", (pred,), 0.2)
        b = manager.filtered_sample("fact", (pred,), 0.2)
        assert a is b


class TestJoinSynopsis:
    def test_row_count_matches_fact_sample(self, manager):
        synopsis = manager.join_synopsis("fact", 0.2)
        fact_sample = manager.table_sample("fact", 0.2)
        assert synopsis.num_rows == fact_sample.table.num_rows

    def test_contains_dimension_columns(self, manager):
        synopsis = manager.join_synopsis("fact", 0.2)
        assert synopsis.has_column("d_name")
        assert synopsis.has_column("f_price")

    def test_join_correctness(self, manager, small_db):
        synopsis = manager.join_synopsis("fact", 0.2)
        dim = small_db.table("dim")
        name_of = dict(zip(dim.column_values("d_key"),
                           dim.column_values("d_name")))
        for dkey, dname in zip(synopsis.column_values("f_dkey"),
                               synopsis.column_values("d_name")):
            assert name_of[dkey] == dname

    def test_dangling_fk_detected(self, small_db):
        bad = small_db.table("fact").empty_clone("bad")
        bad.append_row((0, 9999, "CAT_0", 1, 10, 5))  # f_dkey 9999 missing
        with pytest.raises(SamplingError):
            build_join_synopsis(small_db, bad, "fact")


def mv_def(predicates=(), group_by=("d_group",),
           aggregates=(Aggregate("SUM", ("f_price",)),)):
    return MVDefinition(
        name="mv_test",
        fact_table="fact",
        tables=("fact", "dim"),
        joins=(Join("f_dkey", "d_key"),),
        predicates=tuple(predicates),
        group_by=group_by,
        aggregates=aggregates,
    )


class TestMVSamples:
    def test_full_fraction_matches_executor(self, small_db):
        """An MV 'sample' at fraction 1.0 must equal the defining query."""
        mv = mv_def()
        fact = small_db.table("fact")
        synopsis = build_join_synopsis(small_db, fact, "fact")
        sample = build_mv_sample(small_db, mv, synopsis, synopsis.num_rows,
                                 1.0)
        query = SelectQuery(
            tables=("fact", "dim"),
            aggregates=mv.aggregates,
            joins=mv.joins,
            group_by=mv.group_by,
        )
        expected = Executor(small_db).execute(query)
        got = {
            row[0]: row[1]
            for row in sample.table.iter_rows(("d_group", "sum_f_price"))
        }
        for d_group, total in expected.rows:
            assert got[d_group] == total

    def test_count_column_present(self, manager):
        sample = manager.mv_sample(mv_def(), 0.2)
        assert sample.table.has_column("count_all")
        assert sum(sample.table.column_values("count_all")) == \
            sample.sample_rows

    def test_est_rows_close_for_small_group_count(self, manager):
        # d_group has 5 values: the MV truly has 5 rows.
        sample = manager.mv_sample(mv_def(), 0.3)
        assert sample.est_rows == pytest.approx(5, abs=1)

    def test_filtered_mv(self, manager):
        mv = mv_def(predicates=(Comparison("f_qty", "<", 50),))
        sample = manager.mv_sample(mv, 0.3)
        assert sample.est_base_rows < 4000

    def test_projection_only_mv(self, manager, small_db):
        mv = MVDefinition(
            name="mv_proj",
            fact_table="fact",
            tables=("fact", "dim"),
            joins=(Join("f_dkey", "d_key"),),
            group_by=(),
            aggregates=(),
            predicates=(Comparison("d_group", "=", "G1"),),
        )
        sample = manager.mv_sample(mv, 0.3)
        assert sample.est_rows == pytest.approx(sample.est_base_rows)

    def test_missing_columns_detected(self, small_db):
        mv = mv_def(group_by=("d_group",))
        tiny = small_db.table("fact").project(["f_key"], "nope")
        with pytest.raises(SamplingError):
            build_mv_sample(small_db, mv, tiny, tiny.num_rows, 1.0)

    def test_sample_for_index_routes(self, manager):
        plain = IndexDef("fact", ("f_cat",), kind=IndexKind.SECONDARY)
        partial = IndexDef(
            "fact", ("f_cat",), kind=IndexKind.SECONDARY,
            filter=Comparison("f_qty", "<", 50),
        )
        s_plain = manager.sample_for_index(plain, 0.2)
        s_partial = manager.sample_for_index(partial, 0.2)
        assert s_partial.table.num_rows < s_plain.table.num_rows
