"""Tests for the error-model calibration fitter."""

import pytest

from repro.errors import SizeEstimationError
from repro.sizeest import SizeEstimator, calibrate_error_model

KEYSETS = {
    "fact": [
        ("f_cat",),
        ("f_day",),
        ("f_qty",),
        ("f_cat", "f_day"),
        ("f_cat", "f_day", "f_qty"),
    ],
}


@pytest.fixture(scope="module")
def report(small_db):
    return calibrate_error_model(
        small_db, KEYSETS, fractions=(0.05, 0.1), min_sample_rows=100
    )


class TestCalibration:
    def test_empty_keysets_rejected(self, small_db):
        with pytest.raises(SizeEstimationError):
            calibrate_error_model(small_db, {})

    def test_coefficients_finite_and_sane(self, report):
        m = report.model
        for cls in ("NS", "LD"):
            assert 0 <= m.samplecf_std[cls] < 0.5
            assert abs(m.samplecf_bias[cls]) < 0.5
            assert abs(m.colext_bias[cls]) < 0.5
            assert 0 < m.colext_std[cls] < 0.5

    def test_measurements_retained(self, report):
        assert report.samplecf_errors
        assert report.colext_errors
        assert report.colset_errors

    def test_summary_renders(self, report):
        text = report.summary()
        assert "SampleCF[NS]" in text and "ColExt[LD]" in text

    def test_model_usable_by_estimator(self, small_db, report):
        from repro.compression import CompressionMethod
        from repro.physical import IndexDef

        estimator = SizeEstimator(small_db, error_model=report.model)
        batch = [
            IndexDef("fact", ("f_cat",), method=CompressionMethod.ROW),
            IndexDef("fact", ("f_cat", "f_day"),
                     method=CompressionMethod.ROW),
        ]
        results = estimator.estimate_many(batch)
        assert all(r.est_bytes > 0 for r in results.values())

    def test_colset_near_exact_on_this_substrate(self, report):
        assert abs(report.model.colset_bias["NS"]) < 0.02
