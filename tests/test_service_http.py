"""JSON-over-HTTP front end + async client: round-trips, error mapping,
503 backpressure, and the ``/v1/jobs`` surface (submit, poll, chunked
event streaming, cancel)."""

import asyncio
import json
import threading

import pytest

from repro.datasets.sales import sales_database, sales_workload
from repro.service import (
    AdvisorClient,
    AdvisorService,
    ServiceHTTPError,
    ServiceHTTPServer,
)


@pytest.fixture(scope="module")
def http_inputs():
    db = sales_database(scale=0.02)
    wl = sales_workload(db)
    return db, wl


def run(coro):
    return asyncio.run(coro)


async def _boot(db, wl, **service_kwargs):
    service = AdvisorService(**service_kwargs)
    service.register("sales", db, wl)
    server = ServiceHTTPServer(service, port=0)  # ephemeral port
    await server.start()
    # retries=0: these tests assert raw status codes; automatic 503
    # backoff is exercised separately (tests/test_client_backoff.py).
    return service, server, AdvisorClient(port=server.port, retries=0)


class TestRoundTrips:
    def test_health_contexts_stats(self, http_inputs):
        db, wl = http_inputs

        async def scenario():
            service, server, client = await _boot(db, wl)
            try:
                health = await client.wait_ready()
                contexts = await client.contexts()
                stats = await client.stats()
                return health, contexts, stats
            finally:
                await server.stop()

        health, contexts, stats = run(scenario())
        assert health["ok"] is True
        assert health["contexts"] == ["sales"]
        ctx = contexts["contexts"][0]
        assert ctx["name"] == "sales"
        assert ctx["statements"] == len(sales_workload(http_inputs[0]))
        assert stats["max_pending"] == 64
        assert stats["running"] is True

    def test_estimate_cost_and_tune_over_http(self, http_inputs):
        """The HTTP answers carry exactly the payloads the in-process
        service produces (JSON round-trips floats exactly)."""
        db, wl = http_inputs

        async def scenario():
            service, server, client = await _boot(db, wl)
            try:
                est = await client.estimate_size(
                    "sales",
                    index={"table": "sales", "key_columns": ["sa_date"],
                           "method": "page"},
                )
                cost = await client.whatif_cost(
                    "sales", statement_index=0,
                    indexes=[{"table": "sales",
                              "key_columns": ["sa_date"]}],
                )
                answer = await client.tune(
                    "sales", budget_fraction=0.12, variant="dtac-none",
                )
                return est, cost, answer
            finally:
                await server.stop()

        est, cost, answer = run(scenario())
        assert est["est_bytes"] > 0
        assert est["index"]["display_name"] == "ix_sales_sa_date_page"
        assert cost["total"] == cost["io"] + cost["cpu"]

        # Byte-identical to the in-process service path.
        async def direct():
            service = AdvisorService()
            service.register("sales", db, wl)
            await service.start()
            try:
                return await service.tune(
                    "sales", budget_fraction=0.12, variant="dtac-none",
                )
            finally:
                await service.stop()

        assert answer["result"] == run(direct())["result"]

    def test_concurrent_http_clients_coalesce(self, http_inputs):
        db, wl = http_inputs

        async def scenario():
            service, server, client = await _boot(db, wl)
            try:
                payload = dict(statement_index=0)
                answers = await asyncio.gather(*[
                    client.whatif_cost("sales", **payload)
                    for _ in range(4)
                ])
                stats = await client.stats()
                return answers, stats
            finally:
                await server.stop()

        answers, stats = run(scenario())
        assert all(a == answers[0] for a in answers)
        assert stats["coalesced"]["whatif_cost"] > 0
        assert stats["completed"]["whatif_cost"] \
            + stats["coalesced"]["whatif_cost"] == 4


class TestErrorMapping:
    def test_http_errors(self, http_inputs):
        db, wl = http_inputs

        async def scenario():
            service, server, client = await _boot(db, wl)
            out = {}
            try:
                for label, coro in [
                    ("unknown_context",
                     client.whatif_cost("nope", statement_index=0)),
                    ("unknown_kind",
                     client._post("frobnicate", "sales")),
                    ("bad_payload", client.tune("sales")),
                    ("bad_spec", client.estimate_size(
                        "sales", index={"table": "sales",
                                        "key_columns": ["sa_date"],
                                        "method": "zstd"})),
                ]:
                    with pytest.raises(ServiceHTTPError) as err:
                        await coro
                    out[label] = err.value.status
                out["missing_resource"] = None
                try:
                    await client._request("GET", "/v1/bogus")
                except ServiceHTTPError as exc:
                    out["missing_resource"] = exc.status
                try:
                    await client._request("PUT", "/v1/tune")
                except ServiceHTTPError as exc:
                    out["bad_method"] = exc.status
                return out
            finally:
                await server.stop()

        statuses = run(scenario())
        assert statuses["unknown_context"] == 400
        assert statuses["unknown_kind"] == 400
        assert statuses["bad_payload"] == 400
        assert statuses["bad_spec"] == 400
        assert statuses["missing_resource"] == 404
        assert statuses["bad_method"] == 405

    def test_malformed_bodies(self, http_inputs):
        db, wl = http_inputs

        async def raw_post(port, path, body: bytes):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(
                f"POST {path} HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\n\r\n".encode() + body
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            status = int(raw.split(b" ", 2)[1])
            payload = json.loads(raw.partition(b"\r\n\r\n")[2] or b"{}")
            return status, payload

        async def scenario():
            service, server, client = await _boot(db, wl)
            try:
                not_json = await raw_post(
                    server.port, "/v1/tune", b"this is not json"
                )
                not_object = await raw_post(
                    server.port, "/v1/tune", b"[1,2,3]"
                )
                no_context = await raw_post(
                    server.port, "/v1/tune", b"{}"
                )
                return not_json, not_object, no_context
            finally:
                await server.stop()

        not_json, not_object, no_context = run(scenario())
        assert not_json[0] == 400 and "JSON" in not_json[1]["error"]
        assert not_object[0] == 400
        assert no_context[0] == 400
        assert "context" in no_context[1]["error"]

    def test_retryable_flag(self):
        assert ServiceHTTPError(503, "full").retryable
        assert not ServiceHTTPError(400, "nope").retryable


class TestJobsHTTP:
    def test_submit_stream_poll_roundtrip(self, http_inputs):
        """POST /v1/jobs -> stream /events (chunked NDJSON, >=1 greedy
        step) -> GET the finished snapshot, byte-identical to the
        synchronous /v1/tune answer."""
        db, wl = http_inputs

        async def scenario():
            service, server, client = await _boot(db, wl)
            try:
                job = await client.submit_job(
                    "sales", kind="tune",
                    budget_fraction=0.12, variant="dtac-none",
                )
                assert job["state"] in ("queued", "running")
                events = []
                async for event in client.stream_events(job["id"]):
                    events.append(event)
                final = await client.job(job["id"])
                listing = await client.jobs()
                sync = await client.tune(
                    "sales", budget_fraction=0.12, variant="dtac-none",
                )
                return job, events, final, listing, sync
            finally:
                await server.stop()

        job, events, final, listing, sync = run(scenario())
        assert final["state"] == "done"
        assert final["result"]["result"] == sync["result"]
        greedy = [e for e in events if e["event"] == "greedy_step"]
        assert len(greedy) >= 1
        states = [e["state"] for e in events if e["event"] == "state"]
        assert states[-1] == "done"
        assert any(j["id"] == job["id"] for j in listing["jobs"])

    def test_tenant_filter_and_guardrail_fields(self, http_inputs):
        """``GET /v1/jobs?tenant=X`` lists only that tenant's jobs, and
        ``deadline_s``/``retries``/``retry_backoff`` submitted over HTTP
        land in the job snapshot."""
        db, wl = http_inputs

        async def scenario():
            service, server, client = await _boot(db, wl)
            try:
                acme = await client.submit_job(
                    "sales", kind="tune", tenant="acme",
                    budget_fraction=0.12, variant="dtac-none",
                    deadline_s=600.0, retries=2, retry_backoff=0.1,
                )
                other = await client.submit_job(
                    "sales", kind="tune", tenant="globex",
                    budget_fraction=0.12, variant="dtac-none",
                )
                await client.wait_job(acme["id"])
                await client.wait_job(other["id"])
                acme_list = await client.jobs(tenant="acme")
                globex_list = await client.jobs(tenant="globex")
                nobody = await client.jobs(tenant="nobody")
                everyone = await client.jobs()
                snapshot = await client.job(acme["id"])
                return (acme, other, acme_list, globex_list,
                        nobody, everyone, snapshot)
            finally:
                await server.stop()

        (acme, other, acme_list, globex_list,
         nobody, everyone, snapshot) = run(scenario())
        assert [j["id"] for j in acme_list["jobs"]] == [acme["id"]]
        assert [j["id"] for j in globex_list["jobs"]] == [other["id"]]
        assert nobody["jobs"] == []
        listed = {j["id"] for j in everyone["jobs"]}
        assert {acme["id"], other["id"]} <= listed
        assert snapshot["tenant"] == "acme"
        assert snapshot["deadline_s"] == 600.0
        assert snapshot["retries"] == 2
        assert snapshot["retry_backoff"] == 0.1
        assert snapshot["state"] == "done"

    def test_stream_resumes_after_seq(self, http_inputs):
        db, wl = http_inputs

        async def scenario():
            service, server, client = await _boot(db, wl)
            try:
                job = await client.submit_job(
                    "sales", kind="tune",
                    budget_fraction=0.12, variant="dtac-none",
                )
                full = [e async for e in client.stream_events(job["id"])]
                tail = [
                    e async for e in
                    client.stream_events(job["id"], after=full[2]["seq"])
                ]
                return full, tail
            finally:
                await server.stop()

        full, tail = run(scenario())
        assert tail == full[3:]

    def test_cancel_over_http(self, http_inputs):
        db, wl = http_inputs

        async def scenario():
            service, server, client = await _boot(db, wl)
            try:
                job = await client.submit_job(
                    "sales", kind="tune",
                    budget_fraction=0.12, variant="dtac-none",
                )
                # Cancel at the second progress event, mid-run.
                seen = 0
                async for event in client.stream_events(job["id"]):
                    if event["event"] in ("phase", "greedy_step",
                                          "sweep"):
                        seen += 1
                        if seen == 2:
                            await client.cancel_job(job["id"])
                final = await client.wait_job(job["id"])
                return final
            finally:
                await server.stop()

        final = run(scenario())
        assert final["state"] == "cancelled"

    def test_jobs_error_mapping(self, http_inputs):
        db, wl = http_inputs

        async def scenario():
            service, server, client = await _boot(db, wl)
            out = {}
            try:
                for label, coro in [
                    ("missing_job", client.job("job-999999")),
                    ("missing_job_cancel",
                     client.cancel_job("job-999999")),
                    ("bad_kind", client.submit_job(
                        "sales", kind="estimate_size")),
                    ("bad_context", client.submit_job(
                        "nope", kind="tune", budget_fraction=0.1)),
                ]:
                    with pytest.raises(ServiceHTTPError) as err:
                        await coro
                    out[label] = err.value.status
                try:
                    await client._request(
                        "GET", "/v1/jobs/job-1/bogus"
                    )
                except ServiceHTTPError as exc:
                    out["bad_action"] = exc.status
                try:
                    await client._request("PUT", "/v1/jobs")
                except ServiceHTTPError as exc:
                    out["bad_method"] = exc.status
                return out
            finally:
                await server.stop()

        statuses = run(scenario())
        assert statuses["missing_job"] == 404
        assert statuses["missing_job_cancel"] == 404
        assert statuses["bad_kind"] == 400
        assert statuses["bad_context"] == 400
        assert statuses["bad_action"] == 404
        assert statuses["bad_method"] == 405

    def test_stream_for_missing_job_is_404(self, http_inputs):
        db, wl = http_inputs

        async def scenario():
            service, server, client = await _boot(db, wl)
            try:
                with pytest.raises(ServiceHTTPError) as err:
                    async for _ in client.stream_events("job-999999"):
                        pass
                return err.value.status
            finally:
                await server.stop()

        assert run(scenario()) == 404


class TestHTTPBackpressure:
    def test_queue_full_returns_503(self, http_inputs):
        """A saturated service answers 503 (with Retry-After) instead of
        parking connections, and recovers once the queue drains."""
        db, wl = http_inputs

        async def scenario():
            service, server, client = await _boot(db, wl, max_pending=1)
            context = service.contexts["sales"]
            started = threading.Event()
            release = threading.Event()
            original = context.run_whatif_cost

            def blocking(payload):
                started.set()
                assert release.wait(30)
                return original(payload)

            context.run_whatif_cost = blocking
            try:
                blocked = asyncio.ensure_future(
                    client.whatif_cost("sales", statement_index=0)
                )
                await asyncio.get_running_loop().run_in_executor(
                    None, started.wait, 30
                )
                filler = asyncio.ensure_future(
                    client.whatif_cost("sales", statement_index=1)
                )
                await asyncio.sleep(0.2)
                with pytest.raises(ServiceHTTPError) as err:
                    await client.whatif_cost("sales", statement_index=2)
                release.set()
                answers = await asyncio.gather(blocked, filler)
                again = await client.whatif_cost(
                    "sales", statement_index=2
                )
                return err.value, answers, again
            finally:
                context.run_whatif_cost = original
                await server.stop()

        err, answers, again = run(scenario())
        assert err.status == 503
        assert err.retryable
        assert len(answers) == 2
        assert again["total"] > 0
