"""Worker scale-out over the shared job journal.

The contract under test (see ``repro.service.worker``): workers claim
queued jobs through ``O_EXCL`` lease files (exactly one winner), skip
leased and cancel-marked jobs, journal the same running/events/result/
terminal sequence the in-process manager would (seq numbers continuing
the coordinator's queued event), honor cross-process cancel markers at
the next progress event, and release their lease when done.  A
dispatch-only coordinator folds the workers' journaled records back
into its live records, so polling/streaming clients cannot tell a
worker-executed job from a local one — and the result is byte-identical
to a sequential ``tune()``.
"""

import asyncio

import pytest

from repro.advisor.advisor import tune
from repro.datasets.sales import sales_database, sales_workload
from repro.service import (
    AdvisorService,
    JobWorker,
    serialize_result,
)
from repro.service.jobs import JobManager
from repro.service.journal import JobJournal
from repro.service.scheduler import ContextScheduler


def run(coro):
    return asyncio.run(coro)


class StubService:
    """The worker-facing slice of AdvisorService: contexts, a journal,
    a synchronous ``_execute``, and cache persistence (a no-op here)."""

    def __init__(self, journal, fail=False):
        self.contexts = {"alpha": object(), "beta": object()}
        self.started = True
        self._closing = False
        self.max_pending = 64
        self.scheduler = ContextScheduler(workers=1, max_lanes=2)
        self.journal = journal
        self.fail = fail
        #: job id to drop a cancel marker for mid-execution, so the
        #: next progress event observes it (cross-process cancel).
        self.cancel_target = None
        self.executed = []
        self.saved = 0
        self.jobs = JobManager(self, journal=journal,
                               execute_jobs=False)

    def _execute(self, kind, context, payload, lane=None, progress=None):
        if self.cancel_target is not None:
            self.journal.request_cancel(self.cancel_target)
        if progress is not None:
            progress({"event": "phase", "phase": "work"})
        if self.fail:
            raise ValueError("boom")
        self.executed.append(payload.get("job"))
        return {"ok": True, "payload": payload}

    def save_caches(self):
        self.saved += 1

    def shutdown(self):
        self.scheduler.shutdown()
        self.journal.close()


def make_coordinator(tmp_path):
    journal = JobJournal(str(tmp_path), "coordinator")
    return StubService(journal)


def make_worker(tmp_path, writer, **kwargs):
    journal = JobJournal(str(tmp_path), writer)
    service = StubService(journal, **kwargs)
    return service, JobWorker(service, poll_interval=0.01)


class TestClaimProtocol:
    def test_two_workers_claim_disjoint_jobs(self, tmp_path, capsys):
        async def scenario():
            coordinator = make_coordinator(tmp_path)
            svc_a, worker_a = make_worker(tmp_path, "worker-a")
            svc_b, worker_b = make_worker(tmp_path, "worker-b")
            try:
                records = [
                    coordinator.jobs.submit("tune", "alpha",
                                            {"job": f"j{i}"})
                    for i in range(4)
                ]
                assert all(r.external for r in records)
                claims = {"worker-a": [], "worker-b": []}
                for _ in range(2):
                    claims["worker-a"].append(worker_a.run_once())
                    claims["worker-b"].append(worker_b.run_once())
                # Nothing left to claim.
                assert worker_a.run_once() is None
                # The coordinator folds the workers' records.
                coordinator.jobs.apply_external(
                    coordinator.journal.refresh())
                return records, claims, \
                    worker_a.stats(), worker_b.stats()
            finally:
                coordinator.shutdown()
                svc_a.shutdown()
                svc_b.shutdown()

        records, claims, stats_a, stats_b = run(scenario())
        claimed = claims["worker-a"] + claims["worker-b"]
        assert sorted(claimed) == sorted(r.id for r in records)
        assert stats_a["executed"]["done"] == 2
        assert stats_b["executed"]["done"] == 2
        for record in records:
            assert record.state == "done"
            assert record.result["ok"] is True
            assert [e["seq"] for e in record.events] == \
                list(range(1, len(record.events) + 1))
            states = [e["state"] for e in record.events
                      if e["event"] == "state"]
            assert states == ["queued", "running", "done"]
        # The CI smoke greps this exact line.
        out = capsys.readouterr().out
        for worker_id in ("worker-a", "worker-b"):
            assert f"worker {worker_id}: claimed job-" in out

    def test_leased_and_cancelled_jobs_are_skipped(self, tmp_path):
        async def scenario():
            coordinator = make_coordinator(tmp_path)
            svc, worker = make_worker(tmp_path, "worker-a")
            try:
                held = coordinator.jobs.submit("tune", "alpha",
                                               {"job": "held"})
                cancelled = coordinator.jobs.submit(
                    "tune", "alpha", {"job": "cancelled"})
                free = coordinator.jobs.submit("tune", "alpha",
                                               {"job": "free"})
                # Another process holds a lease on the first job; the
                # coordinator cancels the second (marker + eager-resolve
                # is suppressed only once a lease exists, so this one
                # resolves eagerly and leaves a marker).
                other = JobJournal(str(tmp_path), "worker-z")
                assert other.claim(held.id)
                coordinator.jobs.cancel(cancelled.id)
                assert worker.run_once() == free.id
                assert worker.run_once() is None
                other.release(held.id)
                other.close()
                assert worker.run_once() == held.id
                return svc.executed
            finally:
                coordinator.shutdown()
                svc.shutdown()

        assert run(scenario()) == ["free", "held"]

    def test_worker_releases_lease_and_saves_caches(self, tmp_path):
        async def scenario():
            coordinator = make_coordinator(tmp_path)
            svc, worker = make_worker(tmp_path, "worker-a")
            try:
                record = coordinator.jobs.submit("tune", "alpha",
                                                 {"job": "j"})
                assert worker.run_once() == record.id
                return svc.journal.lease_info(record.id), svc.saved
            finally:
                coordinator.shutdown()
                svc.shutdown()

        lease, saved = run(scenario())
        assert lease is None
        assert saved == 1


class TestWorkerExecutionOutcomes:
    def test_failure_is_journaled_with_error(self, tmp_path):
        async def scenario():
            coordinator = make_coordinator(tmp_path)
            svc, worker = make_worker(tmp_path, "worker-a", fail=True)
            try:
                record = coordinator.jobs.submit("tune", "alpha",
                                                 {"job": "j"})
                worker.run_once()
                coordinator.jobs.apply_external(
                    coordinator.journal.refresh())
                return record.snapshot()
            finally:
                coordinator.shutdown()
                svc.shutdown()

        snapshot = run(scenario())
        assert snapshot["state"] == "failed"
        assert "boom" in snapshot["error"]

    def test_cancel_marker_unwinds_mid_run(self, tmp_path):
        """A cancel landing while the worker executes is observed at
        the next progress event — same one-step latency bound as the
        in-process path."""

        async def scenario():
            coordinator = make_coordinator(tmp_path)
            svc, worker = make_worker(tmp_path, "worker-a")
            try:
                record = coordinator.jobs.submit("tune", "alpha",
                                                 {"job": "j"})
                svc.cancel_target = record.id
                worker.run_once()
                coordinator.jobs.apply_external(
                    coordinator.journal.refresh())
                return record.snapshot(), svc.executed, \
                    svc.journal.cancel_requested(record.id)
            finally:
                coordinator.shutdown()
                svc.shutdown()

        snapshot, executed, marker = run(scenario())
        assert snapshot["state"] == "cancelled"
        assert executed == []  # unwound before completing
        assert marker is False  # marker cleaned up

    def test_run_forever_bounds(self, tmp_path):
        async def scenario():
            coordinator = make_coordinator(tmp_path)
            svc, worker = make_worker(tmp_path, "worker-a")
            try:
                for i in range(3):
                    coordinator.jobs.submit("tune", "alpha",
                                            {"job": f"j{i}"})
                done = worker.run_forever(max_jobs=2)
                drained = worker.run_forever(idle_timeout=0.05)
                return done, drained
            finally:
                coordinator.shutdown()
                svc.shutdown()

        done, drained = run(scenario())
        assert done == 2
        assert drained == 1


@pytest.fixture(scope="module")
def worker_inputs():
    db = sales_database(scale=0.02)
    wl = sales_workload(db)
    return db, wl


class TestEndToEndByteIdentity:
    def test_dispatch_only_coordinator_plus_worker_matches_tune(
            self, worker_inputs, tmp_path):
        """Full path: a dispatch-only coordinator journals the job, a
        real worker claims and executes it, the coordinator's poll task
        folds the records, and the streamed job is byte-identical to a
        sequential ``tune()``."""
        db, wl = worker_inputs

        async def scenario():
            coordinator = AdvisorService(
                cache_dir=str(tmp_path / "shared"),
                execute_jobs=False, poll_interval=0.05,
            )
            coordinator.register("sales", db, wl)
            await coordinator.start()
            worker_service = AdvisorService(
                cache_dir=str(tmp_path / "shared"),
                journal_writer="worker-a",
            )
            worker_service.register("sales", db, wl)
            worker = JobWorker(worker_service, poll_interval=0.05)
            try:
                record = coordinator.submit_job(
                    "tune", "sales",
                    dict(budget_fraction=0.12, variant="dtac-none"),
                )
                assert record.external is True
                claimed = await asyncio.get_running_loop() \
                    .run_in_executor(None, worker.run_once)
                assert claimed == record.id
                events = []
                async for event in coordinator.job_events(record.id):
                    events.append(event)
                return record.snapshot(), events
            finally:
                worker_service.scheduler.shutdown()
                worker_service.journal.close()
                await coordinator.stop()

        snapshot, events = run(scenario())
        assert snapshot["state"] == "done"
        assert [e["seq"] for e in events] == \
            list(range(1, len(events) + 1))
        states = [e["state"] for e in events if e["event"] == "state"]
        assert states == ["queued", "running", "done"]
        assert any(e["event"] == "greedy_step" for e in events)
        direct = tune(db, wl, db.total_data_bytes() * 0.12,
                      variant="dtac-none")
        assert snapshot["result"]["result"] == \
            serialize_result(direct)["result"]
