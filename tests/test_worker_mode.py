"""Worker scale-out over the shared job journal.

The contract under test (see ``repro.service.worker``): workers claim
queued jobs through ``O_EXCL`` lease files (exactly one winner), skip
leased and cancel-marked jobs, journal the same running/events/result/
terminal sequence the in-process manager would (seq numbers continuing
the coordinator's queued event), honor cross-process cancel markers at
the next progress event, and release their lease when done.  A
dispatch-only coordinator folds the workers' journaled records back
into its live records, so polling/streaming clients cannot tell a
worker-executed job from a local one — and the result is byte-identical
to a sequential ``tune()``.
"""

import asyncio

import pytest

from repro.api import tune
from repro.datasets.sales import sales_database, sales_workload
from repro.service import (
    AdvisorService,
    JobWorker,
    serialize_result,
)
from repro.service.jobs import JobManager
from repro.service.journal import JobJournal
from repro.service.scheduler import ContextScheduler


def run(coro):
    return asyncio.run(coro)


class StubService:
    """The worker-facing slice of AdvisorService: contexts, a journal,
    a synchronous ``_execute``, and cache persistence (a no-op here)."""

    def __init__(self, journal, fail=False, **manager_kwargs):
        self.contexts = {"alpha": object(), "beta": object()}
        self.started = True
        self._closing = False
        self.max_pending = 64
        self.scheduler = ContextScheduler(workers=1, max_lanes=2)
        self.journal = journal
        self.fail = fail
        #: job id to drop a cancel marker for mid-execution, so the
        #: next progress event observes it (cross-process cancel).
        self.cancel_target = None
        self.executed = []
        self.saved = 0
        self.jobs = JobManager(self, journal=journal,
                               execute_jobs=False, **manager_kwargs)

    def _execute(self, kind, context, payload, lane=None, progress=None):
        if self.cancel_target is not None:
            self.journal.request_cancel(self.cancel_target)
        if progress is not None:
            progress({"event": "phase", "phase": "work"})
        if self.fail:
            raise ValueError("boom")
        self.executed.append(payload.get("job"))
        return {"ok": True, "payload": payload}

    def save_caches(self):
        self.saved += 1

    def shutdown(self):
        self.scheduler.shutdown()
        self.journal.close()


def make_coordinator(tmp_path):
    journal = JobJournal(str(tmp_path), "coordinator")
    return StubService(journal)


def make_worker(tmp_path, writer, **kwargs):
    journal = JobJournal(str(tmp_path), writer)
    service = StubService(journal, **kwargs)
    return service, JobWorker(service, poll_interval=0.01)


class TestClaimProtocol:
    def test_two_workers_claim_disjoint_jobs(self, tmp_path, capsys):
        async def scenario():
            coordinator = make_coordinator(tmp_path)
            svc_a, worker_a = make_worker(tmp_path, "worker-a")
            svc_b, worker_b = make_worker(tmp_path, "worker-b")
            try:
                records = [
                    coordinator.jobs.submit("tune", "alpha",
                                            {"job": f"j{i}"})
                    for i in range(4)
                ]
                assert all(r.external for r in records)
                claims = {"worker-a": [], "worker-b": []}
                for _ in range(2):
                    claims["worker-a"].append(worker_a.run_once())
                    claims["worker-b"].append(worker_b.run_once())
                # Nothing left to claim.
                assert worker_a.run_once() is None
                # The coordinator folds the workers' records.
                coordinator.jobs.apply_external(
                    coordinator.journal.refresh())
                return records, claims, \
                    worker_a.stats(), worker_b.stats()
            finally:
                coordinator.shutdown()
                svc_a.shutdown()
                svc_b.shutdown()

        records, claims, stats_a, stats_b = run(scenario())
        claimed = claims["worker-a"] + claims["worker-b"]
        assert sorted(claimed) == sorted(r.id for r in records)
        assert stats_a["executed"]["done"] == 2
        assert stats_b["executed"]["done"] == 2
        for record in records:
            assert record.state == "done"
            assert record.result["ok"] is True
            assert [e["seq"] for e in record.events] == \
                list(range(1, len(record.events) + 1))
            states = [e["state"] for e in record.events
                      if e["event"] == "state"]
            assert states == ["queued", "running", "done"]
        # The CI smoke greps this exact line.
        out = capsys.readouterr().out
        for worker_id in ("worker-a", "worker-b"):
            assert f"worker {worker_id}: claimed job-" in out

    def test_leased_and_cancelled_jobs_are_skipped(self, tmp_path):
        async def scenario():
            coordinator = make_coordinator(tmp_path)
            svc, worker = make_worker(tmp_path, "worker-a")
            try:
                held = coordinator.jobs.submit("tune", "alpha",
                                               {"job": "held"})
                cancelled = coordinator.jobs.submit(
                    "tune", "alpha", {"job": "cancelled"})
                free = coordinator.jobs.submit("tune", "alpha",
                                               {"job": "free"})
                # Another process holds a lease on the first job; the
                # coordinator cancels the second (marker + eager-resolve
                # is suppressed only once a lease exists, so this one
                # resolves eagerly and leaves a marker).
                other = JobJournal(str(tmp_path), "worker-z")
                assert other.claim(held.id)
                coordinator.jobs.cancel(cancelled.id)
                assert worker.run_once() == free.id
                assert worker.run_once() is None
                other.release(held.id)
                other.close()
                assert worker.run_once() == held.id
                return svc.executed
            finally:
                coordinator.shutdown()
                svc.shutdown()

        assert run(scenario()) == ["free", "held"]

    def test_worker_releases_lease_and_saves_caches(self, tmp_path):
        async def scenario():
            coordinator = make_coordinator(tmp_path)
            svc, worker = make_worker(tmp_path, "worker-a")
            try:
                record = coordinator.jobs.submit("tune", "alpha",
                                                 {"job": "j"})
                assert worker.run_once() == record.id
                return svc.journal.lease_info(record.id), svc.saved
            finally:
                coordinator.shutdown()
                svc.shutdown()

        lease, saved = run(scenario())
        assert lease is None
        assert saved == 1


class TestWorkerExecutionOutcomes:
    def test_failure_is_journaled_with_error(self, tmp_path):
        async def scenario():
            coordinator = make_coordinator(tmp_path)
            svc, worker = make_worker(tmp_path, "worker-a", fail=True)
            try:
                record = coordinator.jobs.submit("tune", "alpha",
                                                 {"job": "j"})
                worker.run_once()
                coordinator.jobs.apply_external(
                    coordinator.journal.refresh())
                return record.snapshot()
            finally:
                coordinator.shutdown()
                svc.shutdown()

        snapshot = run(scenario())
        assert snapshot["state"] == "failed"
        assert "boom" in snapshot["error"]

    def test_cancel_marker_unwinds_mid_run(self, tmp_path):
        """A cancel landing while the worker executes is observed at
        the next progress event — same one-step latency bound as the
        in-process path."""

        async def scenario():
            coordinator = make_coordinator(tmp_path)
            svc, worker = make_worker(tmp_path, "worker-a")
            try:
                record = coordinator.jobs.submit("tune", "alpha",
                                                 {"job": "j"})
                svc.cancel_target = record.id
                worker.run_once()
                coordinator.jobs.apply_external(
                    coordinator.journal.refresh())
                return record.snapshot(), svc.executed, \
                    svc.journal.cancel_requested(record.id)
            finally:
                coordinator.shutdown()
                svc.shutdown()

        snapshot, executed, marker = run(scenario())
        assert snapshot["state"] == "cancelled"
        assert executed == []  # unwound before completing
        assert marker is False  # marker cleaned up

    def test_cancel_landing_in_claim_window_resolves_terminally(
            self, tmp_path):
        """The cancel/claim race: the coordinator's cancel sees our
        fresh lease and defers (marker only, no eager resolve); the
        worker's post-claim verify must then journal the terminal state
        itself — abandoning silently would strand the job ``queued``
        forever, since the claim scan skips cancel-marked jobs."""

        async def scenario():
            coordinator = make_coordinator(tmp_path)
            svc, worker = make_worker(tmp_path, "worker-a")
            try:
                record = coordinator.jobs.submit("tune", "alpha",
                                                 {"job": "j"})
                real_claim = worker.journal.claim

                def claim_then_cancel(job_id):
                    won = real_claim(job_id)
                    if won:  # cancel lands inside the claim window
                        coordinator.jobs.cancel(record.id)
                    return won

                worker.journal.claim = claim_then_cancel
                assert worker.run_once() is None  # nothing executed
                coordinator.jobs.apply_external(
                    coordinator.journal.refresh())
                return (record.snapshot(), svc.executed,
                        coordinator.journal.cancel_requested(record.id),
                        coordinator.journal.lease_info(record.id),
                        worker.stats())
            finally:
                coordinator.shutdown()
                svc.shutdown()

        snapshot, executed, marker, lease, stats = run(scenario())
        assert snapshot["state"] == "cancelled"
        assert executed == []  # never ran
        assert marker is False  # marker cleaned up
        assert lease is None  # lease released
        assert stats["executed"]["cancelled"] == 1
        # A later journal replay agrees: terminal, gap-free events.
        replayed = JobJournal(str(tmp_path), "reader").replay()
        image = replayed[snapshot["id"]]
        assert image.state == "cancelled"
        assert image.seq_gapless()

    def test_run_forever_bounds(self, tmp_path):
        async def scenario():
            coordinator = make_coordinator(tmp_path)
            svc, worker = make_worker(tmp_path, "worker-a")
            try:
                for i in range(3):
                    coordinator.jobs.submit("tune", "alpha",
                                            {"job": f"j{i}"})
                done = worker.run_forever(max_jobs=2)
                drained = worker.run_forever(idle_timeout=0.05)
                return done, drained
            finally:
                coordinator.shutdown()
                svc.shutdown()

        done, drained = run(scenario())
        assert done == 2
        assert drained == 1


class TestClaimOrdering:
    """Workers apply the same dispatch policy as the coordinator's
    turnstile: strict priority lanes, weighted round-robin across
    tenants inside a lane, submission order within a tenant — not
    plain FIFO over job ids."""

    def test_priority_then_tenant_round_robin(self, tmp_path):
        async def scenario():
            coordinator = make_coordinator(tmp_path)
            svc, worker = make_worker(tmp_path, "worker-a")
            try:
                ids = {}
                for name, tenant, priority in (
                    ("a-norm-1", "a", "normal"),
                    ("a-norm-2", "a", "normal"),
                    ("b-high", "b", "high"),
                    ("a-low", "a", "low"),
                    ("b-norm", "b", "normal"),
                ):
                    ids[coordinator.jobs.submit(
                        "tune", "alpha", {"job": name},
                        tenant=tenant, priority=priority).id] = name
                claimed = []
                while True:
                    job_id = worker.run_once()
                    if job_id is None:
                        break
                    claimed.append(ids[job_id])
                return claimed
            finally:
                coordinator.shutdown()
                svc.shutdown()

        # high first; then the normal lane rotates a, b, a; low last.
        assert run(scenario()) == [
            "b-high", "a-norm-1", "b-norm", "a-norm-2", "a-low",
        ]

    def test_tenant_weights_grant_consecutive_claims(self, tmp_path):
        async def scenario():
            journal = JobJournal(str(tmp_path), "coordinator")
            coordinator = StubService(journal,
                                      tenant_weights={"a": 2})
            worker_journal = JobJournal(str(tmp_path), "worker-a")
            worker_svc = StubService(worker_journal,
                                     tenant_weights={"a": 2})
            worker = JobWorker(worker_svc, poll_interval=0.01)
            try:
                ids = {}
                for name, tenant in (("a1", "a"), ("a2", "a"),
                                     ("a3", "a"), ("b1", "b"),
                                     ("b2", "b")):
                    ids[coordinator.jobs.submit(
                        "tune", "alpha", {"job": name},
                        tenant=tenant).id] = name
                claimed = []
                while True:
                    job_id = worker.run_once()
                    if job_id is None:
                        break
                    claimed.append(ids[job_id])
                return claimed
            finally:
                coordinator.shutdown()
                worker_svc.shutdown()

        # Weight 2 gives tenant a two consecutive claims per visit.
        assert run(scenario()) == ["a1", "a2", "b1", "a3", "b2"]


class TestCoordinatorPollResilience:
    def test_poll_task_survives_transient_refresh_errors(
            self, tmp_path):
        """A transient OSError from the shared filesystem must not
        kill the poll task — it is the only thing folding worker
        progress into the coordinator's records."""

        async def scenario():
            service = AdvisorService(cache_dir=str(tmp_path / "cache"),
                                     poll_interval=0.01)
            await service.start()
            try:
                calls = {"n": 0}
                real = service.journal.refresh

                def flaky():
                    calls["n"] += 1
                    if calls["n"] == 1:
                        raise OSError("shared fs hiccup")
                    return real()

                service.journal.refresh = flaky
                await asyncio.sleep(0.2)
                return calls["n"], service._poll_task.done()
            finally:
                await service.stop()

        calls, poll_dead = run(scenario())
        assert calls >= 2  # kept polling past the failure
        assert poll_dead is False


@pytest.fixture(scope="module")
def worker_inputs():
    db = sales_database(scale=0.02)
    wl = sales_workload(db)
    return db, wl


class TestEndToEndByteIdentity:
    def test_dispatch_only_coordinator_plus_worker_matches_tune(
            self, worker_inputs, tmp_path):
        """Full path: a dispatch-only coordinator journals the job, a
        real worker claims and executes it, the coordinator's poll task
        folds the records, and the streamed job is byte-identical to a
        sequential ``tune()``."""
        db, wl = worker_inputs

        async def scenario():
            coordinator = AdvisorService(
                cache_dir=str(tmp_path / "shared"),
                execute_jobs=False, poll_interval=0.05,
            )
            coordinator.register("sales", db, wl)
            await coordinator.start()
            worker_service = AdvisorService(
                cache_dir=str(tmp_path / "shared"),
                journal_writer="worker-a",
            )
            worker_service.register("sales", db, wl)
            worker = JobWorker(worker_service, poll_interval=0.05)
            try:
                record = coordinator.submit_job(
                    "tune", "sales",
                    dict(budget_fraction=0.12, variant="dtac-none"),
                )
                assert record.external is True
                claimed = await asyncio.get_running_loop() \
                    .run_in_executor(None, worker.run_once)
                assert claimed == record.id
                events = []
                async for event in coordinator.job_events(record.id):
                    events.append(event)
                return record.snapshot(), events
            finally:
                worker_service.scheduler.shutdown()
                worker_service.journal.close()
                await coordinator.stop()

        snapshot, events = run(scenario())
        assert snapshot["state"] == "done"
        assert [e["seq"] for e in events] == \
            list(range(1, len(events) + 1))
        states = [e["state"] for e in events if e["event"] == "state"]
        assert states == ["queued", "running", "done"]
        assert any(e["event"] == "greedy_step" for e in events)
        direct = tune(db, wl, db.total_data_bytes() * 0.12,
                      variant="dtac-none")
        assert snapshot["result"]["result"] == \
            serialize_result(direct)["result"]
