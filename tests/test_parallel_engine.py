"""Tests for the parallel candidate-evaluation engine: deterministic
ordering, the workers=1 sequential fallback, and — the core guarantee —
byte-identical advisor recommendations against the sequential path."""

import pytest

from repro.advisor import AdvisorOptions, TuningAdvisor, tune
from repro.datasets import sales_database, sales_workload
from repro.parallel import ParallelEngine
from repro.parallel import engine as engine_mod
from repro.parallel.engine import (
    MIN_TASKS_PER_WORKER,
    effective_cpu_count,
    fork_available,
)


def _square_task(context, item):
    return (context["offset"] + item) ** 2


def _failing_task(context, item):
    if item == 3:
        raise ValueError("boom")
    return item


class TestEngineMap:
    def test_sequential_outside_session(self):
        engine = ParallelEngine(workers=4)
        ctx = {"offset": 1}
        assert engine.map(_square_task, range(5), ctx) == [
            1, 4, 9, 16, 25
        ]
        assert engine.parallel_maps == 0
        assert engine.sequential_maps == 1

    def test_workers_one_never_forks(self):
        engine = ParallelEngine(workers=1)
        assert not engine.parallel
        with engine.session("ctx") as e:
            assert not e.in_session
            assert e.map(_square_task, [1, 2], {"offset": 0}) == [1, 4]
        assert engine.parallel_maps == 0

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_parallel_map_preserves_order(self):
        engine = ParallelEngine(workers=2, force_parallel=True)
        ctx = {"offset": 2}
        with engine.session(ctx):
            result = engine.map(_square_task, range(8), ctx)
        assert result == [(2 + i) ** 2 for i in range(8)]
        assert engine.parallel_maps == 1
        assert engine.tasks_dispatched == 8

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_other_context_falls_back_to_sequential(self):
        engine = ParallelEngine(workers=2, force_parallel=True)
        session_ctx = {"offset": 0}
        other_ctx = {"offset": 10}
        with engine.session(session_ctx):
            result = engine.map(_square_task, [1, 2], other_ctx)
        assert result == [121, 144]
        assert engine.parallel_maps == 0

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_worker_exception_propagates(self):
        engine = ParallelEngine(workers=2, force_parallel=True)
        ctx = object()
        with engine.session(ctx):
            with pytest.raises(ValueError, match="boom"):
                engine.map(_failing_task, [1, 2, 3, 4], ctx)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_failing_task_tears_down_and_recovers_pool(self):
        """A task exception mid-map must not leak the pool: the old pool
        (with its queued payloads) is shut down, and the session gets a
        fresh pool so later maps still run in parallel."""
        engine = ParallelEngine(workers=2, force_parallel=True)
        ctx = {"offset": 0}
        with engine.session(ctx):
            old_pool = engine._pool
            with pytest.raises(ValueError, match="boom"):
                engine.map(_failing_task, [1, 2, 3, 4], ctx)
            # Old pool refuses new work: it was shut down, not leaked.
            with pytest.raises(RuntimeError):
                old_pool.submit(print)
            assert engine._pool is not None
            assert engine._pool is not old_pool
            # The session recovered: the replacement pool fans out.
            assert engine.map(_square_task, range(4), ctx) == [
                0, 1, 4, 9
            ]
            assert engine.parallel_maps == 1
        # Session exit tears the replacement pool down as usual.
        assert not engine.in_session

    def test_nested_session_is_noop(self):
        engine = ParallelEngine(workers=2, force_parallel=True)
        if not engine.parallel:
            pytest.skip("needs fork")
        outer = {"offset": 0}
        with engine.session(outer):
            with engine.session({"offset": 5}):
                # Inner context postdates the fork: must run sequentially.
                assert engine.map(_square_task, [1, 2], {"offset": 5}) == [
                    36, 49
                ]
            # The outer pool is still usable afterwards.
            assert engine.map(_square_task, [3, 4], outer) == [9, 16]

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            ParallelEngine(workers=-1)
        assert ParallelEngine(workers=0).workers >= 1


class TestAutoDegrade:
    """The headline fix: a multi-worker engine on a box with one
    effective CPU (or batches too small to amortize fan-out) must not
    pay fork+pickle for negative speedup — it degrades to the
    sequential path unless explicitly forced."""

    def test_one_effective_cpu_degrades(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "effective_cpu_count", lambda: 1)
        engine = ParallelEngine(workers=2)
        assert not engine.parallel
        stats = engine.stats()
        assert stats["degraded_sequential"] is True
        assert stats["force_parallel"] is False

    def test_many_effective_cpus_stay_parallel(self, monkeypatch):
        if not fork_available():
            pytest.skip("needs fork")
        monkeypatch.setattr(engine_mod, "effective_cpu_count", lambda: 8)
        engine = ParallelEngine(workers=2)
        assert engine.parallel
        assert engine.stats()["degraded_sequential"] is False

    def test_force_parallel_overrides_cpu_degrade(self, monkeypatch):
        if not fork_available():
            pytest.skip("needs fork")
        monkeypatch.setattr(engine_mod, "effective_cpu_count", lambda: 1)
        engine = ParallelEngine(workers=2, force_parallel=True)
        assert engine.parallel

    def test_force_parallel_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        assert ParallelEngine(workers=2).force_parallel is True
        monkeypatch.delenv("REPRO_FORCE_PARALLEL")
        assert ParallelEngine(workers=2).force_parallel is False

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_small_batch_runs_sequentially(self, monkeypatch):
        """Below workers * MIN_TASKS_PER_WORKER tasks the per-task
        dispatch overhead beats the fan-out: stay in the parent."""
        monkeypatch.setattr(engine_mod, "effective_cpu_count", lambda: 8)
        engine = ParallelEngine(workers=2)
        floor = 2 * MIN_TASKS_PER_WORKER
        ctx = {"offset": 0}
        with engine.session(ctx):
            engine.map(_square_task, range(floor - 1), ctx)
            assert engine.parallel_maps == 0
            assert engine.sequential_maps == 1
            engine.map(_square_task, range(floor), ctx)
            assert engine.parallel_maps == 1

    def test_effective_cpu_count_positive(self):
        assert effective_cpu_count() >= 1


@pytest.mark.skipif(not fork_available(), reason="needs fork")
class TestSessionReuse:
    def test_same_context_reuses_pool(self):
        """Back-to-back sessions with the same context share one fork:
        the second session's maps run on the first session's workers."""
        engine = ParallelEngine(workers=2, force_parallel=True)
        ctx = {"offset": 0}
        try:
            with engine.session(ctx):
                assert engine.map(_square_task, [1, 2, 3], ctx) == [1, 4, 9]
            assert not engine.in_session
            with engine.session(ctx):
                assert engine.map(_square_task, [4, 5], ctx) == [16, 25]
            assert engine.pools_forked == 1
            assert engine.pools_reused == 1
        finally:
            engine.shutdown()

    def test_mark_dirty_forces_refork(self):
        engine = ParallelEngine(workers=2, force_parallel=True)
        ctx = {"offset": 0}
        try:
            with engine.session(ctx):
                engine.map(_square_task, [1, 2], ctx)
            engine.mark_dirty()
            with engine.session(ctx):
                engine.map(_square_task, [1, 2], ctx)
            assert engine.pools_forked == 2
            assert engine.pools_reused == 0
        finally:
            engine.shutdown()

    def test_stale_ok_session_survives_dirty_mark(self):
        """SampleCF-style sessions opt into stale worker state (their
        tasks depend only on fork-invariant samples)."""
        engine = ParallelEngine(workers=2, force_parallel=True)
        ctx = {"offset": 0}
        try:
            with engine.session(ctx):
                engine.map(_square_task, [1, 2], ctx)
            engine.mark_dirty()
            with engine.session(ctx, stale_ok=True):
                assert engine.map(_square_task, [3], ctx) == [9]
            assert engine.pools_forked == 1
            assert engine.pools_reused == 1
        finally:
            engine.shutdown()

    def test_different_context_reforks(self):
        engine = ParallelEngine(workers=2, force_parallel=True)
        try:
            first = {"offset": 0}
            second = {"offset": 1}
            with engine.session(first):
                engine.map(_square_task, [1, 2], first)
            with engine.session(second):
                assert engine.map(_square_task, [1, 2], second) == [4, 9]
            assert engine.pools_forked == 2
        finally:
            engine.shutdown()

    def test_shutdown_releases_then_next_session_reforks(self):
        engine = ParallelEngine(workers=2, force_parallel=True)
        ctx = {"offset": 0}
        with engine.session(ctx):
            engine.map(_square_task, [1, 2], ctx)
        engine.shutdown()
        with engine.session(ctx):
            assert engine.map(_square_task, [2, 3], ctx) == [4, 9]
        assert engine.pools_forked == 2
        engine.shutdown()

    def test_keep_alive_false_restores_fork_per_session(self):
        engine = ParallelEngine(workers=2, keep_alive=False,
                                force_parallel=True)
        ctx = {"offset": 0}
        with engine.session(ctx):
            engine.map(_square_task, [1, 2], ctx)
        with engine.session(ctx):
            engine.map(_square_task, [1, 2], ctx)
        assert engine.pools_forked == 2
        assert engine.pools_reused == 0


@pytest.fixture(scope="module")
def tuning_inputs():
    db = sales_database(scale=0.04)
    wl = sales_workload(db)
    return db, wl, db.total_data_bytes() * 0.15


class TestParallelAdvisor:
    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_matches_sequential_byte_for_byte(self, tuning_inputs,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        db, wl, budget = tuning_inputs
        seq = tune(db, wl, budget, variant="dtac-both", workers=1)
        par = tune(db, wl, budget, variant="dtac-both", workers=2)
        assert par.configuration == seq.configuration
        assert par.final_cost == seq.final_cost
        assert par.base_cost == seq.base_cost
        assert par.consumed_bytes == seq.consumed_bytes
        assert par.steps == seq.steps
        assert par.engine_stats["parallel_maps"] > 0

    def test_workers_one_fallback_runs_sequentially(self, tuning_inputs):
        db, wl, budget = tuning_inputs
        result = tune(db, wl, budget, variant="dtac-none", workers=1)
        assert result.engine_stats["parallel_maps"] == 0
        assert result.engine_stats["tasks_dispatched"] == 0
        assert result.improvement >= 0

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_dta_run_reuses_one_pool_across_phases(self, tuning_inputs,
                                                   monkeypatch):
        """A compression-blind run adds no estimation state between
        candidate evaluation and enumeration, so one forked pool serves
        both phases (the old design paid a fork per phase)."""
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        db, wl, budget = tuning_inputs
        result = tune(db, wl, budget, variant="dta", workers=2)
        assert result.engine_stats["pools_forked"] == 1
        assert result.engine_stats["pools_reused"] >= 1

    def test_advisor_accepts_injected_engine(self, tuning_inputs):
        db, wl, budget = tuning_inputs
        engine = ParallelEngine(workers=1)
        advisor = TuningAdvisor(
            db, wl, AdvisorOptions(budget_bytes=budget), engine=engine
        )
        result = advisor.run()
        assert advisor.engine is engine
        assert result.engine_stats == engine.stats()
