"""The pluggable selection-algorithm framework: registry contract,
cross-algorithm determinism, budget compliance, and the anytime
algorithm's ``best_so_far`` cancel-early contract.

Determinism is the load-bearing invariant: every registered algorithm
must produce byte-identical recommendations run-to-run, across
PYTHONHASHSEED values, at workers 1 vs 2, and against cold vs warm
persistent cost caches — the same contract the golden canaries pin for
the default search, extended to the whole registry.
"""

import asyncio
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.advisor import (
    algorithms,
    get_variant,
    variant_names,
    variants,
)
from repro.advisor.advisor import AdvisorOptions, tune
from repro.advisor.algorithms import (
    GreedyBacktrackAlgorithm,
    SelectionAlgorithm,
)
from repro.advisor.enumeration import Enumerator
from repro.api import run_sweep
from repro.datasets.sales import sales_database, sales_workload
from repro.errors import AdvisorError, JobCancelled, ServiceError
from repro.service import AdvisorService, describe_algorithms

SRC = str(Path(__file__).resolve().parent.parent / "src")

ALL_ALGORITHMS = algorithms.names()


@pytest.fixture(scope="module")
def inputs():
    db = sales_database(scale=0.03)
    wl = sales_workload(db)
    return db, wl, db.total_data_bytes() * 0.15


def _digest(result):
    return (
        sorted(ix.display_name() for ix in result.configuration),
        result.base_cost,
        result.final_cost,
        result.consumed_bytes,
        result.steps,
    )


# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert ALL_ALGORITHMS == sorted(
            ["greedy-backtrack", "ibm", "relaxation", "anytime"]
        )
        assert algorithms.DEFAULT_ALGORITHM == "greedy-backtrack"
        assert (
            AdvisorOptions(budget_bytes=1.0).algorithm
            == algorithms.DEFAULT_ALGORITHM
        )

    def test_get_unknown_names_valid_set(self):
        with pytest.raises(AdvisorError) as err:
            algorithms.get("simulated-annealing")
        for name in ALL_ALGORITHMS:
            assert name in str(err.value)

    def test_tune_rejects_unknown_algorithm_before_any_work(self, inputs):
        db, wl, budget = inputs
        with pytest.raises(AdvisorError, match="choose from"):
            tune(db, wl, budget, algorithm="nope")

    def test_reregistering_name_is_an_error(self):
        class Impostor(SelectionAlgorithm):
            name = "greedy-backtrack"

        with pytest.raises(AdvisorError, match="already registered"):
            algorithms.register(Impostor)

    def test_register_requires_name(self):
        class Nameless(SelectionAlgorithm):
            pass

        with pytest.raises(AdvisorError, match="no registry name"):
            algorithms.register(Nameless)

    def test_enumerator_alias_is_the_default_algorithm(self):
        assert Enumerator is GreedyBacktrackAlgorithm
        assert (
            algorithms.get("greedy-backtrack") is GreedyBacktrackAlgorithm
        )

    def test_every_algorithm_has_metadata(self):
        for name, cls in algorithms.registered().items():
            assert cls.name == name
            assert cls.summary
            schema = cls.options_schema()
            assert "budget_bytes" in schema


# ----------------------------------------------------------------------
class TestDeterminismAndBudget:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_repeat_runs_identical_and_budget_respected(
        self, inputs, algorithm
    ):
        db, wl, budget = inputs
        first = tune(db, wl, budget, variant="dtac-both",
                     algorithm=algorithm)
        second = tune(db, wl, budget, variant="dtac-both",
                      algorithm=algorithm)
        assert _digest(first) == _digest(second)
        assert first.consumed_bytes <= budget + 1e-6
        assert first.final_cost <= first.base_cost

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_workers_do_not_move_results(self, inputs, algorithm):
        db, wl, budget = inputs
        sequential = tune(db, wl, budget, variant="dtac-both",
                          algorithm=algorithm, workers=1)
        parallel = tune(db, wl, budget, variant="dtac-both",
                        algorithm=algorithm, workers=2)
        assert _digest(sequential) == _digest(parallel)

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_cold_vs_warm_cost_cache_identical(
        self, inputs, algorithm, tmp_path
    ):
        db, wl, budget = inputs
        cache_dir = str(tmp_path / algorithm)
        cold = tune(db, wl, budget, variant="dtac-none",
                    algorithm=algorithm, cache_dir=cache_dir)
        warm = tune(db, wl, budget, variant="dtac-none",
                    algorithm=algorithm, cache_dir=cache_dir)
        assert _digest(cold) == _digest(warm)
        # The second run actually hit the persistent cost cache.
        assert warm.cost_cache_stats.get("hits", 0) > 0

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_delta_costing_does_not_move_results(self, inputs, algorithm):
        db, wl, budget = inputs
        on = tune(db, wl, budget, variant="dtac-both",
                  algorithm=algorithm, delta_costing=True)
        off = tune(db, wl, budget, variant="dtac-both",
                   algorithm=algorithm, delta_costing=False)
        assert _digest(on) == _digest(off)

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_stable_across_hashseeds(self, algorithm):
        """Recommendations must not leak set/dict iteration order:
        identical stdout digests from subprocesses with different
        PYTHONHASHSEED values."""
        script = f"""
from repro.api import tune
from repro.datasets.sales import sales_database, sales_workload

db = sales_database(scale=0.02)
wl = sales_workload(db)
budget = db.total_data_bytes() * 0.15
result = tune(db, wl, budget, variant="dtac-both",
              algorithm={algorithm!r})
names = sorted(ix.display_name() for ix in result.configuration)
print(repr((names, result.base_cost, result.final_cost,
            result.consumed_bytes, result.steps)))
"""
        a = _run_with_hashseed(script, "5")
        b = _run_with_hashseed(script, "54321")
        assert a == b

    def test_explicit_default_equals_implicit_default(self, inputs):
        """`algorithm="greedy-backtrack"` is exactly the historical
        path (the golden canaries pin the absolute bytes; this pins
        the equivalence)."""
        db, wl, budget = inputs
        implicit = tune(db, wl, budget, variant="dtac-both")
        explicit = tune(db, wl, budget, variant="dtac-both",
                        algorithm="greedy-backtrack")
        assert _digest(implicit) == _digest(explicit)


# ----------------------------------------------------------------------
class TestVariantRegistry:
    def test_specs_in_registration_order(self):
        specs = variants()
        assert [spec.name for spec in specs] == [
            "dta", "dtac-none", "dtac-skyline", "dtac-backtrack",
            "dtac-both",
        ]
        for spec in specs:
            assert spec.doc
        assert variant_names() == sorted(spec.name for spec in specs)

    def test_get_variant_unknown_names_valid_set(self):
        with pytest.raises(AdvisorError) as err:
            get_variant("dtac-everything")
        assert "dtac-both" in str(err.value)

    def test_advisor_options_extra_wins_on_conflict(self):
        spec = get_variant("dtac-both")
        options = spec.advisor_options(123.0, workers=2, algorithm="ibm")
        assert options.budget_bytes == 123.0
        assert options.workers == 2
        assert options.algorithm == "ibm"

    def test_legacy_variants_mapping_warns(self):
        """``VARIANTS`` survives as a deprecated module attribute
        synthesizing the old name->options dict from the registry."""
        from repro.advisor import advisor as advisor_module

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            mapping = advisor_module.VARIANTS
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert set(mapping) == set(variant_names())
        assert mapping["dtac-both"] == dict(
            get_variant("dtac-both").options
        )

    def test_package_level_variants_access_forwards(self):
        import repro.advisor as advisor_pkg

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            mapping = advisor_pkg.VARIANTS
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert set(mapping) == set(variant_names())


def _run_with_hashseed(script: str, hashseed: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PYTHONHASHSEED": hashseed,
             "PATH": "/usr/bin:/bin"},
        check=True,
    )
    return result.stdout.strip()


# ----------------------------------------------------------------------
class TestSweepIntegration:
    def test_sweep_threads_algorithm_through_units(self, inputs):
        db, wl, budget = inputs
        sweep = run_sweep(db, wl, [budget], algorithm="ibm")
        direct = tune(db, wl, budget, algorithm="ibm")
        assert _digest(sweep.runs[0].result) == _digest(direct)

    def test_sweep_rejects_unknown_algorithm_eagerly(self, inputs):
        db, wl, budget = inputs
        with pytest.raises(AdvisorError, match="choose from"):
            run_sweep(db, wl, [budget], algorithm="nope")


# ----------------------------------------------------------------------
class TestAnytimeContract:
    def test_final_result_equals_last_best_so_far(self, inputs):
        db, wl, budget = inputs
        events = []
        result = tune(db, wl, budget, variant="dtac-none",
                      algorithm="anytime", progress=events.append)
        best = [e for e in events if e["event"] == "best_so_far"]
        assert best, "anytime must publish at least the base config"
        assert best[0]["step"] == "base"
        last = best[-1]
        assert last["configuration"] == sorted(
            ix.display_name() for ix in result.configuration
        )
        assert last["cost"] == result.final_cost
        assert last["consumed_bytes"] == result.consumed_bytes
        # Monotone: every published improvement strictly lowers cost.
        costs = [e["cost"] for e in best]
        assert all(b < a for a, b in zip(costs, costs[1:]))
        seqs = [e["improvement_seq"] for e in best]
        assert seqs == list(range(1, len(best) + 1))

    def test_cancel_early_keeps_best_so_far_prefix(self, inputs):
        """Cancelling after the k-th best_so_far event: the run unwinds
        through JobCancelled and the events already emitted are exactly
        the full run's first k — the client's keepable result."""
        db, wl, budget = inputs
        full = []
        tune(db, wl, budget, variant="dtac-none",
             algorithm="anytime", progress=full.append)
        best_full = [e for e in full if e["event"] == "best_so_far"]
        assert len(best_full) >= 2, "need an improvement to cancel after"
        k = 2
        seen = []

        def hook(event):
            seen.append(event)
            if (
                event["event"] == "best_so_far"
                and len([e for e in seen
                         if e["event"] == "best_so_far"]) >= k
            ):
                raise JobCancelled("client hung up")

        with pytest.raises(JobCancelled):
            tune(db, wl, budget, variant="dtac-none",
                 algorithm="anytime", progress=hook)
        best_seen = [e for e in seen if e["event"] == "best_so_far"]
        assert best_seen == best_full[:k]


# ----------------------------------------------------------------------
class TestServiceIntegration:
    @pytest.fixture(scope="class")
    def service_inputs(self):
        db = sales_database(scale=0.02)
        wl = sales_workload(db)
        return db, wl

    def _run(self, coro):
        return asyncio.run(coro)

    def test_describe_algorithms_shape(self):
        body = describe_algorithms()
        assert body["default"] == algorithms.DEFAULT_ALGORITHM
        names = [a["name"] for a in body["algorithms"]]
        assert names == ALL_ALGORITHMS
        for entry in body["algorithms"]:
            assert entry["summary"]
            assert "budget_bytes" in entry["options"]

    def test_unknown_algorithm_is_a_service_error(self, service_inputs):
        """The request layer rejects unknown algorithms with a
        ServiceError naming the valid set (the HTTP layer maps it to
        400, not 500)."""
        db, wl = service_inputs

        async def scenario():
            service = AdvisorService()
            service.register("sales", db, wl)
            await service.start()
            try:
                with pytest.raises(ServiceError) as err:
                    await service.tune(
                        "sales", budget_fraction=0.1,
                        options={"algorithm": "definitely-not-real"},
                    )
                return str(err.value)
            finally:
                await service.stop()

        message = self._run(scenario())
        for name in ALL_ALGORITHMS:
            assert name in message

    def test_tune_with_algorithm_matches_direct(self, service_inputs):
        db, wl = service_inputs

        async def scenario():
            service = AdvisorService()
            service.register("sales", db, wl)
            await service.start()
            try:
                return await service.tune(
                    "sales", budget_fraction=0.12,
                    variant="dtac-none",
                    options={"algorithm": "relaxation"},
                )
            finally:
                await service.stop()

        answer = self._run(scenario())
        direct = tune(db, wl, db.total_data_bytes() * 0.12,
                      variant="dtac-none", algorithm="relaxation")
        from repro.service import serialize_result
        assert answer["result"] == serialize_result(direct)["result"]

    def test_anytime_job_streams_best_so_far_and_survives_cancel(
        self, service_inputs
    ):
        """An anytime tune job streams best_so_far events; cancelling
        mid-run leaves the job cancelled with the streamed prefix
        intact — the client keeps the last best_so_far as its result."""
        db, wl = service_inputs

        async def scenario():
            service = AdvisorService()
            service.register("sales", db, wl)
            await service.start()
            try:
                record = service.submit_job(
                    "tune", "sales",
                    dict(budget_fraction=0.12, variant="dtac-none",
                         options={"algorithm": "anytime"}),
                )
                events = []
                async for event in service.job_events(record.id):
                    events.append(event)
                    if (
                        event["event"] == "best_so_far"
                        and len([e for e in events
                                 if e["event"] == "best_so_far"]) >= 2
                    ):
                        service.cancel_job(record.id)
                return record.snapshot(), events
            finally:
                await service.stop()

        snapshot, events = self._run(scenario())
        best = [e for e in events if e["event"] == "best_so_far"]
        assert len(best) >= 2
        assert snapshot["state"] == "cancelled"
        # The stream ends with the terminal state, and the best_so_far
        # prefix carries a full configuration the client can keep.
        last = best[-1]
        assert last["configuration"]
        assert last["cost"] > 0
        assert last["consumed_bytes"] <= db.total_data_bytes() * 0.12 + 1e-6
