"""Tests for the delta and bit-packing codecs (column-store workhorses).

Delta is ORD-DEP: sorted inputs compress far better than shuffled ones.
Bit packing is ORD-IND: its size is a pure function of row count and the
global distinct count.
"""

import random

import pytest
from hypothesis import given, strategies as st

from repro.catalog import Column, INT
from repro.compression import (
    BitPackCodec,
    CompressionMethod,
    DeltaCodec,
    bits_for,
    make_codec,
    strip_value,
    varint_len,
    zigzag,
)
from repro.compression.bitpack import PAGE_OVERHEAD
from repro.errors import CompressionError

INT_COL = Column("i", INT)


def enc(v: int) -> bytes:
    return strip_value(INT.encode(v), INT_COL)


def delta_size(values) -> int:
    codec = DeltaCodec(INT_COL)
    for v in values:
        codec.add(enc(v))
    return codec.size()


class TestZigzag:
    def test_interleaves(self):
        assert [zigzag(d) for d in (0, -1, 1, -2, 2)] == [0, 1, 2, 3, 4]

    @given(st.integers(min_value=-2**40, max_value=2**40))
    def test_non_negative_and_unique(self, d):
        z = zigzag(d)
        assert z >= 0
        # Injective: the inverse mapping recovers d.
        back = (z >> 1) if z % 2 == 0 else -((z + 1) >> 1)
        assert back == d

    @given(st.integers(min_value=-2**20, max_value=2**20))
    def test_small_magnitude_small_code(self, d):
        assert zigzag(d) <= 2 * abs(d) + 1


class TestVarint:
    def test_boundaries(self):
        assert varint_len(0) == 1
        assert varint_len(127) == 1
        assert varint_len(128) == 2
        assert varint_len(2**14 - 1) == 2
        assert varint_len(2**14) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            varint_len(-1)

    @given(st.integers(min_value=0, max_value=2**60))
    def test_monotone(self, v):
        assert varint_len(v) <= varint_len(v * 2 + 1)


class TestDeltaCodec:
    def test_sorted_run_is_tiny(self):
        # 1000 consecutive ints: 1 full value + 999 one-byte deltas.
        values = list(range(1000))
        size = delta_size(values)
        assert size <= 1000 * 2 + 10
        raw = 1000 * INT_COL.width
        assert size < raw / 3

    def test_order_dependent(self):
        values = list(range(0, 50_000, 7))
        rng = random.Random(42)
        shuffled = values[:]
        rng.shuffle(shuffled)
        assert delta_size(sorted(values)) < delta_size(shuffled)

    def test_constant_column(self):
        size = delta_size([123456] * 500)
        # First value verbatim, then 499 zero deltas of 1 varint byte.
        assert size <= 3 + 1 + 499 * 2

    def test_reset(self):
        codec = DeltaCodec(INT_COL)
        codec.add(enc(10))
        codec.add(enc(11))
        codec.reset()
        assert codec.size() == 0
        assert codec.count == 0
        codec.add(enc(10))
        assert codec.count == 1

    def test_empty_bytes_decode_as_zero(self):
        codec = DeltaCodec(INT_COL)
        codec.add(b"")
        codec.add(enc(1))
        assert codec.size() >= 2

    @given(st.lists(st.integers(min_value=0, max_value=2**32),
                    min_size=1, max_size=50))
    def test_incremental_matches_bruteforce(self, values):
        stripped = [enc(v) for v in values]
        expected = 1 + max(1, len(stripped[0]))
        prev = values[0]
        for v in values[1:]:
            expected += 1 + varint_len(zigzag(v - prev))
            prev = v
        assert delta_size(values) == expected

    @given(st.lists(st.integers(min_value=0, max_value=2**32),
                    min_size=2, max_size=40))
    def test_sorted_within_one_byte_per_row_of_any_order(self, values):
        # Sorting minimizes total variation, but zig-zag codes a negative
        # delta one smaller than the equal-magnitude positive one, so an
        # adversarial order can beat sorted by at most 1 byte per delta
        # (e.g. [64, 0] beats [0, 64]).  Sorted is never worse than that.
        slack = len(values) - 1
        assert delta_size(sorted(values)) <= delta_size(values) + slack

    def test_method_classification(self):
        assert CompressionMethod.DELTA.is_order_dependent
        assert CompressionMethod.DELTA.is_compressed


class TestBitsFor:
    def test_values(self):
        assert bits_for(1) == 1
        assert bits_for(2) == 1
        assert bits_for(3) == 2
        assert bits_for(256) == 8
        assert bits_for(257) == 9

    def test_invalid(self):
        with pytest.raises(CompressionError):
            bits_for(0)


class TestBitPackCodec:
    def test_size_formula(self):
        codec = BitPackCodec(INT_COL, n_distinct=16)  # 4 bits/value
        for v in range(100):
            codec.add(enc(v))
        assert codec.size() == PAGE_OVERHEAD + (100 * 4 + 7) // 8

    def test_empty_page_is_free(self):
        codec = BitPackCodec(INT_COL, n_distinct=1000)
        assert codec.size() == 0

    def test_order_independent(self):
        values = [enc(v % 7) for v in range(500)]
        a = BitPackCodec(INT_COL, n_distinct=7)
        b = BitPackCodec(INT_COL, n_distinct=7)
        for v in values:
            a.add(v)
        for v in reversed(values):
            b.add(v)
        assert a.size() == b.size()
        assert CompressionMethod.BITPACK.is_order_independent

    def test_factory_requires_distinct(self):
        with pytest.raises(CompressionError):
            make_codec(CompressionMethod.BITPACK, INT_COL)
        codec = make_codec(CompressionMethod.BITPACK, INT_COL, n_distinct=4)
        assert isinstance(codec, BitPackCodec)
        assert codec.bits == 2

    def test_factory_delta(self):
        codec = make_codec(CompressionMethod.DELTA, INT_COL)
        assert isinstance(codec, DeltaCodec)
