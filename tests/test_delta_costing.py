"""Delta-aware workload costing: incremental totals must be bit-equal
to full recosting, and pruning must never change a recommendation.

The contract under test (see ``repro.optimizer.delta``): the
``DeltaWorkloadCoster`` only ever reuses a float it can prove is the
bit-identical value the full-recost path would compute (probe-lose
reuse, plan patching), and only ever skips a candidate whose costing
provably cannot change the search (zero-delta certificates, bound
pruning under pure-greedy scoring).  So every test here asserts *exact*
equality — no tolerances.
"""

import random

import pytest

from repro.advisor.advisor import AdvisorOptions, TuningAdvisor, tune
from repro.api import run_sweep
from repro.datasets.sales import sales_database, sales_workload
from repro.parallel.cache import CostCache
from repro.parallel.engine import fork_available
from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.sizeest.estimator import SizeEstimator
from repro.stats.column_stats import DatabaseStats
from repro.storage.index_build import IndexKind


@pytest.fixture(scope="module")
def delta_inputs():
    db = sales_database(scale=0.04)
    wl = sales_workload(db)
    return db, wl, db.total_data_bytes() * 0.15


@pytest.fixture(scope="module")
def costing_rig(delta_inputs):
    """A what-if optimizer + the candidate pool an advisor would search,
    for direct coster-level tests."""
    db, wl, budget = delta_inputs
    stats = DatabaseStats(db)
    estimator = SizeEstimator(db, stats=stats)
    advisor = TuningAdvisor(
        db, wl, AdvisorOptions(budget_bytes=budget),
        estimator=estimator, stats=stats,
    )
    base = advisor.base_config
    pool = []
    for table in ("sales", "customers", "products", "stores"):
        t = db.table(table)
        cols = t.column_names
        pool.append(IndexDef(table, (cols[0],), kind=IndexKind.SECONDARY))
        pool.append(
            IndexDef(table, (cols[1], cols[0]), kind=IndexKind.SECONDARY)
        )
    return advisor.whatif, wl, base, pool


def _random_configs(base: Configuration, pool, seed: int, n: int):
    """Randomized candidate sequences: single adds, growing chains, and
    the occasional multi-add — the shapes enumeration produces."""
    rng = random.Random(seed)
    configs = []
    current = base
    for _ in range(n):
        roll = rng.random()
        if roll < 0.5:
            configs.append(current.add(rng.choice(pool)))
        elif roll < 0.8:
            current = current.add(rng.choice(pool))
            configs.append(current)
        else:
            a, b = rng.sample(pool, 2)
            configs.append(current.add(a).add(b))
    return configs


class TestIncrementalEqualsFull:
    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_randomized_sequences_match_full_batch(self, costing_rig, seed):
        """Property: delta totals == fresh full-recost totals, exactly,
        for randomized candidate sequences."""
        whatif, wl, base, pool = costing_rig
        configs = _random_configs(base, pool, seed, 40)
        delta = whatif.delta_coster(wl)
        delta.rebase(base)
        incremental = delta.batch(configs)
        whatif.clear_cache()
        full = whatif.workload_cost_batch(wl, configs)
        assert incremental == full
        stats = delta.stats()
        assert stats["reused_terms"] + stats["patched_terms"] > 0

    def test_rebase_returns_full_workload_cost(self, costing_rig):
        whatif, wl, base, pool = costing_rig
        delta = whatif.delta_coster(wl)
        assert delta.rebase(base) == whatif.workload_cost(wl, base)
        grown = base.add(pool[0]).add(pool[3])
        assert delta.rebase(grown) == whatif.workload_cost(wl, grown)

    def test_statement_cost_matches_whatif(self, costing_rig):
        whatif, wl, base, pool = costing_rig
        delta = whatif.delta_coster(wl)
        delta.rebase(base)
        for ws in wl:
            for ix in pool[:4]:
                config = base.add(ix)
                assert delta.statement_cost(ws.statement, config) == \
                    whatif.cost(ws.statement, config).total

    def test_base_swaps_and_method_swaps_match(self, costing_rig):
        """Removed+added diffs (the polish/backtrack shapes) must also
        be exact."""
        from repro.compression.base import CompressionMethod

        whatif, wl, base, pool = costing_rig
        delta = whatif.delta_coster(wl)
        delta.rebase(base)
        configs = []
        for ix in base.ordered():
            for method in (CompressionMethod.ROW, CompressionMethod.PAGE):
                configs.append(base.replace(ix, ix.with_method(method)))
        grown = base.add(pool[0])
        configs.append(
            grown.replace(pool[0], pool[0].with_method(
                CompressionMethod.PAGE))
        )
        incremental = delta.batch(configs)
        whatif.clear_cache()
        assert incremental == whatif.workload_cost_batch(wl, configs)

    def test_fork_view_is_isolated(self, costing_rig):
        whatif, wl, base, pool = costing_rig
        delta = whatif.delta_coster(wl)
        delta.rebase(base)
        delta.workload_cost(base.add(pool[0]))
        view = delta.fork_view()
        assert view.stats()["memo_entries"] == 0
        assert view.workload_cost(base) == delta.rebase(base)
        assert delta.stats()["memo_entries"] > 0


@pytest.fixture(scope="module")
def update_heavy_rig(delta_inputs):
    """A workload dominated by UPDATE/DELETE/INSERT statements (plus a
    few SELECTs), for the maintenance-patching paths: fsum-accumulated
    maintenance costs let the delta layer rebuild INSERT/UPDATE/DELETE
    terms from memoized per-structure contributions."""
    from repro.workload.parser import parse_statement
    from repro.workload.query import Workload

    db, wl, budget = delta_inputs
    heavy = Workload()
    for ws in wl.queries[:6]:
        heavy.add(ws.statement, weight=1.0, name=ws.name)
    for name, sql, weight in [
        ("UPD_STATUS",
         "UPDATE sales SET sa_status = 'R' WHERE sa_promo = 'HOLIDAY'", 4.0),
        ("UPD_DISCOUNT",
         "UPDATE sales SET sa_discount = 5 "
         "WHERE sa_date >= DATE '2009-01-01'", 4.0),
        ("DEL_SMALLBIZ",
         "DELETE FROM customers WHERE cu_segment = 'SMALLBIZ'", 3.0),
        ("BULK_1", "INSERT INTO sales BULK 800", 5.0),
        ("BULK_2", "INSERT INTO customers BULK 120", 5.0),
    ]:
        heavy.add(parse_statement(sql), weight=weight, name=name)
    stats = DatabaseStats(db)
    estimator = SizeEstimator(db, stats=stats)
    advisor = TuningAdvisor(
        db, heavy, AdvisorOptions(budget_bytes=budget),
        estimator=estimator, stats=stats,
    )
    pool = []
    for table in ("sales", "customers"):
        cols = db.table(table).column_names
        pool.append(IndexDef(table, (cols[0],), kind=IndexKind.SECONDARY))
        pool.append(
            IndexDef(table, (cols[2], cols[1]), kind=IndexKind.SECONDARY)
        )
        pool.append(IndexDef(table, (cols[1],), kind=IndexKind.SECONDARY))
    return advisor.whatif, heavy, advisor.base_config, pool, db, budget


class TestUpdateHeavyIncremental:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_randomized_sequences_match_full_batch(
        self, update_heavy_rig, seed
    ):
        """Property: delta totals == fresh full-recost totals, exactly,
        on a workload where most statements are maintenance — and the
        maintenance patch path (not full recosting) carries the load."""
        whatif, wl, base, pool, _db, _budget = update_heavy_rig
        configs = _random_configs(base, pool, seed, 40)
        delta = whatif.delta_coster(wl)
        delta.rebase(base)
        incremental = delta.batch(configs)
        whatif.clear_cache()
        full = whatif.workload_cost_batch(wl, configs)
        assert incremental == full
        assert delta.stats()["patched_maintenance"] > 0

    def test_base_and_method_swaps_match(self, update_heavy_rig):
        """Removed+added diffs must stay exact for maintenance
        statements too (base compression swaps change every
        per-structure contribution of the table)."""
        from repro.compression.base import CompressionMethod

        whatif, wl, base, pool, _db, _budget = update_heavy_rig
        delta = whatif.delta_coster(wl)
        delta.rebase(base)
        configs = []
        for ix in base.ordered():
            for method in (CompressionMethod.ROW, CompressionMethod.PAGE):
                configs.append(base.replace(ix, ix.with_method(method)))
        grown = base.add(pool[0]).add(pool[3])
        configs.append(grown)
        configs.append(
            grown.replace(pool[0],
                          pool[0].with_method(CompressionMethod.ROW))
        )
        incremental = delta.batch(configs)
        whatif.clear_cache()
        assert incremental == whatif.workload_cost_batch(wl, configs)

    def test_statement_cost_matches_whatif(self, update_heavy_rig):
        whatif, wl, base, pool, _db, _budget = update_heavy_rig
        delta = whatif.delta_coster(wl)
        delta.rebase(base)
        for ws in wl.updates:
            for ix in pool:
                config = base.add(ix)
                assert delta.statement_cost(ws.statement, config) == \
                    whatif.cost(ws.statement, config).total

    def test_tune_identical_with_delta_on_or_off(self, update_heavy_rig):
        whatif, wl, base, pool, db, budget = update_heavy_rig
        off = tune(db, wl, budget, variant="dtac-both",
                   delta_costing=False)
        on = tune(db, wl, budget, variant="dtac-both", delta_costing=True)
        assert on.configuration == off.configuration
        assert on.final_cost == off.final_cost
        assert on.base_cost == off.base_cost
        assert on.steps == off.steps
        assert on.delta_stats["patched_maintenance"] > 0

    def test_maintenance_total_is_order_independent(self, update_heavy_rig):
        """The fsum accumulation contract: per-structure contributions
        summed in any order reproduce ``_maintenance_cost``'s exact
        breakdown."""
        import math
        import random as _random

        whatif, wl, base, pool, _db, _budget = update_heavy_rig
        coster = whatif.coster
        config = base.add(pool[0]).add(pool[1]).add(pool[2])
        structures = coster.maintenance_structures("sales", config)
        assert len(structures) >= 3
        full = coster._maintenance_cost("sales", 800.0, config)
        contribs = [
            coster.structure_maintenance("sales", 800.0, ix)
            for ix in structures
        ]
        for seed in (1, 2, 3):
            shuffled = list(contribs)
            _random.Random(seed).shuffle(shuffled)
            assert math.fsum(c[0] for c in shuffled) == full.io
            assert math.fsum(c[1] for c in shuffled) == full.cpu


class TestColdAndWarmCostCache:
    @pytest.mark.parametrize("seed", [21, 22])
    def test_equivalence_through_persistent_cache(
        self, delta_inputs, tmp_path, seed
    ):
        """Cold stores, warm replays (plan costs included): delta totals
        stay equal to full recosting in both cache states."""
        db, wl, budget = delta_inputs
        stats = DatabaseStats(db)

        def rig(cache: CostCache):
            estimator = SizeEstimator(db, stats=stats)
            advisor = TuningAdvisor(
                db, wl, AdvisorOptions(budget_bytes=budget),
                estimator=estimator, stats=stats, cost_cache=cache,
            )
            return advisor.whatif, advisor.base_config

        whatif, base = rig(CostCache(tmp_path))
        pool = [
            IndexDef("sales", (db.table("sales").column_names[i],),
                     kind=IndexKind.SECONDARY)
            for i in range(3)
        ]
        configs = _random_configs(base, pool, seed, 25)

        delta = whatif.delta_coster(wl)
        delta.rebase(base)
        cold = delta.batch(configs)
        whatif.cost_cache.save()

        # Warm: a fresh optimizer + coster over the persisted entries.
        warm_whatif, warm_base = rig(CostCache(tmp_path))
        warm_delta = warm_whatif.delta_coster(wl)
        warm_delta.rebase(warm_base)
        warm = warm_delta.batch(configs)
        assert warm == cold

        # And the ground truth, uncached.
        bare_whatif, bare_base = rig(None)
        assert bare_whatif.workload_cost_batch(wl, configs) == cold

    def test_plan_costs_survive_persistence(self, delta_inputs, tmp_path):
        db, wl, budget = delta_inputs
        stats = DatabaseStats(db)
        estimator = SizeEstimator(db, stats=stats)
        advisor = TuningAdvisor(
            db, wl, AdvisorOptions(budget_bytes=budget),
            estimator=estimator, stats=stats,
            cost_cache=CostCache(tmp_path),
        )
        whatif = advisor.whatif
        query = wl.queries[0].statement
        breakdown, plan_costs = whatif.cost_with_plans(
            query, advisor.base_config
        )
        assert plan_costs == tuple(p.cost for p in breakdown.plans)
        whatif.cost_cache.save()

        replayer = TuningAdvisor(
            db, wl, AdvisorOptions(budget_bytes=budget),
            estimator=SizeEstimator(db, stats=stats), stats=stats,
            cost_cache=CostCache(tmp_path),
        )
        replayed, replayed_costs = replayer.whatif.cost_with_plans(
            query, replayer.base_config
        )
        assert replayed.total == breakdown.total
        assert replayed.plans == ()  # plans are not persisted...
        assert replayed_costs == plan_costs  # ...but their costs are


class TestAdvisorIdentity:
    @pytest.mark.parametrize("variant", ["dtac-both", "dtac-none", "dta"])
    def test_tune_identical_with_delta_on_or_off(self, delta_inputs,
                                                 variant):
        db, wl, budget = delta_inputs
        off = tune(db, wl, budget, variant=variant, delta_costing=False)
        on = tune(db, wl, budget, variant=variant, delta_costing=True)
        assert on.configuration == off.configuration
        assert on.final_cost == off.final_cost
        assert on.base_cost == off.base_cost
        assert on.consumed_bytes == off.consumed_bytes
        assert on.steps == off.steps
        assert on.delta_stats["reused_terms"] > 0
        assert off.delta_stats == {}

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_workers_two_identical_to_sequential_delta(self, delta_inputs,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        db, wl, budget = delta_inputs
        seq = tune(db, wl, budget, variant="dtac-both", workers=1)
        par = tune(db, wl, budget, variant="dtac-both", workers=2)
        assert par.configuration == seq.configuration
        assert par.final_cost == seq.final_cost
        assert par.steps == seq.steps
        assert par.engine_stats["parallel_maps"] > 0

    def test_sweep_identical_with_delta_on_or_off(self):
        db = sales_database(scale=0.03)
        wl = sales_workload(db)
        total = db.total_data_bytes()
        budgets = (total * 0.1, total * 0.2)
        off = run_sweep(db, wl, budgets, variant="dtac-none",
                        delta_costing=False)
        on = run_sweep(db, wl, budgets, variant="dtac-none",
                       delta_costing=True)
        for a, b in zip(off.runs, on.runs):
            assert a.result.configuration == b.result.configuration
            assert a.result.final_cost == b.result.final_cost
            assert a.result.steps == b.result.steps
        assert on.delta_stats["reused_terms"] > 0
        assert off.delta_stats == {}


class TestPruning:
    def test_lower_bounds_are_sound(self, costing_rig):
        """floor(si) <= the statement's weighted term under randomized
        configurations drawn from the registered universe."""
        whatif, wl, base, pool = costing_rig
        delta = whatif.delta_coster(wl)
        delta.rebase(base)
        sizes = {}

        def size_if_known(ix):
            if ix not in sizes:
                sizes[ix] = whatif._sizes(ix)
            return sizes[ix]

        universe = list(pool) + list(base.ordered())
        delta.register_universe(universe, size_if_known)
        rng = random.Random(99)
        statements = list(wl)
        for _ in range(30):
            members = rng.sample(pool, rng.randrange(1, len(pool)))
            config = base
            for ix in members:
                config = config.add(ix)
            for si, ws in enumerate(statements):
                floor = delta.lower_bound(si)
                if floor is None:
                    continue
                term = ws.weight * whatif.cost(ws.statement, config).total
                # Mathematically floor <= term; the computed values can
                # disagree by accumulation-order ulps, which is why the
                # enumerator prunes with half its min_improvement as
                # slack (a ~1e-4 relative margin vs ~1e-15 noise).
                assert floor <= term * (1 + 1e-9) + 1e-9

    def test_zero_delta_certificates_fire(self, costing_rig):
        """A table whose best pool index is already in the reference:
        the weaker candidates on it all probe-lose, so they are
        certified unable to change anything — and skipping them is
        exact, because their delta would be 0.0 bit-for-bit."""
        whatif, wl, base, pool = costing_rig
        delta = whatif.delta_coster(wl)
        delta.rebase(base)
        cust = [ix for ix in pool if ix.table == "customers"]
        ref = base.add(max(cust, key=lambda ix: len(ix.key_columns)))
        ref_cost = delta.rebase(ref)
        certified = [
            d for d in cust
            if d not in ref and not delta.improvement_possible(ref.add(d))
        ]
        assert certified
        assert delta.pruned_zero_delta == len(certified)
        for d in certified:
            assert delta.workload_cost(ref.add(d)) == ref_cost

    def test_bound_pruning_prunes_below_threshold(self, costing_rig):
        """Bound pruning: a candidate whose optimistic improvement cap
        (reference terms minus lower bounds over its affected
        statements) sits below the enumerator's threshold is skipped
        and counted; above it, it is costed."""
        whatif, wl, base, pool = costing_rig
        delta = whatif.delta_coster(wl)
        delta.rebase(base)
        delta.register_universe(
            list(pool) + list(base.ordered()),
            lambda ix: whatif._sizes(ix),
        )
        # A sales candidate: the bulk inserts defeat the zero-delta
        # certificate, so the decision falls to the bounds.
        cand_ix = next(ix for ix in pool if ix.table == "sales")
        candidate = base.add(cand_ix)
        affected = delta._affected(candidate.indexes - base.indexes)
        floors = [delta.lower_bound(si) for si in affected]
        assert all(floor is not None for floor in floors)
        cap = sum(
            delta._ref_terms[si] - floor
            for si, floor in zip(affected, floors)
        )
        assert cap > 0  # the base config is far from the floors
        assert delta.improvement_possible(
            candidate, prune_threshold=cap * 0.5
        )
        assert delta.pruned_bound == 0
        assert not delta.improvement_possible(
            candidate, prune_threshold=cap * 2.0
        )
        assert delta.pruned_bound == 1

    def test_coarse_min_improvement_identical_with_delta(
        self, delta_inputs
    ):
        """The bound-pruning configuration users actually reach for — a
        coarse min_improvement on a pure-greedy run — must stay
        byte-identical with delta costing on."""
        db, wl, budget = delta_inputs
        kwargs = dict(variant="dtac-none", min_improvement=0.05)
        off = tune(db, wl, budget, delta_costing=False, **kwargs)
        on = tune(db, wl, budget, delta_costing=True, **kwargs)
        assert on.configuration == off.configuration
        assert on.final_cost == off.final_cost
        assert on.steps == off.steps

    def test_bound_pruning_fires_through_full_tune(self):
        """End-to-end ``pruned_bound``: why the smoke-scale benchmark
        reports 0, and a workload where it provably fires.

        On the stock sales workload every table's candidate universe
        contains eventual high-benefit winners, which keeps the
        universe-wide floors loose: each candidate's optimistic
        improvement cap (reference terms minus floors over its affected
        statements) stays far above the greedy threshold — measured
        >= 8x even with a coarse ``min_improvement=0.05`` at smoke
        scales — so the benchmark's ``pruned_bound: 0`` is the bound
        being honest, not a dead code path.  Starving one table's
        statements down to marginal weight tightens its floors until
        the cap drops below the threshold; the pruned run must still
        match the unpruned one bit for bit.
        """
        from repro.workload.parser import parse_statement
        from repro.workload.query import Workload

        db = sales_database(scale=0.03)
        base = sales_workload(db)
        wl = Workload()
        # A few high-cost sales statements keep greedy finding real
        # winners (the threshold stays meaningful)...
        for ws in base.queries[:4]:
            wl.add(ws.statement, weight=ws.weight, name=ws.name)
        # ...while the customers statements are worth almost nothing,
        # so every customers candidate's cap sits under the threshold.
        # The UPDATE defeats the zero-delta certificate (no candidate
        # is probe-lose-certified), forcing the decision to the bounds.
        wl.add(parse_statement(
            "SELECT cu_name FROM customers "
            "WHERE cu_segment = 'SMALLBIZ'"),
            weight=0.01, name="CUST_MARGINAL")
        wl.add(parse_statement(
            "UPDATE customers SET cu_segment = 'X' "
            "WHERE cu_segment = 'SMALLBIZ'"),
            weight=0.01, name="CUST_UPD")
        budget = db.total_data_bytes() * 0.2
        kwargs = dict(variant="dtac-none", min_improvement=0.05)
        on = tune(db, wl, budget, **kwargs)
        assert on.delta_stats["pruned_bound"] > 0
        off = tune(db, wl, budget, delta_costing=False, **kwargs)
        assert on.configuration == off.configuration
        assert on.final_cost == off.final_cost
        assert on.steps == off.steps
