"""Unit + property tests for the compression codecs.

Each codec's incremental accounting is checked against brute-force
recomputation over the same value stream, and the ORD-IND/ORD-DEP
classification (the paper's Section 4.2 backbone) is verified
behaviorally.
"""

import pytest
from hypothesis import given, strategies as st

from repro.catalog import Column, INT, char
from repro.compression import (
    CompressionMethod,
    GlobalDictionaryCodec,
    LocalDictionaryCodec,
    MinOfCodec,
    NullSuppressionCodec,
    PrefixCodec,
    RawCodec,
    RunLengthCodec,
    common_prefix_len,
    global_dictionary_overhead,
    make_codec,
    pointer_width,
    strip_value,
)
from repro.compression.local_dictionary import (
    DICT_OVERHEAD,
    _contribution,
)
from repro.errors import CompressionError

INT_COL = Column("i", INT)
CHAR_COL = Column("c", char(12))

bytes_values = st.lists(st.binary(min_size=0, max_size=10), min_size=0,
                        max_size=60)


class TestStripValue:
    def test_int_leading_zeros(self):
        raw = INT.encode(5)
        assert strip_value(raw, INT_COL) == b"\x05"

    def test_int_zero(self):
        assert strip_value(INT.encode(0), INT_COL) == b""

    def test_negative_keeps_sign_byte(self):
        stripped = strip_value(INT.encode(-5), INT_COL)
        decoded = int.from_bytes(
            b"\xff" * (8 - len(stripped)) + stripped, "big", signed=True
        )
        assert decoded == -5

    def test_char_trailing_padding(self):
        raw = CHAR_COL.dtype.encode("ab")
        assert strip_value(raw, CHAR_COL) == b"ab"

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_int_strip_decodable(self, v):
        stripped = strip_value(INT.encode(v), INT_COL)
        pad = b"\xff" if v < 0 else b"\x00"
        restored = pad * (8 - len(stripped)) + stripped
        assert int.from_bytes(restored, "big", signed=True) == v

    @given(st.integers(min_value=0, max_value=2**62))
    def test_strip_never_longer(self, v):
        assert len(strip_value(INT.encode(v), INT_COL)) <= 8


class TestNullSuppression:
    def test_size_formula(self):
        codec = NullSuppressionCodec(INT_COL)
        codec.add(b"ab")
        codec.add(b"")
        assert codec.size() == (1 + 2) + (1 + 0)

    def test_reset(self):
        codec = NullSuppressionCodec(INT_COL)
        codec.add(b"abc")
        codec.reset()
        assert codec.size() == 0
        assert codec.count == 0

    @given(bytes_values)
    def test_matches_bruteforce(self, values):
        codec = NullSuppressionCodec(INT_COL)
        for v in values:
            codec.add(v)
        assert codec.size() == sum(1 + len(v) for v in values)


class TestPrefix:
    def test_common_prefix_len(self):
        assert common_prefix_len(b"aaabc", b"aaacd") == 3
        assert common_prefix_len(b"", b"x") == 0
        assert common_prefix_len(b"same", b"same") == 4

    def test_paper_example(self):
        # {aaabc, aaacd, aaade} share "aaa".
        codec = PrefixCodec(CHAR_COL)
        for v in (b"aaabc", b"aaacd", b"aaade"):
            codec.add(v)
        # anchor(2+3) + 3 headers + suffixes 2+2+2
        assert codec.size() == 5 + 3 + 6

    def test_prefix_only_shrinks(self):
        codec = PrefixCodec(CHAR_COL)
        codec.add(b"abcdef")
        size_one = codec.size()
        codec.add(b"abczzz")
        assert codec._prefix == b"abc"
        assert codec.size() > size_one

    @given(bytes_values)
    def test_matches_bruteforce(self, values):
        codec = PrefixCodec(CHAR_COL)
        for v in values:
            codec.add(v)
        if not values:
            assert codec.size() == 0
            return
        prefix = values[0]
        for v in values[1:]:
            prefix = prefix[: common_prefix_len(prefix, v)]
        expected = (
            2 + len(prefix)
            + len(values)
            + sum(len(v) - len(prefix) for v in values)
        )
        assert codec.size() == expected


class TestLocalDictionary:
    def test_repeats_pay_off(self):
        codec = LocalDictionaryCodec(CHAR_COL)
        for _ in range(50):
            codec.add(b"REPEATED")
        # 50 plain copies would be 50 * 9; dictionary stores it once.
        assert codec.size() < 50 * 9

    def test_unique_values_not_dictionarized(self):
        codec = LocalDictionaryCodec(CHAR_COL)
        values = [bytes([i, i + 1]) for i in range(30)]
        for v in values:
            codec.add(v)
        assert codec.size() == DICT_OVERHEAD + sum(1 + 2 for _ in values)

    def test_distinct_on_page(self):
        codec = LocalDictionaryCodec(CHAR_COL)
        for v in (b"a", b"b", b"a"):
            codec.add(v)
        assert codec.distinct_on_page() == 2

    @given(bytes_values)
    def test_matches_bruteforce(self, values):
        codec = LocalDictionaryCodec(CHAR_COL)
        for v in values:
            codec.add(v)
        if not values:
            assert codec.size() == 0
            return
        counts = {}
        for v in values:
            counts[v] = counts.get(v, 0) + 1
        ptr = 1 if len(counts) <= 256 else 2
        expected = DICT_OVERHEAD + sum(
            _contribution(len(v), c, ptr) for v, c in counts.items()
        )
        assert codec.size() == expected

    def test_incremental_total_matches_rescan_at_every_row(self):
        """The incrementally-maintained size must equal a full
        O(distinct) rescan after *every* add, across the 1-byte to
        2-byte pointer-width transition at 256 distinct values —
        the transition is an O(1) total switch, not a recount."""
        import random

        def rescan_size(counts, ptr):
            if not counts:
                return 0
            return DICT_OVERHEAD + sum(
                _contribution(len(v), c, ptr) for v, c in counts.items()
            )

        rng = random.Random(20110829)
        codec = LocalDictionaryCodec(CHAR_COL)
        counts: dict = {}
        # 700 adds over ~400 distinct values: crosses the 256-distinct
        # boundary mid-sequence with plenty of repeats on both sides.
        for _ in range(700):
            value = bytes([rng.randrange(4), rng.randrange(100)])
            codec.add(value)
            counts[value] = counts.get(value, 0) + 1
            ptr = 1 if len(counts) <= 256 else 2
            assert codec.size() == rescan_size(counts, ptr)
        assert codec.distinct_on_page() > 256

    def test_reset_clears_both_width_totals(self):
        codec = LocalDictionaryCodec(CHAR_COL)
        for i in range(300):
            codec.add(bytes([i % 256, i // 256]))
        codec.reset()
        assert codec.size() == 0
        codec.add(b"ab")
        assert codec.size() == DICT_OVERHEAD + _contribution(2, 1, 1)


class TestRunLength:
    def test_runs(self):
        codec = RunLengthCodec(INT_COL)
        for v in (b"a", b"a", b"a", b"b", b"a"):
            codec.add(v)
        assert codec.run_count == 3

    def test_size(self):
        codec = RunLengthCodec(INT_COL)
        for v in (b"xy", b"xy", b"z"):
            codec.add(v)
        assert codec.size() == (1 + 2 + 2) + (1 + 1 + 2)

    @given(bytes_values)
    def test_runs_bruteforce(self, values):
        codec = RunLengthCodec(INT_COL)
        for v in values:
            codec.add(v)
        runs = 0
        last = object()
        for v in values:
            if v != last:
                runs += 1
                last = v
        assert codec.run_count == runs


class TestGlobalDictionary:
    def test_pointer_width(self):
        assert pointer_width(1) == 1
        assert pointer_width(256) == 1
        assert pointer_width(257) == 2
        assert pointer_width(65536) == 2
        assert pointer_width(65537) == 3

    def test_codec_size(self):
        codec = GlobalDictionaryCodec(INT_COL, n_distinct=300)
        for _ in range(10):
            codec.add(b"whatever")
        assert codec.size() == 10 * 2

    def test_dictionary_overhead(self):
        assert global_dictionary_overhead([b"ab", b"c"]) == 3 + 2


class TestComposites:
    def test_min_of_picks_smallest(self):
        codec = MinOfCodec(
            CHAR_COL, [NullSuppressionCodec(CHAR_COL), PrefixCodec(CHAR_COL)]
        )
        for _ in range(20):
            codec.add(b"shared-prefix-value")
        prefix = PrefixCodec(CHAR_COL)
        ns = NullSuppressionCodec(CHAR_COL)
        for _ in range(20):
            prefix.add(b"shared-prefix-value")
            ns.add(b"shared-prefix-value")
        assert codec.size() == min(prefix.size(), ns.size())

    def test_min_of_requires_parts(self):
        with pytest.raises(CompressionError):
            MinOfCodec(CHAR_COL, [])

    def test_raw_codec(self):
        codec = RawCodec(INT_COL)
        codec.add(b"x")
        codec.add(b"")
        assert codec.size() == 2 * 8


class TestFactory:
    @pytest.mark.parametrize("method", list(CompressionMethod))
    def test_make_codec(self, method):
        codec = make_codec(method, INT_COL, n_distinct=10)
        codec.add(b"ab")
        assert codec.size() >= 0

    def test_global_dict_needs_distinct(self):
        with pytest.raises(CompressionError):
            make_codec(CompressionMethod.GLOBAL_DICT, INT_COL)

    def test_classification(self):
        assert CompressionMethod.ROW.is_order_independent
        assert CompressionMethod.GLOBAL_DICT.is_order_independent
        assert CompressionMethod.PAGE.is_order_dependent
        assert CompressionMethod.RLE.is_order_dependent
        assert not CompressionMethod.NONE.is_compressed


class TestPageFusion:
    """The fused PageCodec promises byte-identity with the composite it
    replaced (see its docstring); this pins that equivalence."""

    @staticmethod
    def _composite():
        return MinOfCodec(CHAR_COL, [
            NullSuppressionCodec(CHAR_COL),
            PrefixCodec(CHAR_COL),
            LocalDictionaryCodec(CHAR_COL),
        ])

    @given(bytes_values)
    def test_page_codec_matches_composite(self, values):
        from repro.compression.packages import PageCodec

        fused = PageCodec(CHAR_COL)
        composite = self._composite()
        for value in values:
            assert fused.add(value) == composite.add(value)
        assert fused.size() == composite.size()
        assert fused.count == composite.count

    @given(bytes_values)
    def test_page_codec_reset_matches(self, values):
        from repro.compression.packages import PageCodec

        fused = PageCodec(CHAR_COL)
        composite = self._composite()
        for value in values:
            fused.add(value)
            composite.add(value)
        fused.reset()
        composite.reset()
        for value in values:
            assert fused.add(value) == composite.add(value)
        assert fused.size() == composite.size()

    def test_factory_builds_fused_page(self):
        from repro.compression.packages import PageCodec

        assert isinstance(
            make_codec(CompressionMethod.PAGE, CHAR_COL), PageCodec
        )
