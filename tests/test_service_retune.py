"""The service's retune job kind and the versioned ``/v1`` envelope.

The contract: ``retune`` jobs carry the previous configuration forward
across submissions (resolved into the journaled payload at submission,
so re-runs are self-contained); per-retune ``dropped``/``added``/
``config_changed`` events stream; invalid drift/from_config payloads
fail at submission; and every ``/v1`` body is validated against the
closed wire schema while every ``/v1`` response is stamped with
``schema_version``.
"""

import asyncio

import pytest

from repro.datasets.sales import sales_database, sales_workload
from repro.errors import ReproError, ServiceError
from repro.service import AdvisorService
from repro.service import wire

#: a drift spec extreme enough that phase 0 -> 2 strands structure(s).
DRIFT = dict(hot_fraction=0.2, hot_weight=20.0, cold_weight=0.01)
RETUNE = dict(budget_fraction=0.15, variant="dtac-none")


@pytest.fixture(scope="module")
def service_inputs():
    db = sales_database(scale=0.02)
    return db, sales_workload(db)


def run(coro):
    return asyncio.run(coro)


async def _make_service(service_inputs, **kwargs):
    db, wl = service_inputs
    service = AdvisorService(**kwargs)
    service.register("sales", db, wl)
    await service.start()
    return service


async def _run_job(service, payload):
    record = service.submit_job("retune", "sales", dict(payload))
    events = [e async for e in service.job_events(record.id)]
    return service.jobs.get(record.id), events


class TestRetuneJobs:
    def test_carry_forward_and_drop_events(self, service_inputs):
        """Two recurring submissions: the first runs cold (generation
        1), the second seeds from the first's result (generation 2) and
        streams the drop/add/config_changed events of the phase
        shift."""

        async def scenario():
            service = await _make_service(service_inputs)
            try:
                first, ev1 = await _run_job(
                    service, dict(RETUNE, drift={"phase": 0, **DRIFT})
                )
                second, ev2 = await _run_job(
                    service, dict(RETUNE, drift={"phase": 2, **DRIFT})
                )
                return first, ev1, second, ev2
            finally:
                await service.stop()

        first, ev1, second, ev2 = run(scenario())
        assert first.state == second.state == "done"
        assert first.result["retune"]["generation"] == 1
        assert second.result["retune"]["generation"] == 2
        # The second submission's journaled payload is self-contained:
        # the carried configuration was resolved in at submission.
        assert second.payload["from_config"] == \
            first.result["result"]["indexes"]
        assert second.result["retune"]["dropped"], "no drop fired"
        kinds = {e["event"] for e in ev2}
        assert {"dropped", "config_changed"} <= kinds
        changed = next(e for e in ev2
                       if e["event"] == "config_changed")
        assert changed["changed"] is True
        assert changed["generation"] == 2

    def test_from_config_seeds_generation_one(self, service_inputs):
        """An explicit from_config bypasses the carry-forward scan."""
        specs = [{"table": "sales", "key_columns": ["sa_date"],
                  "method": "page"}]

        async def scenario():
            service = await _make_service(service_inputs)
            try:
                record, _events = await _run_job(
                    service, dict(RETUNE, from_config=specs)
                )
                return record
            finally:
                await service.stop()

        record = run(scenario())
        assert record.state == "done"
        assert record.result["retune"]["generation"] == 1
        assert record.payload["from_config"] == specs

    def test_invalid_payloads_fail_at_submission(self, service_inputs):
        async def scenario():
            service = await _make_service(service_inputs)
            failures = []
            try:
                for payload in (
                    dict(RETUNE, drift={"phase": -1}),
                    dict(RETUNE, drift={"phase": 0, "bogus": 1}),
                    dict(RETUNE, drift="not-a-dict"),
                    dict(RETUNE, from_config=[{"table": "nope",
                                               "key_columns": ["x"]}]),
                    dict(RETUNE, from_config="not-a-list"),
                ):
                    try:
                        service.submit_job("retune", "sales", payload)
                    except (ServiceError, ReproError) as exc:
                        failures.append(str(exc))
                return failures
            finally:
                await service.stop()

        failures = run(scenario())
        assert len(failures) == 5

    def test_retune_is_not_a_request_kind(self, service_inputs):
        """Retune is stateful and must never coalesce with identical
        concurrent requests — it is job-only."""

        async def scenario():
            service = await _make_service(service_inputs)
            try:
                with pytest.raises(ServiceError, match="unknown"):
                    await service.request("retune", "sales", dict(RETUNE))
            finally:
                await service.stop()

        run(scenario())


class TestWireSchema:
    def test_unknown_fields_rejected_by_name(self):
        with pytest.raises(ServiceError) as exc:
            wire.validate_request("tune", {
                "context": "sales", "budget_fraction": 0.1,
                "tenant": "smuggled", "priority": "high",
            })
        message = str(exc.value)
        assert "priority" in message and "tenant" in message
        assert "allowed" in message

    def test_routing_fields_allowed_on_jobs_only(self):
        body = {"context": "sales", "kind": "tune", "tenant": "t",
                "priority": "high", "budget_fraction": 0.1}
        wire.validate_job("tune", body)  # does not raise
        with pytest.raises(ServiceError):
            wire.validate_request("tune", body)

    def test_retune_job_fields(self):
        wire.validate_job("retune", {
            "context": "sales", "kind": "retune",
            "budget_fraction": 0.1,
            "drift": {"phase": 1}, "from_config": [], "generation": 3,
        })
        with pytest.raises(ServiceError, match="drift"):
            wire.validate_job("tune", {
                "context": "sales", "kind": "tune",
                "drift": {"phase": 1},
            })

    def test_schema_version_optional_but_checked(self):
        wire.check_version({})
        wire.check_version({"schema_version": wire.SCHEMA_VERSION})
        with pytest.raises(ServiceError, match="schema_version"):
            wire.check_version({"schema_version": 99})

    def test_stamp_is_idempotent_and_first(self):
        stamped = wire.stamp({"ok": True})
        assert list(stamped) == ["schema_version", "ok"]
        assert wire.stamp(stamped) is stamped

    def test_unknown_kind_passes_through(self):
        # The service layer owns the unknown-kind error message.
        wire.validate_request("mystery", {"whatever": 1})
        with pytest.raises(ServiceError, match="kind"):
            wire.validate_job(None, {})
