"""Durable job tier, persistence half: append/replay round-trips,
torn-line tolerance, leases, cancel markers, crash recovery semantics,
replay idempotency under random interleavings, and compaction's
consistency with the bounded-history eviction rule.

The contract under test (see ``repro.service.journal``): every record
the :class:`JobManager` exposes to clients is re-derivable from the
journal alone — a manager rebuilt over the same directory restores
byte-identical snapshots and event logs, re-enqueues ``queued`` work,
marks interrupted ``running`` work ``failed``/``recovered`` (unless a
live lease says a worker still has it), and keeps event ``seq``
numbers gapless across the restart boundary.

These tests run against a stub service (instant executions), so they
exercise the durability machinery, not the advisor; the real-tuning
byte-identity of recovered jobs is covered by
``tests/test_crash_recovery.py``.
"""

import asyncio
import json
import os
import random

import pytest

from repro.service.jobs import JobManager
from repro.service.journal import JobJournal, JournalError
from repro.service.scheduler import ContextScheduler


class StubService:
    """Quacks like AdvisorService as far as JobManager cares: contexts,
    lifecycle flags, a scheduler, and an instant ``_execute``."""

    def __init__(self, journal=None, **manager_kwargs):
        self.contexts = {"alpha": object(), "beta": object()}
        self.started = True
        self._closing = False
        self.max_pending = 64
        self.scheduler = ContextScheduler(workers=1, max_lanes=2)
        self.executed = []
        self.jobs = JobManager(self, journal=journal, **manager_kwargs)

    def _execute(self, kind, context, payload, lane=None, progress=None):
        if progress is not None:
            progress({"event": "phase", "phase": "work"})
        self.executed.append((kind, context))
        return {"ok": True, "kind": kind, "context": context,
                "payload": payload}

    def shutdown(self):
        self.scheduler.shutdown()
        if self.jobs.journal is not None:
            self.jobs.journal.close()


def run(coro):
    return asyncio.run(coro)


def snapshots(manager):
    return [manager.jobs[i].snapshot() for i in manager._order]


def event_logs(manager):
    return {i: list(manager.jobs[i].events) for i in manager._order}


class TestSegments:
    def test_append_replay_round_trip(self, tmp_path):
        journal = JobJournal(str(tmp_path), "coordinator")
        journal.append_submit("job-000001", "tune", "alpha", {"b": 0.1},
                              "t1", "high", 100.0)
        journal.append_event("job-000001", {"event": "state",
                                            "state": "queued", "seq": 1})
        journal.append_state("job-000001", "running", 101.0)
        journal.append_event("job-000001", {"event": "phase",
                                            "phase": "work", "seq": 2})
        journal.append_result("job-000001", {"ok": True})
        journal.append_state("job-000001", "done", 102.0)
        journal.close()

        images = JobJournal(str(tmp_path), "coordinator").replay()
        image = images["job-000001"]
        assert image.kind == "tune"
        assert image.context == "alpha"
        assert image.payload == {"b": 0.1}
        assert (image.tenant, image.priority) == ("t1", "high")
        assert image.state == "done"
        assert (image.created, image.started, image.finished) == \
            (100.0, 101.0, 102.0)
        assert image.result == {"ok": True}
        assert image.max_seq == 2 and image.seq_gapless()

    def test_terminal_state_outranks_transient(self, tmp_path):
        """Cross-segment merge order must not matter: a terminal state
        read before a stale ``running`` line still wins."""
        journal = JobJournal(str(tmp_path), "coordinator")
        images = {}
        journal.apply(images, {"rec": "submit", "job": "j", "kind": "tune",
                               "context": "alpha", "payload": {}})
        journal.apply(images, {"rec": "state", "job": "j",
                               "state": "done", "ts": 5.0})
        journal.apply(images, {"rec": "state", "job": "j",
                               "state": "running", "ts": 4.0})
        assert images["j"].state == "done"
        assert images["j"].finished == 5.0

    def test_torn_trailing_line_is_ignored_then_reread(self, tmp_path):
        """A partial append (writer killed mid-line) must not poison the
        replay, and the completed line must surface on the next read."""
        journal = JobJournal(str(tmp_path), "writer1")
        journal.append_submit("job-000001", "tune", "alpha", {}, "t", "normal",
                              1.0)
        journal.close()
        path = os.path.join(str(tmp_path), "segment-writer1.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"rec":"state","job":"job-000001","sta')  # torn

        reader = JobJournal(str(tmp_path), "coordinator")
        records = reader.refresh()
        assert [r["rec"] for r in records] == ["submit"]
        # Writer finishes the line: only the completed record shows up.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('te":"running","ts":2.0,"v":1}\n')
        records = reader.refresh()
        assert [r["rec"] for r in records] == ["state"]
        assert records[0]["state"] == "running"
        assert reader.refresh() == []  # fully consumed

    def test_refresh_skips_own_segment(self, tmp_path):
        a = JobJournal(str(tmp_path), "a")
        b = JobJournal(str(tmp_path), "b")
        a.append_submit("job-000001", "tune", "alpha", {}, "t", "normal", 1.0)
        b.append_state("job-000001", "running", 2.0)
        assert [r["rec"] for r in a.refresh()] == ["state"]
        assert [r["rec"] for r in b.refresh()] == ["submit"]
        a.close()
        b.close()

    def test_writer_id_must_be_a_simple_name(self, tmp_path):
        with pytest.raises(JournalError, match="simple name"):
            JobJournal(str(tmp_path), "../evil")


class TestLeasesAndCancelMarkers:
    def test_claim_is_exclusive(self, tmp_path):
        w1 = JobJournal(str(tmp_path), "w1")
        w2 = JobJournal(str(tmp_path), "w2")
        assert w1.claim("job-000001") is True
        assert w2.claim("job-000001") is False
        assert w1.lease_info("job-000001")["writer"] == "w1"
        w1.release("job-000001")
        assert w2.claim("job-000001") is True

    def test_lease_live_by_owner_pid(self, tmp_path):
        journal = JobJournal(str(tmp_path), "w1")
        journal.claim("job-000001")  # our own pid: alive
        assert journal.lease_live("job-000001") is True
        assert journal.break_lease("job-000001") is False  # refuses

    def test_dead_pid_lease_is_breakable(self, tmp_path):
        journal = JobJournal(str(tmp_path), "w1", lease_ttl=0.01)
        path = os.path.join(str(tmp_path), "leases", "job-000001.json")
        # A pid that cannot exist, with an ancient heartbeat.
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"job": "job-000001", "writer": "gone",
                       "pid": 2 ** 22 + 1, "heartbeat": 0.0}, fh)
        assert journal.lease_live("job-000001") is False
        assert journal.break_lease("job-000001") is True
        assert journal.lease_info("job-000001") is None

    def test_heartbeat_keeps_pidless_lease_live(self, tmp_path):
        """When pid liveness cannot decide, heartbeat freshness does."""
        journal = JobJournal(str(tmp_path), "w1", lease_ttl=30.0)
        journal.claim("job-000001")
        journal.heartbeat("job-000001")
        info = journal.lease_info("job-000001")
        del info["pid"]
        with open(os.path.join(str(tmp_path), "leases",
                               "job-000001.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(info, fh)
        assert journal.lease_live("job-000001") is True

    def test_cancel_marker_round_trip(self, tmp_path):
        journal = JobJournal(str(tmp_path), "coordinator")
        assert journal.cancel_requested("job-000001") is False
        journal.request_cancel("job-000001")
        assert journal.cancel_requested("job-000001") is True
        journal.clear_cancel("job-000001")
        assert journal.cancel_requested("job-000001") is False


class TestRecovery:
    def test_restart_restores_identical_state(self, tmp_path):
        """Completed jobs come back with byte-identical snapshots and
        full event logs — ``GET /v1/jobs/<id>/events`` survives the
        restart."""

        async def first_life():
            service = StubService(journal=JobJournal(str(tmp_path),
                                                     "coordinator"))
            try:
                service.jobs.submit("tune", "alpha", {"x": 1}, tenant="t1")
                service.jobs.submit("sweep", "beta", {"y": 2},
                                    priority="high")
                await service.jobs.drain()
                return snapshots(service.jobs), event_logs(service.jobs)
            finally:
                service.shutdown()

        async def second_life():
            service = StubService(journal=JobJournal(str(tmp_path),
                                                     "coordinator"))
            try:
                report = service.jobs.recover()
                return report, snapshots(service.jobs), \
                    event_logs(service.jobs)
            finally:
                service.shutdown()

        before, before_events = run(first_life())
        report, after, after_events = run(second_life())
        assert report == {"restored": 2, "requeued": 0, "recovered": 0}
        assert after == before
        assert after_events == before_events
        for events in after_events.values():
            assert [e["seq"] for e in events] == \
                list(range(1, len(events) + 1))

    def test_recover_is_idempotent(self, tmp_path):
        """Recovering twice over the same directory (the journal was
        compacted and re-appended in between) reconstructs the same
        state — replay + compaction is a fixed point."""

        async def life(expect=None):
            service = StubService(journal=JobJournal(str(tmp_path),
                                                     "coordinator"))
            try:
                if expect is None:
                    service.jobs.submit("tune", "alpha", {"x": 1})
                    await service.jobs.drain()
                else:
                    service.jobs.recover()
                return snapshots(service.jobs)
            finally:
                service.shutdown()

        first = run(life())
        once = run(life(expect=first))
        twice = run(life(expect=once))
        assert once == first
        assert twice == once

    def test_interrupted_running_job_marked_recovered(self, tmp_path):
        """A ``running`` job whose writer died (no live lease) fails
        with the ``recovered`` marker, and the failure event continues
        the seq series gap-free."""
        dead = JobJournal(str(tmp_path), "coordinator")
        dead.append_submit("job-000007", "tune", "alpha", {"b": 0.1},
                           "t1", "normal", 50.0)
        dead.append_event("job-000007", {"event": "state",
                                         "state": "queued",
                                         "job": "job-000007", "seq": 1})
        dead.append_state("job-000007", "running", 51.0)
        dead.append_event("job-000007", {"event": "state",
                                         "state": "running",
                                         "job": "job-000007", "seq": 2})
        dead.append_event("job-000007", {"event": "phase",
                                         "phase": "work", "seq": 3})
        dead.close()

        async def scenario():
            service = StubService(journal=JobJournal(str(tmp_path),
                                                     "coordinator"))
            try:
                report = service.jobs.recover()
                record = service.jobs.get("job-000007")
                return report, record.snapshot(), list(record.events), \
                    service.jobs.stats()
            finally:
                service.shutdown()

        report, snapshot, events, stats = run(scenario())
        assert report["recovered"] == 1
        assert snapshot["state"] == "failed"
        assert snapshot["recovered"] is True
        assert "restart" in snapshot["error"]
        assert [e["seq"] for e in events] == [1, 2, 3, 4]
        assert events[-1]["state"] == "failed"
        assert events[-1]["recovered"] is True
        assert stats["recovered"] == 1

    def test_queued_job_requeues_and_completes(self, tmp_path):
        """A ``queued`` job from the previous life re-runs to ``done``,
        its events continuing seq-gapless past the restored queued
        event."""
        dead = JobJournal(str(tmp_path), "coordinator")
        dead.append_submit("job-000003", "tune", "alpha", {"b": 0.2},
                           "t1", "normal", 60.0)
        dead.append_event("job-000003", {"event": "state",
                                         "state": "queued",
                                         "job": "job-000003", "seq": 1})
        dead.close()

        async def scenario():
            service = StubService(journal=JobJournal(str(tmp_path),
                                                     "coordinator"))
            try:
                report = service.jobs.recover()
                await service.jobs.drain()
                record = service.jobs.get("job-000003")
                nxt = service.jobs.submit("tune", "alpha", {})
                return report, record.snapshot(), list(record.events), \
                    nxt.id
            finally:
                service.shutdown()

        report, snapshot, events, next_id = run(scenario())
        assert report["requeued"] == 1
        assert snapshot["state"] == "done"
        assert snapshot["result"]["ok"] is True
        assert [e["seq"] for e in events] == \
            list(range(1, len(events) + 1))
        states = [e["state"] for e in events if e["event"] == "state"]
        assert states == ["queued", "running", "done"]
        # The id counter resumes past the restored ids: no reuse.
        assert next_id == "job-000004"

    def test_running_job_with_live_lease_stays_external(self, tmp_path):
        """A live worker lease means the job is *not* dead: recovery
        keeps it running/external instead of failing it."""
        worker = JobJournal(str(tmp_path), "worker-x")
        worker.append_submit("job-000009", "tune", "alpha", {}, "t",
                             "normal", 70.0)
        worker.append_state("job-000009", "running", 71.0)
        worker.claim("job-000009")  # our own live pid
        worker.close()

        async def scenario():
            service = StubService(journal=JobJournal(str(tmp_path),
                                                     "coordinator"))
            try:
                report = service.jobs.recover()
                record = service.jobs.get("job-000009")
                return report, record.state, record.external
            finally:
                service.shutdown()

        report, state, external = run(scenario())
        assert report["recovered"] == 0
        assert state == "running"
        assert external is True


class TestReplayIdempotencyProperty:
    """Randomized submit/cancel/crash interleavings: whatever the
    journal ends up holding, a fresh manager reconstructs exactly the
    state the dying one would have shown — and every restored log is
    seq-gapless."""

    @pytest.mark.parametrize("seed", [101, 202, 303, 404])
    def test_random_interleavings_reconstruct_identical_state(
            self, tmp_path, seed):
        rng = random.Random(seed)

        async def first_life():
            service = StubService(
                journal=JobJournal(str(tmp_path), "coordinator"))
            try:
                records = []
                for step in range(rng.randrange(4, 10)):
                    op = rng.random()
                    if op < 0.6 or not records:
                        records.append(service.jobs.submit(
                            rng.choice(("tune", "sweep")),
                            rng.choice(("alpha", "beta")),
                            {"step": step},
                            tenant=rng.choice(("t1", "t2", "t3")),
                            priority=rng.choice(
                                ("high", "normal", "low")),
                        ))
                    elif op < 0.8:
                        service.jobs.cancel(rng.choice(records).id)
                    else:
                        await asyncio.sleep(0)  # let tasks interleave
                await service.jobs.drain()
                return snapshots(service.jobs), event_logs(service.jobs)
            finally:
                # "Crash": no compaction, no graceful stop — the next
                # life sees the raw append history.
                service.shutdown()

        async def second_life():
            service = StubService(
                journal=JobJournal(str(tmp_path), "coordinator"))
            try:
                service.jobs.recover()
                await service.jobs.drain()
                return snapshots(service.jobs), event_logs(service.jobs)
            finally:
                service.shutdown()

        before, before_events = run(first_life())
        after, after_events = run(second_life())
        # Everything terminal before the crash is reconstructed
        # byte-identically (nothing was left queued/running: drain()
        # ran, so recovery restores rather than re-executes).
        assert after == before
        assert after_events == before_events
        for events in after_events.values():
            assert [e["seq"] for e in events] == \
                list(range(1, len(events) + 1))


class TestCompaction:
    def test_boot_compaction_matches_eviction_bound(self, tmp_path):
        """After recovery with a small ``max_history``, the on-disk
        journal holds exactly the retained ids — disk history and
        in-memory history evict by the same rule."""

        async def first_life():
            service = StubService(
                journal=JobJournal(str(tmp_path), "coordinator"))
            try:
                for i in range(6):
                    service.jobs.submit("tune", "alpha", {"i": i})
                await service.jobs.drain()
            finally:
                service.shutdown()

        async def second_life():
            service = StubService(
                journal=JobJournal(str(tmp_path), "coordinator"),
                max_history=3)
            try:
                service.jobs.recover()
                return list(service.jobs._order)
            finally:
                service.shutdown()

        run(first_life())
        retained = run(second_life())
        assert retained == ["job-%06d" % i for i in (4, 5, 6)]
        images = JobJournal(str(tmp_path), "coordinator").replay()
        assert sorted(images) == retained
        # One merged segment remains after compaction.
        segments = [n for n in os.listdir(str(tmp_path))
                    if n.startswith("segment-")]
        assert segments == ["segment-coordinator.jsonl"]

    def test_compact_refuses_under_live_foreign_lease(self, tmp_path):
        """A live worker's open segment must never be rewritten under
        it: compaction bails out and leaves every record in place."""
        coordinator = JobJournal(str(tmp_path), "coordinator")
        coordinator.append_submit("job-000001", "tune", "alpha", {},
                                  "t", "normal", 1.0)
        worker = JobJournal(str(tmp_path), "worker-1")
        worker.append_state("job-000001", "running", 2.0)
        worker.claim("job-000001")  # live: our own pid
        assert coordinator.compact(frozenset()) is False
        assert sorted(coordinator.replay()) == ["job-000001"]
        # Once the worker lets go, compaction proceeds.
        worker.release("job-000001")
        worker.close()
        assert coordinator.compact(frozenset()) is True
        assert coordinator.replay() == {}
        coordinator.close()

    def test_compact_prunes_markers_of_dropped_jobs(self, tmp_path):
        journal = JobJournal(str(tmp_path), "coordinator")
        journal.append_submit("job-000001", "tune", "alpha", {}, "t",
                              "normal", 1.0)
        journal.append_submit("job-000002", "tune", "alpha", {}, "t",
                              "normal", 2.0)
        journal.request_cancel("job-000001")
        journal.request_cancel("job-000002")
        assert journal.compact(frozenset({"job-000002"})) is True
        assert journal.cancel_requested("job-000001") is False
        assert journal.cancel_requested("job-000002") is True
        assert sorted(journal.replay()) == ["job-000002"]
        journal.close()

    def test_compact_refuses_while_idle_foreign_writer_announced(
            self, tmp_path):
        """A worker between jobs holds no lease, but it still appends
        to its segment and tails ours by byte offset: its *presence*
        file alone must block compaction (the original bug deleted idle
        workers' open segments on coordinator restart)."""
        coordinator = JobJournal(str(tmp_path), "coordinator")
        coordinator.append_submit("job-000001", "tune", "alpha", {},
                                  "t", "normal", 1.0)
        worker = JobJournal(str(tmp_path), "worker-1")
        worker.announce_writer()  # alive, idle: no lease anywhere
        assert coordinator.compact(frozenset()) is False
        assert sorted(coordinator.replay()) == ["job-000001"]
        # A clean worker shutdown retires the presence file.
        worker.close()
        assert coordinator.compact(frozenset()) is True
        coordinator.close()

    def test_compact_sweeps_dead_writer_presence(self, tmp_path):
        """A crashed worker's presence file (dead pid) must not block
        compaction forever — it is swept with the merged segments."""
        coordinator = JobJournal(str(tmp_path), "coordinator")
        coordinator.append_submit("job-000001", "tune", "alpha", {},
                                  "t", "normal", 1.0)
        with open(coordinator._writer_path("worker-dead"), "w",
                  encoding="utf-8") as fh:
            json.dump({"writer": "worker-dead", "pid": 2 ** 22 + 7,
                       "heartbeat": 0.0}, fh)
        assert coordinator.compact(frozenset({"job-000001"})) is True
        assert coordinator.writer_info("worker-dead") is None
        coordinator.close()

    def test_refresh_self_heals_across_foreign_compaction(
            self, tmp_path):
        """A reader whose byte offsets predate a compaction must not
        wedge: a shrunken segment resets the offset, and a regrown
        segment whose old offset lands mid-line re-reads from the top
        (re-applied records are harmless — apply() is monotone)."""
        coordinator = JobJournal(str(tmp_path), "coordinator")
        for i in range(1, 4):
            coordinator.append_submit(f"job-{i:06d}", "tune", "alpha",
                                      {}, "t", "normal", float(i))
        reader = JobJournal(str(tmp_path), "worker-1")
        assert len(reader.refresh()) == 3  # offsets now at EOF
        # Coordinator compacts down to one job: the segment shrinks
        # below the reader's offset, which must reset and re-read.
        assert coordinator.compact(frozenset({"job-000003"})) is True
        records = reader.refresh()
        assert [r["job"] for r in records] == ["job-000003"]
        # Regrown segment whose old offset lands mid-line: the parse
        # failure at a previously-valid offset resets to 0 too (the
        # original bug left the offset stuck and the reader blind).
        reader2 = JobJournal(str(tmp_path), "worker-2")
        reader2.refresh()  # offsets at current EOF
        path = coordinator._segment_path
        offset = os.path.getsize(path)
        coordinator.close()
        big = json.dumps({"rec": "submit", "job": "job-000004",
                          "kind": "tune", "context": "alpha",
                          "payload": {"pad": "x" * (2 * offset + 64)},
                          "tenant": "t", "priority": "normal",
                          "created": 4.0, "v": 1})
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(big + "\n")
        records = reader2.refresh()
        assert [r["job"] for r in records] == ["job-000004"]
        assert reader2.refresh() == []  # healed: tailing resumes
        reader.close()
        reader2.close()

    def test_writer_reopens_segment_when_inode_changes(self, tmp_path):
        """An append after the segment file was replaced on disk (a
        compaction elsewhere) must land in the *current* file, not the
        unlinked inode."""
        journal = JobJournal(str(tmp_path), "coordinator")
        journal.append_submit("job-000001", "tune", "alpha", {}, "t",
                              "normal", 1.0)
        path = journal._segment_path
        os.remove(path)
        with open(path, "w", encoding="utf-8"):
            pass  # fresh empty inode, as compaction would leave
        journal.append_state("job-000001", "running", 2.0)
        with open(path, encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["rec"] == "state"
        journal.close()


class TestStaleCancelSafetyNet:
    def test_queued_external_cancel_with_dead_lease_resolves(
            self, tmp_path):
        """The cancel/claim race can leave a cancel-marked ``queued``
        job with no live lease and nobody committed to resolving it;
        the coordinator's poll-side net journals the terminal state."""

        async def scenario():
            journal = JobJournal(str(tmp_path), "coordinator")
            service = StubService(journal=journal, execute_jobs=False)
            try:
                record = service.jobs.submit("tune", "alpha", {})
                # A worker claimed, then died before journaling
                # anything; the coordinator's cancel saw the lease and
                # only dropped a marker.
                with open(journal._lease_path(record.id), "w",
                          encoding="utf-8") as fh:
                    json.dump({"job": record.id, "writer": "worker-x",
                               "pid": 2 ** 22 + 7, "heartbeat": 0.0},
                              fh)
                service.jobs.cancel(record.id)
                assert record.state == "queued"  # lease deferred it
                service.jobs.resolve_stale_cancels()
                return (record.state,
                        journal.cancel_requested(record.id),
                        journal.lease_info(record.id),
                        [e["seq"] for e in record.events])
            finally:
                service.shutdown()

        state, marker, lease, seqs = run(scenario())
        assert state == "cancelled"
        assert marker is False
        assert lease is None
        assert seqs == list(range(1, len(seqs) + 1))

    def test_live_lease_defers_to_the_worker(self, tmp_path):
        async def scenario():
            journal = JobJournal(str(tmp_path), "coordinator")
            service = StubService(journal=journal, execute_jobs=False)
            try:
                record = service.jobs.submit("tune", "alpha", {})
                other = JobJournal(str(tmp_path), "worker-y")
                other.claim(record.id)  # live: our own pid
                service.jobs.cancel(record.id)
                service.jobs.resolve_stale_cancels()
                state = record.state
                other.release(record.id)
                other.close()
                return state
            finally:
                service.shutdown()

        # Still queued: the live claim holder resolves it, not us.
        assert run(scenario()) == "queued"


class TestStreamTermination:
    def test_terminal_record_with_no_events_ends_stream(self, tmp_path):
        """A terminal record restored with zero events (its submit line
        survived a torn write, its event lines did not) must end the
        stream immediately, not park on ``changed`` forever."""

        async def scenario():
            service = StubService()
            try:
                from repro.service.jobs import JobRecord
                record = JobRecord("job-000001", "tune", "alpha", {})
                record.state = "done"
                service.jobs.jobs[record.id] = record
                service.jobs._order.append(record.id)
                events = []
                async for event in service.jobs.stream(record.id):
                    events.append(event)
                return events
            finally:
                service.shutdown()

        assert run(asyncio.wait_for(scenario(), timeout=5)) == []


class TestSegmentRotation:
    """``max_segment_bytes`` seals the live segment under a rotated
    name; readers keep matching it, compaction keeps merging it, and a
    foreign tailer's monotone folds absorb the rename harmlessly."""

    def fill(self, journal, jobs=8):
        for i in range(1, jobs + 1):
            job_id = "job-%06d" % i
            journal.append_submit(job_id, "tune", "alpha", {"i": i},
                                  "t", "normal", float(i))
            journal.append_event(job_id, {"event": "state",
                                          "state": "queued", "seq": 1})
            journal.append_state(job_id, "done", float(i) + 0.5)
        return ["job-%06d" % i for i in range(1, jobs + 1)]

    def test_rotation_seals_segments_and_replay_merges(self, tmp_path):
        journal = JobJournal(str(tmp_path), "coordinator",
                             max_segment_bytes=256)
        ids = self.fill(journal)
        rotated = [n for n in os.listdir(str(tmp_path))
                   if n.startswith("segment-coordinator.r")]
        assert journal.rotations == len(rotated) > 0
        # Replay merges rotated + live segments: every job, terminal.
        images = journal.replay()
        assert sorted(images) == ids
        assert all(images[i].state == "done" for i in ids)
        assert journal.stats()["rotations"] == journal.rotations
        journal.close()

    def test_foreign_tailer_survives_rotation(self, tmp_path):
        """A coordinator tailing a worker's segment across a rotation
        sees every record exactly once in effect: the renamed file is
        re-read from offset 0, and the monotone folds dedup it."""
        worker = JobJournal(str(tmp_path), "worker-a",
                            max_segment_bytes=256)
        reader = JobJournal(str(tmp_path), "coordinator")
        images = {}
        for record in reader.refresh():
            reader.apply(images, record)
        ids = self.fill(worker)
        for record in reader.refresh():
            reader.apply(images, record)
        assert sorted(images) == ids
        for job_id in ids:
            image = images[job_id]
            assert image.state == "done"
            assert [e["seq"] for e in image.events] == [1]  # deduped
        worker.close()
        reader.close()

    def test_compaction_merges_rotated_segments(self, tmp_path):
        journal = JobJournal(str(tmp_path), "coordinator",
                             max_segment_bytes=256)
        ids = self.fill(journal)
        assert journal.compact(frozenset(ids[-2:])) is True
        segments = [n for n in os.listdir(str(tmp_path))
                    if n.startswith("segment-")]
        assert segments == ["segment-coordinator.jsonl"]
        assert sorted(journal.replay()) == ids[-2:]
        journal.close()

    def test_guardrail_fields_round_trip(self, tmp_path):
        journal = JobJournal(str(tmp_path), "coordinator")
        journal.append_submit("job-000001", "tune", "alpha", {},
                              "t", "normal", 1.0, deadline_s=30.0,
                              retries=2, retry_backoff=0.1)
        journal.append_state("job-000001", "failed", 2.0,
                             error="boom")
        journal.append_state("job-000001", "queued", 2.1, attempt=1,
                             not_before=2.6)
        image = journal.replay()["job-000001"]
        assert image.deadline_s == 30.0
        assert image.retries == 2
        assert image.retry_backoff == 0.1
        # The attempt-1 requeue out-ranks the attempt-0 failure.
        assert image.state == "queued"
        assert image.attempt == 1
        assert image.not_before == 2.6
        # A terminal timeout stamp folds with the attempt it ended on.
        journal.append_state("job-000001", "failed", 40.0,
                             error="deadline", attempt=1, timeout=True)
        image = journal.replay()["job-000001"]
        assert image.state == "failed"
        assert image.timeout is True
        journal.close()
