"""Tests for access paths, the compression-aware cost model and the
what-if API."""

import pytest

from repro.compression import CompressionMethod
from repro.optimizer import (
    DEFAULT_COST_CONSTANTS,
    WhatIfOptimizer,
    best_access_plan,
    cost_access,
    mv_matches_query,
)
from repro.physical import Configuration, IndexDef, MVDefinition
from repro.storage import IndexKind
from repro.workload import (
    Aggregate,
    Comparison,
    InsertQuery,
    Join,
    SelectQuery,
    UpdateQuery,
    Workload,
)


def heap():
    return IndexDef("fact", (), kind=IndexKind.HEAP)


def base_config():
    return Configuration([
        heap(), IndexDef("dim", (), kind=IndexKind.HEAP),
    ])


@pytest.fixture()
def whatif(small_db, small_stats):
    return WhatIfOptimizer(small_db, small_stats)


def q_point():
    return SelectQuery(
        tables=("fact",),
        select_columns=("f_price",),
        predicates=(Comparison("f_cat", "=", "CAT_1"),),
    )


def q_agg_join():
    return SelectQuery(
        tables=("fact", "dim"),
        aggregates=(Aggregate("SUM", ("f_price",)),),
        joins=(Join("f_dkey", "d_key"),),
        predicates=(Comparison("d_group", "=", "G1"),),
        group_by=(),
    )


class TestAccessPaths:
    def test_seek_beats_scan_for_selective_predicate(self, whatif):
        config = base_config().add(IndexDef("fact", ("f_cat",),
                                            included_columns=("f_price",)))
        cost_with = whatif.cost(q_point(), config).total
        cost_without = whatif.cost(q_point(), base_config()).total
        assert cost_with < cost_without

    def test_covering_beats_lookup(self, small_db, small_stats, whatif):
        covering = IndexDef("fact", ("f_cat",), included_columns=("f_price",))
        lookup = IndexDef("fact", ("f_cat",))
        c_cover = whatif.cost(q_point(), base_config().add(covering)).total
        c_lookup = whatif.cost(q_point(), base_config().add(lookup)).total
        assert c_cover <= c_lookup

    def test_compressed_scan_tradeoff(self, small_db, small_stats):
        """Compressed index scans fewer pages but pays decompression
        CPU: the IO share must drop, the CPU share must grow.  Needs a
        real size estimator wired in (the default fallback sizes
        everything uncompressed)."""
        from repro.sizeest import SizeEstimator

        estimator = SizeEstimator(small_db, stats=small_stats)
        whatif = WhatIfOptimizer(
            small_db, small_stats,
            sizes=lambda ix: (
                estimator.estimate(ix).est_bytes,
                estimator.sizer.estimated_rows(ix),
            ),
        )
        scan_all = SelectQuery(
            tables=("fact",),
            select_columns=("f_cat", "f_qty", "f_price"),
        )
        plain = base_config().add(
            IndexDef("fact", ("f_cat",),
                     included_columns=("f_qty", "f_price"))
        )
        compressed = base_config().add(
            IndexDef("fact", ("f_cat",),
                     included_columns=("f_qty", "f_price"),
                     method=CompressionMethod.PAGE)
        )
        b_plain = whatif.cost(scan_all, plain)
        b_comp = whatif.cost(scan_all, compressed)
        assert b_comp.io < b_plain.io
        assert b_comp.cpu > b_plain.cpu

    def test_partial_index_only_when_filter_matches(self, small_stats):
        pred = Comparison("f_cat", "=", "CAT_1")
        partial = IndexDef("fact", ("f_qty",), filter=pred)
        plan = cost_access(
            partial, 8192.0, 100.0,
            predicates=(Comparison("f_cat", "=", "CAT_2"),),
            needed_columns=("f_qty",),
            stats=small_stats.table("fact"),
            constants=DEFAULT_COST_CONSTANTS,
            base_lookup=(heap(), 8192.0 * 40),
        )
        assert plan is None
        plan2 = cost_access(
            partial, 8192.0, 100.0,
            predicates=(pred,),
            needed_columns=("f_qty",),
            stats=small_stats.table("fact"),
            constants=DEFAULT_COST_CONSTANTS,
            base_lookup=(heap(), 8192.0 * 40),
        )
        assert plan2 is not None

    def test_best_access_plan_picks_minimum(self, small_db, small_stats):
        structures = [
            (heap(), 40 * 8192.0, 4000.0),
            (IndexDef("fact", ("f_cat",), included_columns=("f_price",)),
             10 * 8192.0, 4000.0),
        ]
        plan = best_access_plan(
            small_db, small_stats.table("fact"), "fact", structures,
            predicates=(Comparison("f_cat", "=", "CAT_1"),),
            needed_columns=("f_cat", "f_price"),
            constants=DEFAULT_COST_CONSTANTS,
        )
        assert plan.index.kind is IndexKind.SECONDARY
        assert plan.used_seek


class TestUpdateCosts:
    def test_more_indexes_cost_more(self, whatif):
        insert = InsertQuery("fact", 1000)
        light = base_config()
        heavy = light.add(IndexDef("fact", ("f_cat",))).add(
            IndexDef("fact", ("f_qty",))
        )
        assert whatif.cost(insert, heavy).total > whatif.cost(
            insert, light
        ).total

    def test_compression_adds_update_cpu(self, whatif):
        insert = InsertQuery("fact", 1000)
        plain = base_config().add(IndexDef("fact", ("f_cat",)))
        compressed = base_config().add(
            IndexDef("fact", ("f_cat",), method=CompressionMethod.PAGE)
        )
        assert whatif.cost(insert, compressed).cpu > whatif.cost(
            insert, plain
        ).cpu

    def test_page_costs_more_than_row_on_updates(self, whatif):
        insert = InsertQuery("fact", 1000)
        row = base_config().add(
            IndexDef("fact", ("f_cat",), method=CompressionMethod.ROW)
        )
        page = base_config().add(
            IndexDef("fact", ("f_cat",), method=CompressionMethod.PAGE)
        )
        assert whatif.cost(insert, page).cpu > whatif.cost(insert, row).cpu

    def test_update_and_delete_costable(self, whatif):
        config = base_config()
        upd = UpdateQuery("fact", ("f_price",),
                          (Comparison("f_cat", "=", "CAT_1"),))
        dele = UpdateQuery("fact", ("f_price",))
        assert whatif.cost(upd, config).total > 0
        assert whatif.cost(dele, config).total > 0


class TestMVMatching:
    def mv(self, predicates=(), group_by=("d_group",)):
        return MVDefinition(
            name="mv1",
            fact_table="fact",
            tables=("fact", "dim"),
            joins=(Join("f_dkey", "d_key"),),
            predicates=tuple(predicates),
            group_by=group_by,
            aggregates=(Aggregate("SUM", ("f_price",)),),
        )

    def query(self, predicates=(), group_by=("d_group",)):
        return SelectQuery(
            tables=("fact", "dim"),
            aggregates=(Aggregate("SUM", ("f_price",)),),
            joins=(Join("f_dkey", "d_key"),),
            predicates=tuple(predicates),
            group_by=group_by,
        )

    def test_exact_match(self):
        assert mv_matches_query(self.mv(), self.query())

    def test_group_mismatch(self):
        assert not mv_matches_query(
            self.mv(), self.query(group_by=("d_name",))
        )

    def test_residual_on_group_columns_ok(self):
        q = self.query(predicates=(Comparison("d_group", "=", "G1"),))
        assert mv_matches_query(self.mv(), q)

    def test_residual_on_non_group_columns_fails(self):
        q = self.query(predicates=(Comparison("f_qty", "<", 10),))
        assert not mv_matches_query(self.mv(), q)

    def test_mv_filter_must_be_implied(self):
        mv = self.mv(predicates=(Comparison("f_qty", "<", 10),))
        assert not mv_matches_query(mv, self.query())

    def test_missing_aggregate_fails(self):
        q = SelectQuery(
            tables=("fact", "dim"),
            aggregates=(Aggregate("MAX", ("f_price",)),),
            joins=(Join("f_dkey", "d_key"),),
            group_by=("d_group",),
        )
        assert not mv_matches_query(self.mv(), q)

    def test_mv_plan_used_when_cheaper(self, small_db, small_stats):
        whatif = WhatIfOptimizer(small_db, small_stats)
        mv_index = IndexDef(
            "mv1", ("d_group",), kind=IndexKind.CLUSTERED, mv=self.mv()
        )
        config = base_config().add(mv_index)
        breakdown = whatif.cost(self.query(), config)
        assert breakdown.used_mv


class TestWhatIfCaching:
    def test_cache_hit_on_irrelevant_change(self, small_db, small_stats):
        whatif = WhatIfOptimizer(small_db, small_stats)
        q = q_point()
        whatif.cost(q, base_config())
        calls = whatif.optimizer_calls
        # Adding a dim index does not change the fact-only query signature.
        config2 = base_config().add(IndexDef("dim", ("d_name",)))
        whatif.cost(q, config2)
        assert whatif.optimizer_calls == calls

    def test_cache_miss_on_relevant_change(self, small_db, small_stats):
        whatif = WhatIfOptimizer(small_db, small_stats)
        q = q_point()
        whatif.cost(q, base_config())
        calls = whatif.optimizer_calls
        config2 = base_config().add(IndexDef("fact", ("f_cat",)))
        whatif.cost(q, config2)
        assert whatif.optimizer_calls == calls + 1

    def test_workload_cost_weighting(self, small_db, small_stats):
        whatif = WhatIfOptimizer(small_db, small_stats)
        wl = Workload()
        wl.add(q_point(), weight=2.0)
        single = whatif.cost(q_point(), base_config()).total
        assert whatif.workload_cost(wl, base_config()) == pytest.approx(
            2.0 * single
        )
