"""End-to-end downstream-user scenario: define a schema, load data,
write the workload as SQL text, tune it, and validate the outcome.

This is the full public-API path a user of the library follows, glued
together in one place: catalog -> parser -> advisor -> executor ->
validation."""

import random

import pytest

from repro import (
    Column,
    Database,
    DatabaseStats,
    Executor,
    SizeEstimator,
    Table,
    Workload,
    parse_statement,
    tune,
    validate_recommendation,
)
from repro.catalog.datatypes import DateType, IntType
from repro.catalog import char
from repro.storage.index_build import IndexKind

SQL_WORKLOAD = [
    ("q_daily_sales",
     "SELECT SUM(amount) FROM orders "
     "WHERE status = 'shipped' AND day BETWEEN "
     "DATE '2020-02-01' AND DATE '2020-04-01'",
     8.0),
    ("q_by_region",
     "SELECT region, SUM(amount) FROM orders "
     "WHERE status = 'open' GROUP BY region",
     4.0),
    ("q_top_orders",
     "SELECT id, amount FROM orders WHERE amount > 900000 "
     "ORDER BY amount",
     2.0),
    ("load", "INSERT INTO orders BULK 500", 1.0),
]


def build_orders(n_rows=6000, seed=17):
    rng = random.Random(seed)
    table = Table(
        "orders",
        [
            Column("id", IntType(8)),
            Column("day", DateType()),
            Column("status", char(8)),
            Column("region", char(6)),
            Column("amount", IntType(8)),
        ],
        primary_key=("id",),
    )
    statuses = ["open", "shipped", "billed"]
    regions = ["north", "south", "east", "west"]
    epoch_2020 = 18262
    for i in range(n_rows):
        table.append_row((
            i,
            epoch_2020 + rng.randrange(366),
            rng.choice(statuses),
            rng.choice(regions),
            rng.randrange(1_000_000),
        ))
    return table


@pytest.fixture(scope="module")
def database():
    db = Database("shop")
    db.add_table(build_orders())
    return db


@pytest.fixture(scope="module")
def workload(database):
    wl = Workload()
    for name, sql, weight in SQL_WORKLOAD:
        statement = parse_statement(sql)
        if statement.is_select:
            statement.validate(database)
        wl.add(statement, weight=weight, name=name)
    return wl


class TestSQLRoundTrip:
    def test_statements_parse_to_expected_shapes(self, workload):
        by_name = {ws.name: ws.statement for ws in workload}
        assert by_name["q_daily_sales"].predicates
        assert by_name["q_by_region"].group_by == ("region",)
        assert by_name["q_top_orders"].order_by == ("amount",)
        assert by_name["load"].n_rows == 500

    def test_executor_agrees_with_brute_force(self, database, workload):
        executor = Executor(database)
        query = next(
            ws.statement for ws in workload if ws.name == "q_by_region"
        )
        result = executor.execute(query)
        rows = dict(result.rows)
        table = database.table("orders")
        expected: dict[str, int] = {}
        for status, region, amount in table.iter_rows(
            ("status", "region", "amount")
        ):
            if status == "open":
                expected[region] = expected.get(region, 0) + amount
        assert rows == expected


class TestTuneCustomSchema:
    def test_tuning_improves_and_validates(self, database, workload):
        stats = DatabaseStats(database)
        estimator = SizeEstimator(database, stats=stats)
        budget = database.total_data_bytes() * 0.3
        result = tune(database, workload, budget,
                      estimator=estimator, stats=stats)
        assert result.improvement > 0.1
        report = validate_recommendation(
            result, database, workload, stats=stats, estimator=estimator
        )
        assert report.recommendation_holds
        assert report.budget_holds

    def test_recommended_keys_match_the_workload(self, database, workload):
        result = tune(database, workload,
                      database.total_data_bytes() * 0.3)
        keyed_columns = {
            c
            for ix in result.configuration
            if ix.kind is IndexKind.SECONDARY
            for c in ix.key_columns
        }
        # Every secondary key column should be one the workload filters,
        # groups, or orders on.
        assert keyed_columns <= {"status", "day", "region", "amount"}
