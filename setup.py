"""Setup shim.

Kept so `pip install -e .` works in offline environments whose setuptools
predates PEP 660 editable-wheel support (falls back to `setup.py develop`
via `--no-use-pep517`). All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
