"""Ground-truth validation of advisor recommendations.

The advisor optimizes *estimated* workload cost over *estimated*
compressed sizes — the paper's metric.  This module closes the loop the
way a DBA would after deploying a recommendation: rebuild every
recommended structure on the full data (measured pages, no estimates),
re-cost the workload with those true sizes, and check that

* the recommendation still beats the base configuration,
* the configuration still fits the storage budget, and
* the per-index size estimates were within the advisor's error budget.

It also validates the optimizer's cardinality model against the real
executor (true qualifying-row counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.advisor.advisor import AdvisorResult
from repro.catalog.schema import Database
from repro.engine.executor import Executor
from repro.errors import ExecutionError
from repro.optimizer.constants import DEFAULT_COST_CONSTANTS, CostConstants
from repro.optimizer.whatif import WhatIfOptimizer
from repro.physical.index_def import IndexDef
from repro.sizeest.estimator import SizeEstimator
from repro.stats.column_stats import DatabaseStats
from repro.stats.selectivity import conjunction_selectivity
from repro.storage.index_build import IndexKind
from repro.workload.query import SelectQuery, Workload


@dataclass
class SizeCheck:
    """Estimated vs measured bytes of one recommended structure."""

    index: IndexDef
    estimated: float
    measured: float

    @property
    def ratio_error(self) -> float:
        """est/true - 1 (0 = perfect)."""
        if self.measured <= 0:
            return 0.0
        return self.estimated / self.measured - 1.0


@dataclass
class ValidationReport:
    """Outcome of validating one advisor recommendation."""

    estimated_improvement: float
    true_size_improvement: float
    consumed_true_bytes: float
    budget_bytes: float
    size_checks: list[SizeCheck] = field(default_factory=list)

    @property
    def recommendation_holds(self) -> bool:
        """The deployed configuration still beats the base."""
        return self.true_size_improvement > 0.0

    @property
    def budget_holds(self) -> bool:
        return self.consumed_true_bytes <= self.budget_bytes * 1.05 + 8192

    @property
    def max_abs_size_error(self) -> float:
        if not self.size_checks:
            return 0.0
        return max(abs(c.ratio_error) for c in self.size_checks)


def validate_recommendation(
    result: AdvisorResult,
    database: Database,
    workload: Workload,
    stats: DatabaseStats | None = None,
    estimator: SizeEstimator | None = None,
    constants: CostConstants = DEFAULT_COST_CONSTANTS,
) -> ValidationReport:
    """Re-cost an advisor result with fully measured structure sizes."""
    stats = stats or DatabaseStats(database)
    estimator = estimator or SizeEstimator(database, stats=stats)

    true_sizes: dict[IndexDef, float] = {}

    def true_lookup(index: IndexDef) -> tuple[float, float]:
        cached = true_sizes.get(index)
        if cached is None:
            cached = estimator.true_size(index)
            true_sizes[index] = cached
        return cached, estimator.sizer.estimated_rows(index)

    whatif = WhatIfOptimizer(
        database, stats, sizes=true_lookup, constants=constants
    )
    base_cost = whatif.workload_cost(workload, result.base_configuration)
    final_cost = whatif.workload_cost(workload, result.configuration)

    checks = [
        SizeCheck(
            index=ix,
            estimated=float(result.sizes.get(ix, 0.0)),
            measured=true_lookup(ix)[0],
        )
        for ix in result.configuration
    ]

    base_true = {
        ix.table: true_lookup(ix)[0] for ix in result.base_configuration
    }
    consumed = 0.0
    for ix in result.configuration:
        if ix.kind is IndexKind.SECONDARY or ix.is_mv_index:
            consumed += true_lookup(ix)[0]
        else:
            consumed += true_lookup(ix)[0] - base_true.get(ix.table, 0.0)

    return ValidationReport(
        estimated_improvement=result.improvement,
        true_size_improvement=(
            1.0 - final_cost / base_cost if base_cost > 0 else 0.0
        ),
        consumed_true_bytes=consumed,
        budget_bytes=result.budget_bytes,
        size_checks=checks,
    )


@dataclass
class SelectivityCheck:
    """Estimated vs true qualifying fraction for one query."""

    name: str
    estimated: float
    true: float

    @property
    def abs_error(self) -> float:
        return abs(self.estimated - self.true)


def validate_selectivities(
    database: Database,
    workload: Workload,
    stats: DatabaseStats | None = None,
) -> list[SelectivityCheck]:
    """Compare the optimizer's single-table selectivity estimates with
    true qualifying-row fractions from the executor."""
    stats = stats or DatabaseStats(database)
    executor = Executor(database)
    out: list[SelectivityCheck] = []
    for ws in workload.queries:
        query = ws.statement
        if not isinstance(query, SelectQuery) or len(query.tables) != 1:
            continue
        table = query.root_table
        predicates = query.predicates_of_table(database, table)
        if not predicates:
            continue
        est = conjunction_selectivity(stats.table(table), predicates)
        n_rows = database.table(table).num_rows
        if n_rows == 0:
            continue
        try:
            true_count = executor.count_matching(
                SelectQuery(tables=(table,), predicates=predicates)
            )
        except ExecutionError:
            continue
        out.append(
            SelectivityCheck(
                name=ws.name or str(query)[:40],
                estimated=est,
                true=true_count / n_rows,
            )
        )
    return out
