"""A small execution engine: runs SELECT statements against the real
in-memory data.

The advisor itself only needs optimizer *estimates* (as in the paper),
but the executor lets examples and tests validate semantics end-to-end:
MV contents equal re-running the defining query, selectivity estimates
can be compared with true match counts, and recommended plans can be
sanity-checked against brute force.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Database
from repro.errors import ExecutionError
from repro.workload.query import Aggregate, SelectQuery


@dataclass
class ResultSet:
    """Rows + column names of an executed query."""

    columns: tuple[str, ...]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, r)) for r in self.rows]


def _agg_name(agg: Aggregate) -> str:
    inner = " * ".join(agg.columns) if agg.columns else "*"
    return f"{agg.func.lower()}({inner})"


def _agg_init(agg: Aggregate):
    return 0 if agg.func in ("SUM", "COUNT", "AVG") else None


def _agg_input(agg: Aggregate, row: dict):
    if not agg.columns:
        return 1
    value = 1
    for col in agg.columns:
        v = row[col]
        if v is None:
            return None
        value *= v
    return value


def _agg_step(agg: Aggregate, state, row: dict):
    v = _agg_input(agg, row)
    if agg.func == "COUNT":
        return state + (1 if v is not None else 0)
    if v is None:
        return state
    if agg.func in ("SUM", "AVG"):
        return state + v
    if agg.func == "MIN":
        return v if state is None or v < state else state
    return v if state is None or v > state else state


def _agg_final(agg: Aggregate, state, count: int):
    if agg.func == "AVG":
        return state / count if count else None
    return state


class Executor:
    """Executes SELECT queries with hash joins + hash aggregation."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # ------------------------------------------------------------------
    def _join_rows(self, query: SelectQuery) -> tuple[list[dict], int]:
        """Materialize the joined, filtered row stream as dicts."""
        db = self.database
        fact = db.table(query.root_table)
        names = list(fact.column_names)
        rows = [dict(zip(names, r)) for r in fact.iter_rows()]

        joined = {query.root_table}
        pending = list(query.joins)
        guard = 0
        while pending:
            guard += 1
            if guard > 10 * (len(query.joins) + 1):
                raise ExecutionError("cannot order join conditions")
            join = pending.pop(0)
            side = None
            for table_name in query.tables:
                if table_name in joined:
                    continue
                table = db.table(table_name)
                if table.has_column(join.left_column) or table.has_column(
                    join.right_column
                ):
                    side = table
                    break
            if side is None:
                # Both sides already joined (redundant condition): filter.
                rows = [
                    r
                    for r in rows
                    if r[join.left_column] == r[join.right_column]
                ]
                continue
            if side.has_column(join.left_column):
                dim_col, probe_col = join.left_column, join.right_column
            else:
                dim_col, probe_col = join.right_column, join.left_column
            if not rows or probe_col not in rows[0]:
                pending.append(join)
                continue
            dim_names = side.column_names
            index: dict = {}
            pos = dim_names.index(dim_col)
            for drow in side.iter_rows():
                index.setdefault(drow[pos], []).append(drow)
            out = []
            for r in rows:
                for match in index.get(r[probe_col], ()):
                    merged = dict(r)
                    merged.update(zip(dim_names, match))
                    out.append(merged)
            rows = out
            joined.add(side.name)

        if query.predicates:
            rows = [
                r for r in rows
                if all(p.evaluate(r) for p in query.predicates)
            ]
        return rows, len(rows)

    # ------------------------------------------------------------------
    def execute(self, query: SelectQuery) -> ResultSet:
        """Run the query and return its result rows."""
        rows, _n = self._join_rows(query)

        out_cols = tuple(query.select_columns) + tuple(
            _agg_name(a) for a in query.aggregates
        )

        if query.group_by or query.aggregates:
            group_cols = query.group_by or ()
            groups: dict[tuple, list] = {}
            counts: dict[tuple, int] = {}
            for r in rows:
                key = tuple(r[c] for c in group_cols)
                state = groups.get(key)
                if state is None:
                    state = [_agg_init(a) for a in query.aggregates]
                    groups[key] = state
                    counts[key] = 0
                counts[key] += 1
                for i, agg in enumerate(query.aggregates):
                    state[i] = _agg_step(agg, state[i], r)
            result_rows = []
            extra_cols = [
                c for c in query.select_columns if c not in group_cols
            ]
            if extra_cols:
                raise ExecutionError(
                    f"non-grouped projection columns {extra_cols}"
                )
            for key, state in groups.items():
                projected = list(key)
                projected += [
                    _agg_final(a, s, counts[key])
                    for a, s in zip(query.aggregates, state)
                ]
                result_rows.append(tuple(projected))
            out_cols = tuple(group_cols) + tuple(
                _agg_name(a) for a in query.aggregates
            )
        else:
            cols = query.select_columns or (
                self.database.table(query.root_table).column_names
            )
            result_rows = [tuple(r[c] for c in cols) for r in rows]
            out_cols = tuple(cols)

        if query.order_by:
            positions = []
            for c in query.order_by:
                if c in out_cols:
                    positions.append(out_cols.index(c))
            result_rows.sort(
                key=lambda r: tuple(
                    ((r[p] is None), r[p]) for p in positions
                )
            )
        return ResultSet(columns=out_cols, rows=result_rows)

    # ------------------------------------------------------------------
    def count_matching(self, query: SelectQuery) -> int:
        """True qualifying-row count (for selectivity validation)."""
        _rows, n = self._join_rows(query)
        return n
