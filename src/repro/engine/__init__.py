"""Toy execution engine for validating semantics end-to-end."""

from repro.engine.executor import Executor, ResultSet
from repro.engine.validation import (
    SelectivityCheck,
    SizeCheck,
    ValidationReport,
    validate_recommendation,
    validate_selectivities,
)

__all__ = [
    "Executor",
    "ResultSet",
    "SizeCheck",
    "SelectivityCheck",
    "ValidationReport",
    "validate_recommendation",
    "validate_selectivities",
]
