"""Logical index definitions — the objects the advisor designs over.

An :class:`IndexDef` names a physical structure without materializing it:
(table or MV, key columns, included columns, kind, compression method,
optional partial-index filter).  Size comes from the size-estimation
framework; cost from the what-if optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.compression.base import CompressionMethod
from repro.errors import AdvisorError
from repro.physical.mv_def import MVDefinition
from repro.storage.index_build import IndexKind
from repro.workload.expr import Predicate


@dataclass(frozen=True)
class IndexDef:
    """A (possibly hypothetical) index.

    Attributes:
        table: base table name (or the MV name for an MV index).
        key_columns: ordered key.
        included_columns: non-key leaf columns (secondary only).
        kind: heap / clustered / secondary.
        method: compression package.
        filter: optional partial-index predicate.
        mv: the MV definition when this indexes a materialized view.
    """

    table: str
    key_columns: tuple[str, ...]
    included_columns: tuple[str, ...] = ()
    kind: IndexKind = IndexKind.SECONDARY
    method: CompressionMethod = CompressionMethod.NONE
    filter: Predicate | None = None
    mv: MVDefinition | None = None

    def __post_init__(self) -> None:
        if self.kind is not IndexKind.HEAP and not self.key_columns:
            raise AdvisorError(f"{self.kind} index on {self.table} needs keys")
        overlap = set(self.key_columns) & set(self.included_columns)
        if overlap:
            raise AdvisorError(f"columns {overlap} both key and included")

    # ------------------------------------------------------------------
    @property
    def is_partial(self) -> bool:
        return self.filter is not None

    @property
    def is_mv_index(self) -> bool:
        return self.mv is not None

    @property
    def is_compressed(self) -> bool:
        return self.method.is_compressed

    @property
    def column_sequence(self) -> tuple[str, ...]:
        """Key then included columns (leaf storage order)."""
        return self.key_columns + self.included_columns

    @property
    def column_set(self) -> frozenset[str]:
        return frozenset(self.column_sequence)

    # ------------------------------------------------------------------
    def with_method(self, method: CompressionMethod) -> "IndexDef":
        """The same index under a different compression package."""
        return replace(self, method=method)

    def uncompressed(self) -> "IndexDef":
        return self.with_method(CompressionMethod.NONE)

    def covers(self, columns) -> bool:
        """Whether the leaf rows contain every column in ``columns``
        (clustered indexes cover everything on their table)."""
        if self.kind in (IndexKind.CLUSTERED, IndexKind.HEAP):
            return True
        return set(columns) <= set(self.column_sequence)

    def key_prefix_length(self, equality_columns, range_columns=()) -> int:
        """How many leading key columns are usable by a seek: a maximal run
        of equality columns optionally followed by one range column."""
        usable = 0
        eq = set(equality_columns)
        rng = set(range_columns)
        for col in self.key_columns:
            if col in eq:
                usable += 1
            elif col in rng:
                usable += 1
                break
            else:
                break
        return usable

    # ------------------------------------------------------------------
    def display_name(self) -> str:
        # Memoized on the instance: enumeration tie-breaks render the
        # name for every candidate on every sweep.  Invisible to the
        # frozen dataclass's eq/hash, which use declared fields only.
        cached = self.__dict__.get("_display_cache")
        if cached is not None:
            return cached
        parts = [self.table, "_".join(self.key_columns) or "heap"]
        if self.included_columns:
            parts.append("incl_" + "_".join(self.included_columns))
        if self.kind is IndexKind.CLUSTERED:
            parts.append("cl")
        if self.is_partial:
            parts.append("part")
        if self.method.is_compressed:
            parts.append(self.method.value)
        name = "ix_" + "_".join(parts)
        object.__setattr__(self, "_display_cache", name)
        return name

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.display_name()
