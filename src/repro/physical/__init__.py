"""Physical design structures: index definitions, MVs, configurations."""

from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.physical.mv_def import MVDefinition, aggregate_column_name

__all__ = [
    "IndexDef",
    "MVDefinition",
    "aggregate_column_name",
    "Configuration",
]
