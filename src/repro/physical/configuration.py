"""Configurations: sets of indexes the what-if optimizer costs.

A configuration always contains exactly one *base structure* per table
(heap or clustered index) plus any number of secondary / partial / MV
indexes.  The advisor's enumeration moves between configurations by adding
indexes or swapping a table's base structure.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import AdvisorError
from repro.physical.index_def import IndexDef
from repro.storage.index_build import IndexKind


class Configuration:
    """An immutable set of :class:`IndexDef` (hashable, comparable)."""

    def __init__(self, indexes: Iterable[IndexDef] = ()) -> None:
        self._indexes = frozenset(indexes)
        self._ordered: tuple[IndexDef, ...] | None = None
        base_tables: dict[str, IndexDef] = {}
        for ix in self._indexes:
            if ix.kind in (IndexKind.HEAP, IndexKind.CLUSTERED) and not ix.is_mv_index:
                if ix.table in base_tables:
                    raise AdvisorError(
                        f"two base structures for table {ix.table!r}"
                    )
                base_tables[ix.table] = ix
        self._base = base_tables

    # ------------------------------------------------------------------
    @property
    def indexes(self) -> frozenset[IndexDef]:
        return self._indexes

    def __iter__(self) -> Iterator[IndexDef]:
        return iter(self._indexes)

    def __len__(self) -> int:
        return len(self._indexes)

    def __contains__(self, index: IndexDef) -> bool:
        return index in self._indexes

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Configuration)
            and self._indexes == other._indexes
        )

    def __hash__(self) -> int:
        return hash(self._indexes)

    def ordered(self) -> tuple[IndexDef, ...]:
        """Members in a stable, content-determined order (cached).

        ``frozenset`` iteration order follows the process hash seed;
        anything whose *result* can depend on member order — summing
        float costs, first-wins tie-breaking — iterates this instead so
        runs are reproducible across processes and PYTHONHASHSEED.
        """
        if self._ordered is None:
            self._ordered = tuple(sorted(self._indexes, key=repr))
        return self._ordered

    # ------------------------------------------------------------------
    def base_structure(self, table: str) -> IndexDef | None:
        """The heap/clustered structure of ``table`` (None if untracked)."""
        return self._base.get(table)

    def secondary_indexes(self, table: str | None = None) -> list[IndexDef]:
        out = [
            ix
            for ix in self._indexes
            if ix.kind is IndexKind.SECONDARY
            and (table is None or ix.table == table)
        ]
        return sorted(out, key=lambda ix: ix.display_name())

    def indexes_on(self, table: str) -> list[IndexDef]:
        return sorted(
            (ix for ix in self._indexes if ix.table == table),
            key=lambda ix: ix.display_name(),
        )

    # ------------------------------------------------------------------
    def add(self, index: IndexDef) -> "Configuration":
        """A new configuration with ``index`` added; adding a base
        structure replaces the table's existing base structure."""
        items = set(self._indexes)
        if index.kind in (IndexKind.HEAP, IndexKind.CLUSTERED) and not index.is_mv_index:
            existing = self._base.get(index.table)
            if existing is not None:
                items.discard(existing)
        items.add(index)
        return Configuration(items)

    def remove(self, index: IndexDef) -> "Configuration":
        if index not in self._indexes:
            raise AdvisorError(f"{index} not in configuration")
        return Configuration(self._indexes - {index})

    def replace(self, old: IndexDef, new: IndexDef) -> "Configuration":
        return self.remove(old).add(new)

    # ------------------------------------------------------------------
    def total_size(self, sizes: Mapping[IndexDef, float]) -> float:
        """Total bytes under a size assignment (estimates or truths)."""
        return sum(sizes[ix] for ix in self._indexes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = sorted(ix.display_name() for ix in self._indexes)
        return f"Configuration({names})"
