"""Materialized view definitions.

As in the paper's Appendix B, supported MVs are key–foreign-key join views
over a fact table with optional filters, GROUP BY and aggregation — the
class for which join synopses give usable samples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.datatypes import DataType, IntType, decimal
from repro.catalog.schema import Database
from repro.errors import WorkloadError
from repro.workload.expr import Predicate
from repro.workload.query import Aggregate, Join


def aggregate_column_name(agg: Aggregate) -> str:
    """Stable storage column name for an aggregate result."""
    inner = "_".join(agg.columns) if agg.columns else "all"
    return f"{agg.func.lower()}_{inner}"


@dataclass(frozen=True)
class MVDefinition:
    """A materialized view: FK joins + filter + group-by + aggregates.

    Attributes:
        name: view name (unique; used as the MV's "table" name).
        fact_table: the driving table whose FK closure provides joins.
        tables: every base table the view touches (fact first).
        joins: equi-join conditions (must follow declared FKs).
        predicates: conjunctive filter over base columns.
        group_by: grouping columns (empty means a join-projection view).
        aggregates: aggregate outputs (a COUNT(*) column is always
            maintained implicitly, per Appendix B.3).
    """

    name: str
    fact_table: str
    tables: tuple[str, ...]
    joins: tuple[Join, ...] = ()
    predicates: tuple[Predicate, ...] = ()
    group_by: tuple[str, ...] = ()
    aggregates: tuple[Aggregate, ...] = ()

    @property
    def has_aggregation(self) -> bool:
        return bool(self.group_by) or bool(self.aggregates)

    def storage_columns(self, database: Database) -> list[tuple[str, DataType]]:
        """(name, dtype) pairs of the MV's stored columns.

        Duplicate aggregates collapse to one column, and the implicit
        COUNT(*) maintenance column (Appendix B.3) is only added when no
        explicit COUNT(*) aggregate already provides it.
        """
        out: list[tuple[str, DataType]] = []
        seen: set[str] = set()
        if not self.has_aggregation:
            # Projection-only view: it stores the base columns its
            # definition references.
            for col in self.referenced_base_columns():
                if col not in seen:
                    seen.add(col)
                    out.append((col, _base_dtype(database, self.tables, col)))
            return out
        for col in self.group_by:
            if col not in seen:
                seen.add(col)
                out.append((col, _base_dtype(database, self.tables, col)))
        for agg in self.aggregates:
            name = aggregate_column_name(agg)
            if name not in seen:
                seen.add(name)
                out.append((name, _agg_dtype(database, self, agg)))
        if self.has_aggregation and "count_all" not in seen:
            out.append(("count_all", IntType(8)))
        return out

    def referenced_base_columns(self) -> tuple[str, ...]:
        """Base-table columns the view definition reads."""
        cols: list[str] = []
        for p in self.predicates:
            cols.extend(p.columns())
        for j in self.joins:
            cols.extend((j.left_column, j.right_column))
        cols.extend(self.group_by)
        for agg in self.aggregates:
            cols.extend(agg.columns)
        return tuple(dict.fromkeys(cols))


def _base_dtype(database: Database, tables: tuple[str, ...], column: str) -> DataType:
    for tname in tables:
        table = database.table(tname)
        if table.has_column(column):
            return table.column(column).dtype
    raise WorkloadError(f"MV column {column!r} not found in {tables}")


def _agg_dtype(database: Database, mv: MVDefinition, agg: Aggregate) -> DataType:
    if agg.func == "COUNT":
        return IntType(8)
    if agg.func in ("MIN", "MAX") and len(agg.columns) == 1:
        return _base_dtype(database, mv.tables, agg.columns[0])
    # SUM / AVG (and multi-column arithmetic like SUM(a*b)) accumulate into
    # a wide decimal.
    return decimal()
