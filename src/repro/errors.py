"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library raises with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CatalogError(ReproError):
    """Schema/table/column definition or lookup problem."""


class StorageError(ReproError):
    """Row serialization or page packing problem."""


class CompressionError(ReproError):
    """Invalid compression method or codec misuse."""


class StatisticsError(ReproError):
    """Statistics construction or estimator input problem."""


class SamplingError(ReproError):
    """Sample manager / join synopsis construction problem."""


class SizeEstimationError(ReproError):
    """Index size estimation framework problem (infeasible constraints...)."""


class WorkloadError(ReproError):
    """Malformed query/statement or workload."""


class ParseError(WorkloadError):
    """SQL text could not be parsed into the query IR."""


class OptimizerError(ReproError):
    """What-if optimizer was asked to cost something it cannot."""


class AdvisorError(ReproError):
    """Physical design advisor configuration or search problem."""


class ExecutionError(ReproError):
    """The toy execution engine could not run a statement."""


class ServiceError(ReproError):
    """Tuning-service request or lifecycle problem."""


class BackpressureError(ServiceError):
    """The service's bounded request queue is full; retry later."""


class QuotaExceededError(BackpressureError):
    """One tenant's admission quota is exhausted; retry later.

    A per-tenant (not global) backpressure signal: the HTTP layer maps
    it to 429 so a client can tell "the service is full" (503) apart
    from "I am over my own allowance" (429)."""


class JobError(ServiceError):
    """Job submission, lookup, or lifecycle problem."""


class JobCancelled(JobError):
    """A tuning job was cancelled mid-run.

    Raised *into* a running advisor through its progress hook: the run
    unwinds at the next progress event, which is what bounds
    cancellation latency to one greedy step."""


class JobDeadlineExceeded(JobError):
    """A job overran its submission ``deadline_s``.

    Enforced through the same progress-hook path as cancellation, so a
    deadlined run unwinds within one greedy step of expiry; the job is
    journaled terminal ``failed`` with a ``timeout`` marker (never
    retried — the budget covers all attempts)."""
