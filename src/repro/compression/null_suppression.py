"""NULL suppression codec (SQL Server ROW compression).

Each value is stored as a one-byte length header plus its padding-stripped
bytes.  Order independent: the page footprint is the sum of per-value
footprints regardless of tuple order.
"""

from __future__ import annotations

from repro.compression.base import ColumnCodec

#: Per-value header: length (and sign flag) byte.
VALUE_HEADER = 1


class NullSuppressionCodec(ColumnCodec):
    """Stores ``1 + len(stripped)`` bytes per value."""

    def __init__(self, column) -> None:
        super().__init__(column)
        self._bytes = 0

    def add(self, stripped: bytes) -> int:
        self.count += 1
        self._bytes += VALUE_HEADER + len(stripped)
        return self._bytes

    def size(self) -> int:
        return self._bytes

    def reset(self) -> None:
        super().reset()
        self._bytes = 0
