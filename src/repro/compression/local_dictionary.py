"""Page-local dictionary codec (part of SQL Server PAGE compression).

Per column per page: values that repeat enough to pay for a dictionary
entry are replaced by small pointers into an on-page dictionary; others are
stored as in NULL suppression.  Order dependent: which values co-occur on a
page determines repetition counts — exactly the property the paper's
ORD-DEP deduction (Section 4.2) models with run lengths and per-page
distinct value counts.

Accounting per distinct value ``v`` with stripped length ``L`` and on-page
count ``c`` (``ptr`` = pointer width):

* dictionary-encoded: ``c * ptr + (1 + L)``  (entry stored once)
* plain (NS):         ``c * (1 + L)``

The codec charges ``min`` of the two per distinct value and keeps the total
incrementally — O(1) per add, *including* the pointer-width transition.
Pointer width is 1 byte up to 256 distinct values on the page, 2 bytes
beyond; both widths' totals are maintained on every count change, so
crossing the boundary just switches which running total ``size()``
exposes instead of rescanning all distinct values (the rescan made a
pathological page — many distinct values arriving right at the
boundary — O(distinct) per row).
"""

from __future__ import annotations

from repro.compression.base import ColumnCodec

VALUE_HEADER = 1
DICT_OVERHEAD = 4  # per page per column: dictionary header

#: distinct values a 1-byte on-page pointer can address.
_PTR1_LIMIT = 256


def _contribution(length: int, count: int, ptr: int) -> int:
    """min(dict-encoded, plain) bytes for one distinct value."""
    plain = count * (VALUE_HEADER + length)
    encoded = count * ptr + (VALUE_HEADER + length)
    return min(plain, encoded)


class LocalDictionaryCodec(ColumnCodec):
    """Per-page dictionary over padding-stripped values."""

    def __init__(self, column) -> None:
        super().__init__(column)
        self._counts: dict[bytes, int] = {}
        self._ptr = 1
        #: running totals under a 1-byte and a 2-byte pointer; the
        #: current width selects which one size() reads.
        self._totals = [0, 0]

    def add(self, stripped: bytes) -> int:
        self.count += 1
        counts = self._counts
        totals = self._totals
        length = len(stripped)
        old = counts.get(stripped, 0)
        if old:
            totals[0] -= _contribution(length, old, 1)
            totals[1] -= _contribution(length, old, 2)
        counts[stripped] = old + 1
        totals[0] += _contribution(length, old + 1, 1)
        totals[1] += _contribution(length, old + 1, 2)
        if self._ptr == 1 and len(counts) > _PTR1_LIMIT:
            self._ptr = 2
        return DICT_OVERHEAD + totals[self._ptr - 1]

    def size(self) -> int:
        if self.count == 0:
            return 0
        return DICT_OVERHEAD + self._totals[self._ptr - 1]

    def distinct_on_page(self) -> int:
        """Distinct values currently on the page (exposed for tests and for
        validating the paper's DV() approximation)."""
        return len(self._counts)

    def reset(self) -> None:
        super().reset()
        self._counts = {}
        self._ptr = 1
        self._totals = [0, 0]
