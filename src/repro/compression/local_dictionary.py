"""Page-local dictionary codec (part of SQL Server PAGE compression).

Per column per page: values that repeat enough to pay for a dictionary
entry are replaced by small pointers into an on-page dictionary; others are
stored as in NULL suppression.  Order dependent: which values co-occur on a
page determines repetition counts — exactly the property the paper's
ORD-DEP deduction (Section 4.2) models with run lengths and per-page
distinct value counts.

Accounting per distinct value ``v`` with stripped length ``L`` and on-page
count ``c`` (``ptr`` = pointer width):

* dictionary-encoded: ``c * ptr + (1 + L)``  (entry stored once)
* plain (NS):         ``c * (1 + L)``

The codec charges ``min`` of the two per distinct value and keeps the total
incrementally (O(1) per add).  Pointer width is 1 byte up to 256 distinct
values on the page, 2 bytes beyond (a rare transition that triggers a full
O(distinct) recount).
"""

from __future__ import annotations

from repro.compression.base import ColumnCodec

VALUE_HEADER = 1
DICT_OVERHEAD = 4  # per page per column: dictionary header


def _contribution(length: int, count: int, ptr: int) -> int:
    """min(dict-encoded, plain) bytes for one distinct value."""
    plain = count * (VALUE_HEADER + length)
    encoded = count * ptr + (VALUE_HEADER + length)
    return min(plain, encoded)


class LocalDictionaryCodec(ColumnCodec):
    """Per-page dictionary over padding-stripped values."""

    def __init__(self, column) -> None:
        super().__init__(column)
        self._counts: dict[bytes, int] = {}
        self._ptr = 1
        self._total = 0

    def add(self, stripped: bytes) -> None:
        self.count += 1
        counts = self._counts
        old = counts.get(stripped, 0)
        if old:
            self._total -= _contribution(len(stripped), old, self._ptr)
        counts[stripped] = old + 1
        self._total += _contribution(len(stripped), old + 1, self._ptr)
        if self._ptr == 1 and len(counts) > 256:
            self._ptr = 2
            self._recount()

    def _recount(self) -> None:
        self._total = sum(
            _contribution(len(v), c, self._ptr)
            for v, c in self._counts.items()
        )

    def size(self) -> int:
        if self.count == 0:
            return 0
        return DICT_OVERHEAD + self._total

    def distinct_on_page(self) -> int:
        """Distinct values currently on the page (exposed for tests and for
        validating the paper's DV() approximation)."""
        return len(self._counts)

    def reset(self) -> None:
        super().reset()
        self._counts = {}
        self._ptr = 1
        self._total = 0
