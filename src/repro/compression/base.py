"""Compression method taxonomy and the incremental codec interface.

The paper (Section 4.2) splits compression schemes into two groups:

* **ORD-IND** (order independent): the compressed size of an index does not
  depend on the order of tuples — NULL suppression and *global* dictionary
  encoding.
* **ORD-DEP** (order dependent): the size depends on the tuple order within
  each page — page-local dictionary encoding, prefix suppression, RLE.

SQL Server packages these as ROW (NULL suppression — ORD-IND) and PAGE
(NULL suppression + prefix + local dictionary — ORD-DEP); we mirror that
and additionally expose GLOBAL_DICT and RLE codecs.

Codecs are *incremental*: values are fed one at a time and the codec can
report the exact number of bytes the column would occupy on the current
page at any moment.  The page packer uses this to fill 8 KiB pages
exactly, which is what makes measured compression fractions respond to
value distributions the way the paper requires.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.catalog.column import Column
from repro.errors import CompressionError


class CompressionMethod(enum.Enum):
    """Compression applied to an index (SQL Server style packages)."""

    NONE = "none"
    ROW = "row"            # NULL suppression
    PAGE = "page"          # NULL suppression + prefix + local dictionary
    GLOBAL_DICT = "gdict"  # per-index global dictionary
    RLE = "rle"            # run length encoding
    DELTA = "delta"        # delta-of-previous, zig-zag varint
    BITPACK = "bitpack"    # global fixed-bit-width packing

    @property
    def is_compressed(self) -> bool:
        return self is not CompressionMethod.NONE

    @property
    def is_order_dependent(self) -> bool:
        """ORD-DEP per Section 4.2 (size sensitive to tuple order)."""
        return self in (
            CompressionMethod.PAGE,
            CompressionMethod.RLE,
            CompressionMethod.DELTA,
        )

    @property
    def is_order_independent(self) -> bool:
        return self.is_compressed and not self.is_order_dependent

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Compression variants an advisor considers per candidate index (as in SQL
#: Server: uncompressed, ROW, PAGE).
ADVISOR_METHODS: tuple[CompressionMethod, ...] = (
    CompressionMethod.NONE,
    CompressionMethod.ROW,
    CompressionMethod.PAGE,
)


def strip_value(raw: bytes, column: Column) -> bytes:
    """NULL/padding suppression primitive.

    For integer-backed types this removes leading ``0x00`` (non-negative)
    or ``0xFF`` (negative) bytes; for character types it removes trailing
    ``0x00`` padding.  At least one byte is kept for non-empty semantics
    except fully-padded (NULL) values which strip to ``b""``.
    """
    if column.dtype.is_character:
        return raw.rstrip(b"\x00")
    lead = raw[0:1]
    if lead == b"\x00":
        stripped = raw.lstrip(b"\x00")
    elif lead == b"\xff":
        stripped = raw.lstrip(b"\xff")
        # Keep one sign byte so the value remains decodable.
        if not stripped or stripped[0] < 0x80:
            stripped = b"\xff" + stripped
    else:
        stripped = raw
    return stripped


class ColumnCodec:
    """Incremental per-column, per-page codec.

    Subclasses implement :meth:`add` and :meth:`size`.  ``size`` must be the
    exact byte footprint of this column on the current page, including any
    per-page metadata the scheme needs (stored prefixes, dictionaries...).
    ``add`` returns that same footprint *after* the value lands, so the
    page packer's hot loop gets the running size from the call it already
    makes instead of a second ``size()`` pass per row.
    """

    def __init__(self, column: Column) -> None:
        self.column = column
        self.count = 0

    def add(self, stripped: bytes) -> int:
        """Feed the next (already padding-stripped) value; returns the
        column's exact on-page size after the add (== :meth:`size`)."""
        raise NotImplementedError

    def size(self) -> int:
        """Exact bytes this column occupies on the current page."""
        raise NotImplementedError

    def reset(self) -> None:
        """Start a fresh page."""
        self.count = 0


class RawCodec(ColumnCodec):
    """No compression: fixed-width storage."""

    def add(self, stripped: bytes) -> int:
        self.count += 1
        return self.count * self.column.width

    def size(self) -> int:
        return self.count * self.column.width


class MinOfCodec(ColumnCodec):
    """Composite codec: the engine stores whichever representation is
    smallest on this page (used by the PAGE package to pick prefix vs
    dictionary per column per page, as SQL Server's page compression
    effectively does)."""

    def __init__(self, column: Column, parts: Sequence[ColumnCodec]) -> None:
        super().__init__(column)
        if not parts:
            raise CompressionError("MinOfCodec needs at least one part")
        self.parts = list(parts)

    def add(self, stripped: bytes) -> int:
        self.count += 1
        best = None
        for part in self.parts:
            s = part.add(stripped)
            if best is None or s < best:
                best = s
        return best

    def size(self) -> int:
        return min(part.size() for part in self.parts)

    def reset(self) -> None:
        super().reset()
        for part in self.parts:
            part.reset()
