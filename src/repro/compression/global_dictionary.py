"""Global dictionary codec (one dictionary per column per index).

IBM DB2-style: a single dictionary shared by all pages of a table
partition/index.  Every value on a page is a fixed-width pointer whose
width depends on the column's index-wide distinct count, so the per-page
footprint is order *independent* — the dictionary itself is charged once
per index via :func:`global_dictionary_overhead`.
"""

from __future__ import annotations

from typing import Iterable

from repro.compression.base import ColumnCodec


def pointer_width(n_distinct: int) -> int:
    """Bytes needed to address ``n_distinct`` dictionary entries."""
    if n_distinct <= 0:
        return 1
    width = 1
    capacity = 256
    while capacity < n_distinct:
        width += 1
        capacity *= 256
    return width


def global_dictionary_overhead(distinct_values: Iterable[bytes]) -> int:
    """Index-level bytes for the dictionary itself (entries + length
    bytes)."""
    return sum(1 + len(v) for v in distinct_values)


class GlobalDictionaryCodec(ColumnCodec):
    """Fixed-width pointers into an index-wide dictionary.

    Args:
        column: the column being encoded.
        n_distinct: index-wide distinct count of this column (decides the
            pointer width).
    """

    def __init__(self, column, n_distinct: int) -> None:
        super().__init__(column)
        self._ptr = pointer_width(n_distinct)

    def add(self, stripped: bytes) -> int:
        self.count += 1
        return self.count * self._ptr

    def size(self) -> int:
        return self.count * self._ptr

    @property
    def ptr_width(self) -> int:
        return self._ptr
