"""Codec factories for the compression packages an index can use."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.catalog.column import Column
from repro.compression.base import (
    ColumnCodec,
    CompressionMethod,
    MinOfCodec,
    RawCodec,
)
from repro.compression.bitpack import BitPackCodec
from repro.compression.delta import DeltaCodec
from repro.compression.global_dictionary import GlobalDictionaryCodec
from repro.compression.local_dictionary import LocalDictionaryCodec
from repro.compression.null_suppression import NullSuppressionCodec
from repro.compression.prefix import PrefixCodec
from repro.compression.rle import RunLengthCodec
from repro.errors import CompressionError


def make_codec(
    method: CompressionMethod,
    column: Column,
    n_distinct: int | None = None,
) -> ColumnCodec:
    """Build the per-column codec for ``method``.

    Args:
        method: the compression package.
        column: the column to encode.
        n_distinct: index-wide distinct count, required by GLOBAL_DICT.
    """
    if method is CompressionMethod.NONE:
        return RawCodec(column)
    if method is CompressionMethod.ROW:
        return NullSuppressionCodec(column)
    if method is CompressionMethod.PAGE:
        # SQL Server page compression: ROW first, then prefix + dictionary.
        # Per column per page the engine keeps whichever is smallest; a
        # column never ends up larger than its ROW-compressed form.
        return MinOfCodec(
            column,
            [
                NullSuppressionCodec(column),
                PrefixCodec(column),
                LocalDictionaryCodec(column),
            ],
        )
    if method is CompressionMethod.GLOBAL_DICT:
        if n_distinct is None:
            raise CompressionError("GLOBAL_DICT codec needs n_distinct")
        return GlobalDictionaryCodec(column, n_distinct)
    if method is CompressionMethod.RLE:
        return RunLengthCodec(column)
    if method is CompressionMethod.DELTA:
        return DeltaCodec(column)
    if method is CompressionMethod.BITPACK:
        if n_distinct is None:
            raise CompressionError("BITPACK codec needs n_distinct")
        return BitPackCodec(column, n_distinct)
    raise CompressionError(f"unknown compression method {method!r}")


def make_codecs(
    method: CompressionMethod,
    columns: Sequence[Column],
    n_distinct: Mapping[str, int] | None = None,
) -> list[ColumnCodec]:
    """Per-column codecs for an index storing ``columns``."""
    distincts = n_distinct or {}
    return [
        make_codec(method, col, distincts.get(col.name))
        for col in columns
    ]
