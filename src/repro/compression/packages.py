"""Codec factories for the compression packages an index can use."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.catalog.column import Column
from repro.compression.base import (
    ColumnCodec,
    CompressionMethod,
    RawCodec,
)
from repro.compression.bitpack import BitPackCodec
from repro.compression.delta import DeltaCodec
from repro.compression.global_dictionary import GlobalDictionaryCodec
from repro.compression.local_dictionary import (
    DICT_OVERHEAD,
    _PTR1_LIMIT,
)
from repro.compression.null_suppression import NullSuppressionCodec
from repro.compression.prefix import (
    ANCHOR_OVERHEAD,
    common_prefix_len,
)
from repro.compression.rle import RunLengthCodec
from repro.errors import CompressionError

#: Shared per-value header byte (identical in the NS, prefix and local
#: dictionary accountings the PAGE package fuses).
_VALUE_HEADER = 1


class PageCodec(ColumnCodec):
    """SQL Server PAGE compression for one column, fused.

    Byte-identical to ``MinOfCodec([NullSuppressionCodec, PrefixCodec,
    LocalDictionaryCodec])`` — the same three accountings, the same
    per-page ``min`` — but maintained inline in a single ``add``.  The
    composite pays three dispatched sub-adds per value, and PAGE is the
    codec SampleCF runs most, so the fusion is visible in advisor wall
    time.  ``tests/test_compression_codecs.py`` pins the equivalence
    against the composite on randomized data.
    """

    def __init__(self, column) -> None:
        super().__init__(column)
        # NULL-suppression accounting.
        self._ns_bytes = 0
        # Prefix accounting.
        self._prefix: bytes | None = None
        self._sum_len = 0
        # Local-dictionary accounting.
        self._counts: dict[bytes, int] = {}
        self._ptr = 1
        self._totals = [0, 0]

    def add(self, stripped: bytes) -> int:
        self.count += 1
        count = self.count
        length = len(stripped)

        self._ns_bytes += _VALUE_HEADER + length
        ns = self._ns_bytes

        self._sum_len += length
        prefix = self._prefix
        if prefix is None:
            self._prefix = prefix = stripped
        elif prefix:
            keep = common_prefix_len(prefix, stripped)
            if keep < len(prefix):
                self._prefix = prefix = prefix[:keep]
        p = len(prefix)
        pre = (
            ANCHOR_OVERHEAD + p + count * _VALUE_HEADER
            + (self._sum_len - count * p)
        )

        counts = self._counts
        totals = self._totals
        # _contribution(length, c, ptr) = min(c * header, c * ptr +
        # header) with header = VALUE_HEADER + length, inlined (it runs
        # twice per add, four times on repeats — the hottest arithmetic
        # in SampleCF).
        header = _VALUE_HEADER + length
        old = counts.get(stripped, 0)
        new = old + 1
        counts[stripped] = new
        if old:
            plain = old * header
            enc = old + header
            totals[0] -= plain if plain < enc else enc
            enc = old + old + header
            totals[1] -= plain if plain < enc else enc
        plain = new * header
        enc = new + header
        totals[0] += plain if plain < enc else enc
        enc = new + new + header
        totals[1] += plain if plain < enc else enc
        if self._ptr == 1 and len(counts) > _PTR1_LIMIT:
            self._ptr = 2
        dic = DICT_OVERHEAD + totals[self._ptr - 1]

        if pre < ns:
            ns = pre
        if dic < ns:
            ns = dic
        return ns

    def size(self) -> int:
        if self.count == 0:
            return 0
        ns = self._ns_bytes
        p = len(self._prefix) if self._prefix else 0
        pre = (
            ANCHOR_OVERHEAD + p + self.count * _VALUE_HEADER
            + (self._sum_len - self.count * p)
        )
        dic = DICT_OVERHEAD + self._totals[self._ptr - 1]
        return min(ns, pre, dic)

    def reset(self) -> None:
        super().reset()
        self._ns_bytes = 0
        self._prefix = None
        self._sum_len = 0
        self._counts = {}
        self._ptr = 1
        self._totals = [0, 0]


def make_codec(
    method: CompressionMethod,
    column: Column,
    n_distinct: int | None = None,
) -> ColumnCodec:
    """Build the per-column codec for ``method``.

    Args:
        method: the compression package.
        column: the column to encode.
        n_distinct: index-wide distinct count, required by GLOBAL_DICT.
    """
    if method is CompressionMethod.NONE:
        return RawCodec(column)
    if method is CompressionMethod.ROW:
        return NullSuppressionCodec(column)
    if method is CompressionMethod.PAGE:
        # SQL Server page compression: ROW first, then prefix + dictionary.
        # Per column per page the engine keeps whichever is smallest; a
        # column never ends up larger than its ROW-compressed form.
        # PageCodec fuses the three accountings (byte-identical to the
        # MinOfCodec composite of NS + prefix + local dictionary).
        return PageCodec(column)
    if method is CompressionMethod.GLOBAL_DICT:
        if n_distinct is None:
            raise CompressionError("GLOBAL_DICT codec needs n_distinct")
        return GlobalDictionaryCodec(column, n_distinct)
    if method is CompressionMethod.RLE:
        return RunLengthCodec(column)
    if method is CompressionMethod.DELTA:
        return DeltaCodec(column)
    if method is CompressionMethod.BITPACK:
        if n_distinct is None:
            raise CompressionError("BITPACK codec needs n_distinct")
        return BitPackCodec(column, n_distinct)
    raise CompressionError(f"unknown compression method {method!r}")


def make_codecs(
    method: CompressionMethod,
    columns: Sequence[Column],
    n_distinct: Mapping[str, int] | None = None,
) -> list[ColumnCodec]:
    """Per-column codecs for an index storing ``columns``."""
    distincts = n_distinct or {}
    return [
        make_codec(method, col, distincts.get(col.name))
        for col in columns
    ]
