"""Prefix suppression codec (part of SQL Server PAGE compression).

Per column per page, the longest common prefix of all (stripped) values is
stored once in the page's anchor record; each value then stores only its
suffix plus a one-byte header.  Order *dependent* in general page fills
(which values share a page determines the common prefix).

Incremental accounting: with ``n`` values of total stripped length ``S``
and common prefix length ``p``, the column occupies::

    (2 + p)            -- anchor: length byte + prefix bytes (+1 marker)
    + n * 1            -- per-value header
    + (S - n * p)      -- per-value suffixes

The common prefix can only shrink as values are added, so ``p`` and ``S``
maintain the size in O(len(value)) per add.
"""

from __future__ import annotations

from repro.compression.base import ColumnCodec

ANCHOR_OVERHEAD = 2
VALUE_HEADER = 1


def common_prefix_len(a: bytes, b: bytes) -> int:
    """Length of the longest common prefix of two byte strings."""
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i


class PrefixCodec(ColumnCodec):
    """Anchor-prefix compression over padding-stripped values."""

    def __init__(self, column) -> None:
        super().__init__(column)
        self._prefix: bytes | None = None
        self._sum_len = 0

    def add(self, stripped: bytes) -> int:
        self.count += 1
        self._sum_len += len(stripped)
        if self._prefix is None:
            self._prefix = stripped
        elif self._prefix:
            keep = common_prefix_len(self._prefix, stripped)
            if keep < len(self._prefix):
                self._prefix = self._prefix[:keep]
        p = len(self._prefix)
        return (
            ANCHOR_OVERHEAD
            + p
            + self.count * VALUE_HEADER
            + (self._sum_len - self.count * p)
        )

    def size(self) -> int:
        if self.count == 0:
            return 0
        p = len(self._prefix) if self._prefix else 0
        return (
            ANCHOR_OVERHEAD
            + p
            + self.count * VALUE_HEADER
            + (self._sum_len - self.count * p)
        )

    def reset(self) -> None:
        super().reset()
        self._prefix = None
        self._sum_len = 0
