"""Run-length encoding codec.

Stores each maximal run of equal adjacent values once, plus a two-byte run
length.  Strongly order dependent — the paper's Section 8 notes RLE's
sensitivity to sort order, and its ORD-DEP column-extrapolation deduction
"in principle" applies to RLE; we implement it so that claim is testable.
"""

from __future__ import annotations

from repro.compression.base import ColumnCodec

VALUE_HEADER = 1
RUN_COUNTER = 2


class RunLengthCodec(ColumnCodec):
    """Per-page RLE over padding-stripped values."""

    def __init__(self, column) -> None:
        super().__init__(column)
        self._last: bytes | None = None
        self._have_last = False
        self._bytes = 0
        self._runs = 0

    def add(self, stripped: bytes) -> int:
        self.count += 1
        if self._have_last and stripped == self._last:
            return self._bytes
        self._last = stripped
        self._have_last = True
        self._runs += 1
        self._bytes += VALUE_HEADER + len(stripped) + RUN_COUNTER
        return self._bytes

    def size(self) -> int:
        return self._bytes

    @property
    def run_count(self) -> int:
        """Number of runs on the current page (exposed for the average
        run-length statistics the ORD-DEP deduction reasons about)."""
        return self._runs

    def reset(self) -> None:
        super().reset()
        self._last = None
        self._have_last = False
        self._bytes = 0
        self._runs = 0
