"""Compression codecs: NULL suppression, prefix, dictionaries, RLE."""

from repro.compression.base import (
    ADVISOR_METHODS,
    ColumnCodec,
    CompressionMethod,
    MinOfCodec,
    RawCodec,
    strip_value,
)
from repro.compression.bitpack import BitPackCodec, bits_for
from repro.compression.delta import DeltaCodec, varint_len, zigzag
from repro.compression.global_dictionary import (
    GlobalDictionaryCodec,
    global_dictionary_overhead,
    pointer_width,
)
from repro.compression.local_dictionary import LocalDictionaryCodec
from repro.compression.null_suppression import NullSuppressionCodec
from repro.compression.packages import make_codec, make_codecs
from repro.compression.prefix import PrefixCodec, common_prefix_len
from repro.compression.rle import RunLengthCodec

__all__ = [
    "CompressionMethod",
    "ADVISOR_METHODS",
    "ColumnCodec",
    "RawCodec",
    "MinOfCodec",
    "strip_value",
    "NullSuppressionCodec",
    "PrefixCodec",
    "common_prefix_len",
    "LocalDictionaryCodec",
    "GlobalDictionaryCodec",
    "global_dictionary_overhead",
    "pointer_width",
    "RunLengthCodec",
    "DeltaCodec",
    "zigzag",
    "varint_len",
    "BitPackCodec",
    "bits_for",
    "make_codec",
    "make_codecs",
]
