"""Delta encoding codec.

Stores the first value of a page in full, then only the difference of
each value from its predecessor, zig-zag varint encoded.  Sorted runs of
near-adjacent integers (surrogate keys, dates) shrink to one or two bytes
per row; random orders gain nothing — delta encoding is strongly order
dependent (ORD-DEP), like RLE, and is a workhorse of the column-store
designs the paper's Section 8 points at.

The codec interprets the (padding-stripped) serialized bytes as a
big-endian unsigned integer, which matches the library's serialization of
non-negative integers, dates and dictionary codes; character data is
legal but rarely profits.
"""

from __future__ import annotations

from repro.compression.base import ColumnCodec

#: Per-value record header (tag/length bits), as for the other codecs.
VALUE_HEADER = 1


def zigzag(delta: int) -> int:
    """Map a signed delta onto unsigned so small magnitudes stay small
    (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...)."""
    return delta * 2 if delta >= 0 else -delta * 2 - 1


def varint_len(value: int) -> int:
    """Bytes of the unsigned LEB128 varint encoding of ``value``."""
    if value < 0:
        raise ValueError("varint_len needs a non-negative value")
    length = 1
    while value >= 0x80:
        value >>= 7
        length += 1
    return length


def _as_int(stripped: bytes) -> int:
    return int.from_bytes(stripped, "big") if stripped else 0


class DeltaCodec(ColumnCodec):
    """Per-page delta-of-previous encoding over stripped values."""

    def __init__(self, column) -> None:
        super().__init__(column)
        self._prev: int | None = None
        self._bytes = 0

    def add(self, stripped: bytes) -> int:
        self.count += 1
        value = _as_int(stripped)
        if self._prev is None:
            # First value on the page is stored verbatim.
            self._bytes += VALUE_HEADER + max(1, len(stripped))
        else:
            self._bytes += VALUE_HEADER + varint_len(
                zigzag(value - self._prev)
            )
        self._prev = value
        return self._bytes

    def size(self) -> int:
        return self._bytes

    def reset(self) -> None:
        super().reset()
        self._prev = None
        self._bytes = 0
