"""Bit-packing codec.

Packs each value into ``ceil(log2(n_distinct))`` bits given the
index-wide distinct count — the storage layout of a global dictionary
*after* the codes have been assigned, without charging for the dictionary
itself (appropriate for ordinal/code columns whose decode is a pure
arithmetic mapping).  The compressed size only depends on the row count
and the global distinct count, never on row order: bit packing is
order independent (ORD-IND), so the paper's ColSet and ColExt deductions
apply to it exactly as they do to NULL suppression.
"""

from __future__ import annotations

import math

from repro.compression.base import ColumnCodec
from repro.errors import CompressionError

#: Per-page metadata: bit width + value count.
PAGE_OVERHEAD = 4


def bits_for(n_distinct: int) -> int:
    """Bits per value needed to address ``n_distinct`` codes (min 1)."""
    if n_distinct < 1:
        raise CompressionError("bit packing needs n_distinct >= 1")
    return max(1, math.ceil(math.log2(n_distinct))) if n_distinct > 1 else 1


class BitPackCodec(ColumnCodec):
    """Fixed-width bit packing against a global code space."""

    def __init__(self, column, n_distinct: int) -> None:
        super().__init__(column)
        self.bits = bits_for(n_distinct)

    def add(self, stripped: bytes) -> int:
        self.count += 1
        return PAGE_OVERHEAD + -(-self.count * self.bits // 8)

    def size(self) -> int:
        if self.count == 0:
            return 0
        return PAGE_OVERHEAD + -(-self.count * self.bits // 8)
