"""Back-compat shim: the enumeration search now lives in the pluggable
:mod:`repro.advisor.algorithms` package.

``Enumerator`` — the greedy/density/backtracking search of Section
6.2 — became :class:`~repro.advisor.algorithms.GreedyBacktrackAlgorithm`
(byte-identical behavior; the golden canaries pin it).  The shared
dataclasses and hooks moved to :mod:`repro.advisor.algorithms.base`.
Existing imports keep working through this module.
"""

from repro.advisor.algorithms.base import (
    BatchCost,
    EnumerationOptions,
    EnumerationResult,
)
from repro.advisor.algorithms.greedy_backtrack import GreedyBacktrackAlgorithm

#: Historical name of the default search, kept importable for callers
#: (and pickles) that predate the algorithm registry.
Enumerator = GreedyBacktrackAlgorithm

__all__ = [
    "BatchCost",
    "EnumerationOptions",
    "EnumerationResult",
    "Enumerator",
    "GreedyBacktrackAlgorithm",
]
