"""Enumeration: greedy search over the union of candidates (Section 6.2).

Variants:

* **pure greedy** — add the index with the largest workload-cost drop
  that still fits the budget (classic DTA).
* **density greedy** — rank by benefit per byte (DB2-advisor style).
* **backtracking** — when the best choice is oversized, try to *recover*
  it by swapping indexes of the tentative configuration to compressed
  variants until it fits (Figure 8), then compare against the feasible
  greedy choices as usual.
* **seeded multi-start** — greedy search is not monotone in the budget:
  with a large budget the single best first pick can be a huge covering
  index that strands the search in a poor local optimum. Like the
  Greedy(m,k) enumeration of the original index-selection work
  (Chaudhuri & Narasayya, VLDB 1997) that DTA itself uses, we run the
  greedy loop from each of the top ``seed_fanout`` first choices and
  keep the cheapest final configuration.

Storage accounting: secondary/MV indexes consume their full size; a base
structure (heap or clustered index) consumes the *difference* to the
table's original base — compressing a table's heap frees budget, which is
how DTAc can recommend indexes even at a 0% budget (Appendix D.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.compression.base import CompressionMethod
from repro.errors import AdvisorError
from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.storage.index_build import IndexKind
from repro.workload.query import Workload

#: Batched costing hook: all of one sweep's candidate configurations at
#: once, returning their workload costs in input order.  The advisor
#: wires the parallel engine in here; the default recomputes through the
#: per-configuration callable, so both paths see identical floats.
BatchCost = Callable[[Sequence[Configuration]], "list[float]"]


@dataclass(frozen=True)
class EnumerationOptions:
    """Search knobs.

    Attributes:
        budget_bytes: storage budget for additional structures.
        strategy: 'greedy' or 'density'.
        backtracking: enable the oversized-choice recovery phase.
        max_steps: hard cap on greedy iterations.
        min_improvement: stop when the relative cost drop falls below it.
        seed_fanout: number of distinct first choices to grow a full
            greedy run from; the best final configuration wins.
        allow_compression: whether method-swap phases (backtracking,
            final polish) may introduce compressed variants; False for
            the compression-blind DTA baseline.
    """

    budget_bytes: float
    strategy: str = "greedy"
    backtracking: bool = False
    max_steps: int = 60
    min_improvement: float = 1e-4
    seed_fanout: int = 3
    allow_compression: bool = True


@dataclass
class EnumerationResult:
    """Final configuration of one enumeration run with its cost,
    storage consumption, and a human-readable step log."""
    configuration: Configuration
    cost: float
    consumed_bytes: float
    steps: list[str] = field(default_factory=list)


class Enumerator:
    """Runs the greedy/density/backtracking search."""

    def __init__(
        self,
        workload: Workload,
        workload_cost: Callable[[Configuration], float],
        index_size: Callable[[IndexDef], float],
        original_base_sizes: Mapping[str, float],
        options: EnumerationOptions,
        batch_cost: BatchCost | None = None,
        delta: "object | None" = None,
        progress: "Callable[[dict], None] | None" = None,
    ) -> None:
        self.workload = workload
        self.workload_cost = workload_cost
        self.index_size = index_size
        self.original_base_sizes = dict(original_base_sizes)
        self.options = options
        #: observational hook: one event per accepted search step (and
        #: one per candidate sweep), emitted in the parent process.  It
        #: may raise to abort the search — the tuning service cancels
        #: running jobs through exactly this path — but must never
        #: change a result.
        self.progress = progress
        self._step_seq = 0
        self.batch_cost = batch_cost or (
            lambda configs: [self.workload_cost(c) for c in configs]
        )
        #: optional DeltaWorkloadCoster: candidate pruning + reference
        #: rebasing.  Bound-based pruning is only decision-identical to
        #: the full path under pure-greedy scoring without backtracking
        #: (a pruned candidate can then only ever be chosen-and-rejected
        #: below min_improvement, which leaves the same search state);
        #: zero-delta certificates are exact under every strategy.
        self.delta = delta
        self._prune_bounds = (
            delta is not None
            and options.strategy == "greedy"
            and not options.backtracking
        )

    # ------------------------------------------------------------------
    def consumed(self, config: Configuration) -> float:
        """Budget bytes a configuration consumes: secondary/MV indexes in
        full; base structures as the delta against the original base
        (compressing a heap *frees* budget)."""
        terms = []
        for ix in config:
            if ix.kind is IndexKind.SECONDARY or ix.is_mv_index:
                terms.append(self.index_size(ix))
            else:
                original = self.original_base_sizes.get(ix.table)
                if original is None:
                    raise AdvisorError(
                        f"no original base size for table {ix.table!r}"
                    )
                terms.append(self.index_size(ix) - original)
        # fsum: exact, hence independent of set iteration order — the
        # budget boundary must not wobble with PYTHONHASHSEED.
        return math.fsum(terms)

    def fits(self, config: Configuration) -> bool:
        """Whether a configuration stays within the storage budget."""
        return self.consumed(config) <= self.options.budget_bytes + 1e-6

    # ------------------------------------------------------------------
    def _emit(self, event: str, **fields) -> None:
        if self.progress is not None:
            self.progress({"event": event, **fields})

    def _emit_step(self, kind: str, step: str, cost: float) -> None:
        """One accepted search step (greedy add, backtrack recovery,
        polish swap, or a seeded start).  ``step_seq`` counts accepted
        steps across every seeded start (the job layer's ``seq`` is the
        event-log position, a different series), so the stream carries
        at least one event per greedy step of the winning start."""
        self._step_seq += 1
        self._emit("greedy_step", kind=kind, step=step, cost=cost,
                   step_seq=self._step_seq)

    def _score(self, delta_cost: float, delta_size: float) -> float:
        if self.options.strategy == "density":
            return delta_cost / max(delta_size, 8192.0)
        return delta_cost

    def _rebase(self, config: Configuration) -> None:
        if self.delta is not None:
            self.delta.rebase(config)

    def _candidate_costs(
        self,
        candidates: Sequence[Configuration],
        threshold: float | None,
    ) -> "list[float | None]":
        """Costs of a candidate sweep, with None for candidates the
        delta coster proves cannot improve on the reference — the full
        path would compute ``delta_cost <= 0`` (zero-delta certificate)
        or an improvement below the acceptance threshold (bound prune),
        and skip them identically."""
        if self.delta is None:
            return list(self.batch_cost(candidates))
        decisions = [
            self.delta.improvement_possible(candidate, threshold)
            for candidate in candidates
        ]
        survivors = [
            candidate
            for candidate, keep in zip(candidates, decisions) if keep
        ]
        costs = iter(self.batch_cost(survivors))
        return [next(costs) if keep else None for keep in decisions]

    def run(self, pool: list[IndexDef],
            base_config: Configuration) -> EnumerationResult:
        """Search for the best configuration reachable from
        ``base_config`` by adding pool members: seeded multi-start
        greedy, per-step backtracking, and a final method polish."""
        self._rebase(base_config)
        base_cost = self.workload_cost(base_config)
        starts = self._starting_points(pool, base_config, base_cost)
        if not starts:
            return EnumerationResult(
                configuration=base_config,
                cost=base_cost,
                consumed_bytes=self.consumed(base_config),
                steps=[],
            )
        best: EnumerationResult | None = None
        for cost, config, label in starts:
            steps = [f"{label}: {base_cost:.1f} -> {cost:.1f}"]
            self._emit_step("seed", steps[0], cost)
            self._rebase(config)
            result = self._greedy_loop(pool, config, cost, steps)
            if best is None or result.cost < best.cost:
                best = result
        return self._polish(best)

    def _starting_points(
        self,
        pool: list[IndexDef],
        base: Configuration,
        base_cost: float,
    ) -> list[tuple[float, Configuration, str]]:
        """Top ``seed_fanout`` feasible first moves (by score), plus a
        backtrack-recovery of the best oversized move when enabled."""
        moves = []
        for ix in pool:
            if ix in base:
                continue
            candidate = base.add(ix)
            if candidate == base:
                continue
            moves.append((ix, candidate))
        # Zero-delta certificates only: bound pruning could drop a
        # tiny-improvement move that the full path would still seed a
        # greedy start from when fewer than ``seed_fanout`` moves score.
        costs = self._candidate_costs(
            [candidate for _ix, candidate in moves], None
        )
        scored: list[tuple[float, float, Configuration, str]] = []
        best_any = None  # (delta_cost, config)
        for (ix, candidate), cost in zip(moves, costs):
            if cost is None:
                continue
            delta_cost = base_cost - cost
            if delta_cost <= 0:
                continue
            delta_size = self.consumed(candidate) - self.consumed(base)
            if self.fits(candidate):
                scored.append((
                    self._score(delta_cost, delta_size),
                    cost,
                    candidate,
                    f"add {ix.display_name()}",
                ))
            if best_any is None or delta_cost > best_any[0]:
                best_any = (delta_cost, candidate)
        scored.sort(key=lambda entry: -entry[0])
        fanout = max(1, self.options.seed_fanout)
        starts = [
            (cost, config, label)
            for _score, cost, config, label in scored[:fanout]
        ]
        if (
            self.options.backtracking
            and best_any is not None
            and not self.fits(best_any[1])
        ):
            recovered = self._backtrack(best_any[1])
            if recovered is not None:
                rec_cost = self.workload_cost(recovered)
                if rec_cost < base_cost:
                    starts.append((rec_cost, recovered, "backtrack-recover"))
        return starts

    def _greedy_loop(
        self,
        pool: list[IndexDef],
        current: Configuration,
        current_cost: float,
        steps: list[str],
    ) -> EnumerationResult:
        options = self.options
        for _step in range(options.max_steps):
            best_feasible = None  # (score, cost, config, label)
            best_any = None       # (delta_cost, cost, config, index)
            moves = []
            for ix in pool:
                if ix in current:
                    continue
                candidate = current.add(ix)
                if candidate == current:
                    continue
                moves.append((ix, candidate))
            # A cancellation point even when no step gets accepted:
            # every candidate sweep reports in before costing.
            self._emit("sweep", candidates=len(moves), cost=current_cost)
            threshold = None
            if self._prune_bounds:
                # Half the acceptance threshold: the slack covers float
                # accumulation differences between the optimistic bound
                # and the full path's total, so a pruned move could at
                # most be chosen-and-rejected below min_improvement.
                threshold = 0.5 * options.min_improvement * max(
                    current_cost, 1e-9
                )
            costs = self._candidate_costs(
                [candidate for _ix, candidate in moves], threshold
            )
            for (ix, candidate), cost in zip(moves, costs):
                if cost is None:
                    continue
                delta_cost = current_cost - cost
                if delta_cost <= 0:
                    continue
                delta_size = self.consumed(candidate) - self.consumed(current)
                if self.fits(candidate):
                    score = self._score(delta_cost, delta_size)
                    if best_feasible is None or score > best_feasible[0]:
                        best_feasible = (
                            score, cost, candidate, ix.display_name()
                        )
                if best_any is None or delta_cost > best_any[0]:
                    best_any = (delta_cost, cost, candidate, ix)

            chosen = None
            if best_feasible is not None:
                chosen = (best_feasible[1], best_feasible[2],
                          f"add {best_feasible[3]}")

            if (
                options.backtracking
                and best_any is not None
                and not self.fits(best_any[2])
            ):
                recovered = self._backtrack(best_any[2])
                if recovered is not None:
                    rec_cost = self.workload_cost(recovered)
                    if (
                        rec_cost < current_cost
                        and (chosen is None or rec_cost < chosen[0])
                    ):
                        chosen = (rec_cost, recovered, "backtrack-recover")

            if chosen is None:
                break
            new_cost, new_config, label = chosen
            if (current_cost - new_cost) < options.min_improvement * max(
                current_cost, 1e-9
            ):
                break
            steps.append(f"{label}: {current_cost:.1f} -> {new_cost:.1f}")
            self._emit_step("greedy", steps[-1], new_cost)
            current, current_cost = new_config, new_cost
            self._rebase(current)

        return EnumerationResult(
            configuration=current,
            cost=current_cost,
            consumed_bytes=self.consumed(current),
            steps=steps,
        )

    # ------------------------------------------------------------------
    def _polish(self, result: EnumerationResult) -> EnumerationResult:
        """Final hill-climb over per-structure compression methods.

        Generalizes the backtracking swap of Figure 8 to the finished
        configuration and to *both* directions: compress a structure when
        the I/O savings beat the CPU overhead, decompress one when they
        do not.  Accepts any single method swap that lowers the workload
        cost while staying within budget, to a fixpoint.  Because the
        what-if cost is (near-)additive per structure, this reaches the
        per-structure best method without an exponential search.
        """
        config, cost = result.configuration, result.cost
        self._rebase(config)
        if self.options.allow_compression:
            methods = (CompressionMethod.NONE, CompressionMethod.ROW,
                       CompressionMethod.PAGE)
        else:
            methods = (CompressionMethod.NONE,)
        for _round in range(len(list(config)) * len(methods) + 1):
            best_swap = None  # (cost, config, label)
            swaps = []
            for ix in config.ordered():
                for method in methods:
                    if method is ix.method:
                        continue
                    swapped = config.replace(ix, ix.with_method(method))
                    if not self.fits(swapped):
                        continue
                    swaps.append((ix, method, swapped))
            swap_costs = self.batch_cost(
                [swapped for _ix, _m, swapped in swaps]
            )
            for (ix, method, swapped), swap_cost in zip(swaps, swap_costs):
                if swap_cost < cost - 1e-9 and (
                    best_swap is None or swap_cost < best_swap[0]
                ):
                    best_swap = (
                        swap_cost,
                        swapped,
                        f"polish {ix.display_name()} -> {method.name}",
                    )
            if best_swap is None:
                break
            cost, config = best_swap[0], best_swap[1]
            self._rebase(config)
            result.steps.append(f"{best_swap[2]}: -> {cost:.1f}")
            self._emit_step("polish", result.steps[-1], cost)
        return EnumerationResult(
            configuration=config,
            cost=cost,
            consumed_bytes=self.consumed(config),
            steps=result.steps,
        )

    # ------------------------------------------------------------------
    def _backtrack(self, oversized: Configuration) -> Configuration | None:
        """Figure 8: repeatedly swap members to compressed variants,
        choosing at each round the swap that performs fastest while
        shrinking, until the configuration fits (or no swap helps)."""
        config = oversized
        for _round in range(len(list(config)) + 1):
            if self.fits(config):
                return config
            best = None  # (cost, config)
            swaps = []
            for ix in config.ordered():
                if ix.is_compressed:
                    continue
                if ix.kind not in (IndexKind.SECONDARY, IndexKind.CLUSTERED,
                                   IndexKind.HEAP):
                    continue
                for method in (CompressionMethod.ROW, CompressionMethod.PAGE):
                    variant = ix.with_method(method)
                    swapped = config.replace(ix, variant)
                    if self.consumed(swapped) >= self.consumed(config):
                        continue
                    swaps.append(swapped)
            swap_costs = self.batch_cost(swaps)
            for swapped, swap_cost in zip(swaps, swap_costs):
                if best is None or swap_cost < best[0]:
                    best = (swap_cost, swapped)
            if best is None:
                return None
            config = best[1]
        return config if self.fits(config) else None
