"""Continuous tuning: incremental retunes from the previous
configuration, for long-lived workloads that drift.

The paper tunes a static workload once.  A serving advisor instead sees
a *sequence* of workloads, and cold-tuning each one throws away the two
assets the previous run already paid for: the previous recommendation
and the warmed estimate/cost caches.  This module keeps both.

A retune is one advisor run whose search is replaced by
:class:`_RetuneSearch`:

1. **Seed at the previous configuration.**  The delta coster's
   reference is rebased onto the previous recommendation (the PR 3
   primitive built for exactly this), so the whole run diffs against
   what is already deployed instead of against bare heaps.
2. **Drop decayed structures** — the 15-799 tuner's missing half.
   Previous members get fresh benefit attribution under the *current*
   workload; while over budget, the lowest (uses, benefit-density)
   member is dropped, then terminating cost-checked drop iterations
   (both reused verbatim from the relaxation algorithm) evict any
   member whose removal now lowers the true workload cost.
3. **Greedy re-fill** — the standard greedy loop plus the final method
   polish, started from the pruned previous configuration rather than
   from scratch.

:class:`TuningSession` is the session-state API around it: it owns the
database, the workload, shared :class:`DatabaseStats` and persistent
estimate/cost caches, and the previous configuration — the first
feature where the advisor's output becomes its next input.
:func:`retune_run` is the embeddable core (one retune with explicit
wiring), which the tuning service calls with its own per-request
estimator/cache discipline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Sequence

from repro.advisor.advisor import (
    AdvisorOptions,
    AdvisorResult,
    ProgressHook,
    TuningAdvisor,
    get_variant,
)
from repro.advisor.algorithms.base import EnumerationResult
from repro.advisor.algorithms.greedy_backtrack import GreedyBacktrackAlgorithm
from repro.advisor.algorithms.relaxation import RelaxationAlgorithm
from repro.catalog.schema import Database
from repro.errors import AdvisorError
from repro.parallel.cache import CostCache, EstimationCache
from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.sampling.sample_manager import DEFAULT_SAMPLE_SEED, SampleManager
from repro.sizeest.estimator import SizeEstimator
from repro.stats.column_stats import DatabaseStats
from repro.workload.query import Workload


class _RetuneSearch(RelaxationAlgorithm, GreedyBacktrackAlgorithm):
    """Drop-then-refill search seeded at the previous configuration.

    Composes the two registered strategies it rides on: the relaxation
    algorithm's budget relaxation + terminating drop iterations (usage/
    density-ordered victims, cost-checked acceptance) and the greedy
    algorithm's add loop + method polish.  Not registered — it needs a
    previous configuration no registry name can carry; the advisor
    receives it through ``TuningAdvisor(algorithm_cls=...)``.
    """

    name = "retune"
    summary = (
        "Seed at the previous configuration, drop decayed structures, "
        "then greedy re-fill (continuous tuning; not registry-resolvable)"
    )

    #: total eviction-swap trials (each is one greedy re-fill, so this
    #: caps the incremental run's wall time).
    SWAP_TRIALS = 2

    def __init__(self, previous: Configuration, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.previous = previous

    def run(self, pool: list[IndexDef],
            base_config: Configuration) -> EnumerationResult:
        previous = self.previous
        steps: list[str] = []
        self._rebase(previous)
        prev_cost = self.batch_cost([previous])[0]
        steps.append(
            f"retune seed: {len(list(previous))} structures, "
            f"cost {prev_cost:.1f}, {self.consumed(previous):.0f} bytes"
        )
        self._emit_step("retune-seed", steps[-1], prev_cost)

        # Fresh benefit attribution for the carried-over members under
        # the *current* workload — the decay signal the drop ordering
        # ranks on (fewest uses first, then benefit density).
        prev_members = [
            ix for ix in previous.ordered() if ix not in base_config
        ]
        benefits = {
            entry.index: entry
            for entry in self._attributed_benefits(prev_members, base_config)
        }
        config = self._relax_to_budget(previous, base_config, benefits, steps)
        if config != previous:
            self._rebase(config)
            cost = self.batch_cost([config])[0]
        else:
            cost = prev_cost
        config, cost = self._drop_iterations(config, cost, base_config, steps)

        # Decay eviction: a carried member can keep a sliver of benefit
        # (so no single removal lowers cost) while blocking the budget
        # the drifted workload wants elsewhere — a local minimum neither
        # drop iterations nor compression backtracking can leave.  Evict
        # every member whose marginal benefit fell below the greedy
        # acceptance threshold; each stays in the candidate pool, so the
        # re-fill re-adds it only if it still beats today's
        # alternatives.
        members = self._droppable(config, base_config)
        if members:
            reverted = [
                (ix, self._revert_member(config, ix, base_config))
                for ix in members
            ]
            reverted = [(ix, r) for ix, r in reverted if r != config]
            costs = self.batch_cost([r for _ix, r in reverted])
            threshold = self.options.min_improvement * max(cost, 1e-9)
            decayed = [
                ix for (ix, _r), rcost in zip(reverted, costs)
                if rcost - cost < threshold
            ]
            if decayed:
                for ix in decayed:
                    config = self._revert_member(config, ix, base_config)
                self._rebase(config)
                cost = self.batch_cost([config])[0]
                steps.append(
                    "decay evict "
                    + ", ".join(ix.display_name() for ix in decayed)
                    + f": -> {cost:.1f}"
                )
                self._emit_step("drop", steps[-1], cost)

        # Greedy re-fill from the pruned previous configuration.
        self._rebase(config)
        filled = self._greedy_loop(pool, config, cost, steps)
        config, cost = filled.configuration, filled.cost

        # Eviction swaps: a carried member can be worth keeping in
        # isolation yet *dominated* — its budget would buy a better
        # structure under the drifted workload, which greedy re-fill
        # cannot see because the member is already in place.  Evict the
        # most suspect members (fewest uses, lowest benefit density —
        # the drop ordering again) one at a time and re-fill; accept the
        # first eviction whose re-fill beats the current cost.  A
        # wrongly-evicted member is simply re-added by its own trial (it
        # stays in the pool).  The total trial count is bounded — this
        # is the incremental path, not a second cold search.
        trials_left = self.SWAP_TRIALS
        improved = True
        while improved and trials_left > 0:
            improved = False
            members = self._droppable(config, base_config)
            ranked = {
                entry.index: entry
                for entry in self._attributed_benefits(members, base_config)
            }

            def swap_rank(ix: IndexDef):
                entry = ranked.get(ix)
                if entry is None:
                    return (0, 0.0, ix.display_name())
                return (entry.uses, entry.density(), ix.display_name())

            consumed = self.consumed(config)
            candidates = []
            for victim in members:
                reduced = self._revert_member(config, victim, base_config)
                # Only evictions that free budget can unlock a better
                # structure (e.g. a compressed base variant reverts to a
                # *larger* heap — swapping it out buys nothing).
                if reduced == config or \
                        self.consumed(reduced) >= consumed:
                    continue
                candidates.append((victim, reduced))
            candidates.sort(key=lambda vr: swap_rank(vr[0]))
            for victim, reduced in candidates:
                if trials_left == 0:
                    break
                trials_left -= 1
                self._rebase(reduced)
                reduced_cost = self.batch_cost([reduced])[0]
                trial_steps: list[str] = []
                trial = self._greedy_loop(
                    pool, reduced, reduced_cost, trial_steps
                )
                if trial.cost < cost - self.options.min_improvement * max(
                    cost, 1e-9
                ):
                    config, cost = trial.configuration, trial.cost
                    steps.append(
                        f"swap evict {victim.display_name()}: "
                        f"-> {cost:.1f}"
                    )
                    self._emit_step("swap", steps[-1], cost)
                    steps.extend(trial_steps)
                    improved = True
                    break

        # The standard final method polish.
        self._rebase(config)
        result = self._polish(
            EnumerationResult(
                configuration=config,
                cost=cost,
                consumed_bytes=self.consumed(config),
                steps=steps,
            )
        )

        # Floor: a drifted workload can strand the whole carried-over
        # configuration; never return worse than the untuned base.
        base_cost = self.workload_cost(base_config)
        if result.cost > base_cost and self.fits(base_config):
            result.steps.append(
                f"retune floor: keep base {base_cost:.1f}"
            )
            return EnumerationResult(
                configuration=base_config,
                cost=base_cost,
                consumed_bytes=self.consumed(base_config),
                steps=result.steps,
            )
        return result


def configuration_diff(
    previous: Configuration, current: Configuration
) -> "tuple[list[IndexDef], list[IndexDef], list[IndexDef]]":
    """(dropped, added, kept) between two configurations, each sorted
    by display name.  A compression-method change of the same logical
    structure shows up as one drop plus one add — method variants are
    different physical structures."""
    by_name = lambda ix: ix.display_name()  # noqa: E731
    dropped = sorted(
        (ix for ix in previous if ix not in current), key=by_name
    )
    added = sorted(
        (ix for ix in current if ix not in previous), key=by_name
    )
    kept = sorted(
        (ix for ix in current if ix in previous), key=by_name
    )
    return dropped, added, kept


def retune_run(
    database: Database,
    workload: Workload,
    previous: Configuration,
    options: AdvisorOptions,
    *,
    estimator: SizeEstimator | None = None,
    stats: DatabaseStats | None = None,
    base_config: Configuration | None = None,
    engine=None,
    cost_cache: CostCache | None = None,
    progress: ProgressHook | None = None,
    fork_context=None,
    fork_stale_ok: bool = False,
) -> AdvisorResult:
    """One incremental retune with explicit wiring: a standard advisor
    run whose search is the drop-then-refill :class:`_RetuneSearch`
    seeded at ``previous``, and whose candidate pool is guaranteed to
    contain every previous member (so re-fill can re-add a dropped
    structure and the delta coster's pruning bounds stay sound over the
    carried-over configuration)."""
    advisor = TuningAdvisor(
        database,
        workload,
        options,
        estimator=estimator,
        stats=stats,
        base_config=base_config,
        engine=engine,
        cost_cache=cost_cache,
        progress=progress,
        fork_context=fork_context,
        fork_stale_ok=fork_stale_ok,
        algorithm_cls=partial(_RetuneSearch, previous),
        extra_candidates=previous.ordered(),
    )
    return advisor.run()


@dataclass
class RetuneResult:
    """Outcome of one incremental retune.

    Wraps the run's :class:`AdvisorResult` with the session-level diff
    against the previous configuration.
    """

    result: AdvisorResult
    generation: int
    previous_configuration: Configuration
    dropped: list[IndexDef] = field(default_factory=list)
    added: list[IndexDef] = field(default_factory=list)
    kept: list[IndexDef] = field(default_factory=list)

    @property
    def configuration(self) -> Configuration:
        return self.result.configuration

    @property
    def config_changed(self) -> bool:
        return bool(self.dropped or self.added)

    @property
    def improvement(self) -> float:
        return self.result.improvement


class TuningSession:
    """Session state for continuous tuning: one database + workload
    whose recommendation is carried forward run over run.

    The session owns what repeated runs can safely share — the
    :class:`DatabaseStats`, one :class:`EstimationCache` and one
    :class:`CostCache` (persistent under ``cache_dir``, in-memory
    otherwise) — and hands every run a *fresh* seeded estimator over
    them, the same per-run discipline the sweep orchestrator and the
    tuning service use.  ``tune()`` runs cold; ``retune()`` runs the
    incremental drop-then-refill search from the previous result and
    returns the configuration diff.  Pass ``workload=`` to either call
    to move the session onto a new drift phase.
    """

    def __init__(
        self,
        database: Database,
        workload: Workload | None = None,
        *,
        budget_bytes: float | None = None,
        budget_fraction: float | None = None,
        variant: str = "dtac-both",
        seed: int = DEFAULT_SAMPLE_SEED,
        cache_dir: str | None = None,
        stats: DatabaseStats | None = None,
        progress: ProgressHook | None = None,
        configuration: Configuration | None = None,
        **options_extra,
    ) -> None:
        self.database = database
        self.workload = workload
        self.variant = get_variant(variant).name
        self.seed = seed
        self.cache_dir = cache_dir
        self.stats = stats or DatabaseStats(database)
        self.progress = progress
        self.options_extra = dict(options_extra)
        self._default_budget = None
        self._default_budget = self._resolve_budget(
            budget_bytes, budget_fraction, required=False
        )
        #: the previous recommendation — the next retune's input.  May
        #: be seeded directly (e.g. from a persisted result) to retune
        #: without a cold ``tune()`` first.
        self.configuration = configuration
        #: completed runs (tune + retune) in this session.
        self.generation = 0
        self.estimates = EstimationCache(cache_dir)
        self.costs = CostCache(cache_dir)

    # ------------------------------------------------------------------
    def _resolve_budget(
        self,
        budget_bytes: float | None,
        budget_fraction: float | None,
        required: bool = True,
    ) -> float | None:
        if budget_bytes is not None and budget_fraction is not None:
            raise AdvisorError(
                "pass budget_bytes or budget_fraction, not both"
            )
        if budget_fraction is not None:
            return self.database.total_data_bytes() * budget_fraction
        if budget_bytes is not None:
            return float(budget_bytes)
        if self._default_budget is None and required:
            raise AdvisorError(
                "no budget: pass budget_bytes/budget_fraction to the "
                "session or to the call"
            )
        return self._default_budget

    def _options(self, budget: float, extra: dict) -> AdvisorOptions:
        return get_variant(self.variant).advisor_options(
            budget, **{**self.options_extra, **extra}
        )

    def _fresh_estimator(self, options: AdvisorOptions) -> SizeEstimator:
        """A per-run estimator over the session's shared cache — fresh
        sample state seeded identically every run, warm estimates."""
        return SizeEstimator(
            self.database,
            stats=self.stats,
            manager=SampleManager(self.database, seed=self.seed),
            e=options.e,
            q=options.q,
            cache=self.estimates,
        )

    def _resolve_workload(self, workload: Workload | None) -> Workload:
        if workload is not None:
            self.workload = workload
        if self.workload is None:
            raise AdvisorError(
                "no workload: pass one to the session or to the call"
            )
        return self.workload

    def _emit(self, event: dict) -> None:
        if self.progress is not None:
            self.progress(event)

    # ------------------------------------------------------------------
    def tune(
        self,
        budget_bytes: float | None = None,
        *,
        budget_fraction: float | None = None,
        workload: Workload | None = None,
        **extra,
    ) -> AdvisorResult:
        """One cold tuning run (no previous-configuration seeding);
        establishes the configuration later ``retune()`` calls carry
        forward."""
        workload = self._resolve_workload(workload)
        budget = self._resolve_budget(budget_bytes, budget_fraction)
        options = self._options(budget, extra)
        advisor = TuningAdvisor(
            self.database,
            workload,
            options,
            estimator=self._fresh_estimator(options),
            stats=self.stats,
            cost_cache=self.costs,
            progress=self.progress,
        )
        result = advisor.run()
        self.configuration = result.configuration
        self.generation += 1
        return result

    def retune(
        self,
        budget_bytes: float | None = None,
        *,
        budget_fraction: float | None = None,
        workload: Workload | None = None,
        **extra,
    ) -> RetuneResult:
        """One incremental retune from the session's previous
        configuration (drop decayed structures, greedy re-fill), under
        the current — typically drifted — workload."""
        if self.configuration is None:
            raise AdvisorError(
                "retune needs a previous configuration: run tune() "
                "first, or seed the session with configuration=..."
            )
        workload = self._resolve_workload(workload)
        budget = self._resolve_budget(budget_bytes, budget_fraction)
        options = self._options(budget, extra)
        previous = self.configuration
        start = time.perf_counter()
        result = retune_run(
            self.database,
            workload,
            previous,
            options,
            estimator=self._fresh_estimator(options),
            stats=self.stats,
            cost_cache=self.costs,
            progress=self.progress,
        )
        result.elapsed_seconds = time.perf_counter() - start
        dropped, added, kept = configuration_diff(
            previous, result.configuration
        )
        self.configuration = result.configuration
        self.generation += 1
        out = RetuneResult(
            result=result,
            generation=self.generation,
            previous_configuration=previous,
            dropped=dropped,
            added=added,
            kept=kept,
        )
        if dropped:
            self._emit({
                "event": "dropped",
                "indexes": [ix.display_name() for ix in dropped],
            })
        if added:
            self._emit({
                "event": "added",
                "indexes": [ix.display_name() for ix in added],
            })
        self._emit({
            "event": "config_changed",
            "changed": out.config_changed,
            "generation": self.generation,
            "dropped": len(dropped),
            "added": len(added),
            "kept": len(kept),
        })
        return out


def retune_sequence(
    session: TuningSession,
    workloads: Sequence[Workload],
    **extra,
) -> "list[RetuneResult | AdvisorResult]":
    """Drive a session across a workload sequence: a cold ``tune()`` on
    the first phase when the session has no configuration yet, then one
    ``retune()`` per remaining phase.  Returns the per-phase results in
    order — the golden-fixture shape the retune identity tests pin."""
    out: "list[RetuneResult | AdvisorResult]" = []
    for workload in workloads:
        if session.configuration is None:
            out.append(session.tune(workload=workload, **extra))
        else:
            out.append(session.retune(workload=workload, **extra))
    return out
