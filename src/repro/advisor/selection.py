"""Per-query candidate selection: best-per-query top-k vs the Skyline
method (Section 6.1).

For each query the advisor costs small configurations (single candidates
and a few pairs).  DTA's classic selection keeps the top-k cheapest; the
Skyline selection instead keeps every configuration not dominated in
(size, cost) — retaining slow-but-small compressed candidates that a
cost-only top-k would prune, which is what lets tight budgets win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.workload.query import SelectQuery

#: Batched per-query costing hook: one query's cost under many small
#: candidate configurations, in input order.  The advisor wires the
#: delta-aware (or cache-aware) batch API in here; the default loops
#: the per-configuration callable, so both paths see identical floats.
QueryCostBatch = Callable[
    [SelectQuery, Sequence[Configuration]], "list[float]"
]


@dataclass(frozen=True)
class CandidateConfiguration:
    """A small per-query configuration with its cost and extra size."""

    indexes: frozenset[IndexDef]
    cost: float
    size: float

    def dominates(self, other: "CandidateConfiguration") -> bool:
        """Strict domination: no worse on both axes, better on one."""
        return (
            self.cost <= other.cost
            and self.size <= other.size
            and (self.cost < other.cost or self.size < other.size)
        )


def evaluate_candidates(
    query: SelectQuery,
    candidates: Sequence[IndexDef],
    base_config: Configuration,
    query_cost: Callable[[SelectQuery, Configuration], float],
    index_size: Callable[[IndexDef], float],
    max_pairs: int = 10,
    query_cost_batch: QueryCostBatch | None = None,
) -> list[CandidateConfiguration]:
    """Cost the empty, singleton and (a few) pair configurations.

    ``query_cost_batch`` routes each sweep (all singletons, then all
    pairs) through one batched call — the hook the advisor points at
    the delta-aware coster, which then re-evaluates only what each
    added index can actually change.  Costs are identical floats to the
    per-configuration ``query_cost`` loop in the same order.
    """
    if query_cost_batch is None:
        def query_cost_batch(q, configs):
            return [query_cost(q, config) for config in configs]
    base_cost = query_cost_batch(query, [base_config])[0]
    out: list[CandidateConfiguration] = [
        CandidateConfiguration(
            indexes=frozenset(), cost=base_cost, size=0.0,
        )
    ]
    single_costs = query_cost_batch(
        query, [base_config.add(ix) for ix in candidates]
    )
    singles: list[tuple[float, IndexDef]] = []
    for ix, cost in zip(candidates, single_costs):
        out.append(
            CandidateConfiguration(
                frozenset([ix]), cost=cost, size=index_size(ix)
            )
        )
        singles.append((cost, ix))

    # Pairs: combine the most promising singles (covering + seek combos).
    singles.sort(key=lambda t: t[0])
    top = [ix for _c, ix in singles[:5]]
    pairs: list[tuple[IndexDef, IndexDef]] = []
    for i in range(len(top)):
        for j in range(i + 1, len(top)):
            if len(pairs) >= max_pairs:
                break
            a, b = top[i], top[j]
            if a.table == b.table and a.column_set == b.column_set:
                continue
            pairs.append((a, b))
    pair_costs = query_cost_batch(
        query, [base_config.add(a).add(b) for a, b in pairs]
    )
    for (a, b), cost in zip(pairs, pair_costs):
        out.append(
            CandidateConfiguration(
                frozenset([a, b]),
                cost=cost,
                size=index_size(a) + index_size(b),
            )
        )
    return out


def evaluate_candidates_batch(
    queries: Sequence[SelectQuery],
    candidates_per_query: Sequence[Sequence[IndexDef]],
    base_config: Configuration,
    query_cost: Callable[[SelectQuery, Configuration], float],
    index_size: Callable[[IndexDef], float],
    max_pairs: int = 10,
    query_cost_batch: QueryCostBatch | None = None,
) -> list[list[CandidateConfiguration]]:
    """Evaluate per-query candidate *sets* for many queries at once.

    The sequential counterpart of the advisor's per-query fan-out: one
    entry of the result per query, each computed exactly as
    :func:`evaluate_candidates` would.  The parallel engine dispatches
    the same per-query unit to workers, so both paths agree float-for-
    float.
    """
    if len(queries) != len(candidates_per_query):
        raise ValueError(
            f"{len(queries)} queries but "
            f"{len(candidates_per_query)} candidate sets"
        )
    return [
        evaluate_candidates(
            query, candidates, base_config, query_cost, index_size,
            max_pairs=max_pairs, query_cost_batch=query_cost_batch,
        )
        for query, candidates in zip(queries, candidates_per_query)
    ]


def select_top_k(
    configs: Sequence[CandidateConfiguration], k: int = 2
) -> list[CandidateConfiguration]:
    """Classic DTA selection: the k configurations with the lowest cost."""
    return sorted(configs, key=lambda c: (c.cost, c.size))[:k]


def select_skyline(
    configs: Sequence[CandidateConfiguration],
) -> list[CandidateConfiguration]:
    """Skyline selection (Figure 5): keep every non-dominated
    configuration; O(n^2) dominance test as in the paper."""
    out: list[CandidateConfiguration] = []
    for c in configs:
        if any(o.dominates(c) for o in configs if o is not c):
            continue
        out.append(c)
    return sorted(out, key=lambda c: (c.size, c.cost))


def cluster_skyline(
    skyline: Sequence[CandidateConfiguration], max_points: int
) -> list[CandidateConfiguration]:
    """The compromise extension of Section 6.1: thin a large skyline down
    to ``max_points`` representatives by grouping on the size axis and
    keeping each group's cheapest configuration.

    The two cheapest configurations are always retained, whatever group
    they fall in: the skyline exists to *add* slow-but-small candidates,
    and clustering must never drop the fast configurations that DTA's
    classic top-k selection would have kept.  The result therefore holds
    at most ``max_points + 2`` configurations.
    """
    if len(skyline) <= max_points:
        return list(skyline)
    ordered = sorted(skyline, key=lambda c: c.size)
    out: list[CandidateConfiguration] = []
    per = len(ordered) / max_points
    for g in range(max_points):
        lo = int(g * per)
        hi = max(lo + 1, int((g + 1) * per))
        group = ordered[lo:hi]
        out.append(min(group, key=lambda c: c.cost))
    for keep in select_top_k(skyline, 2):
        if keep not in out:
            out.append(keep)
    return out
