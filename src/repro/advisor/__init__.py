"""Physical design advisor: DTA baseline and compression-aware DTAc."""

from repro.advisor import algorithms
from repro.advisor.advisor import (
    AdvisorOptions,
    AdvisorResult,
    TuningAdvisor,
    VariantSpec,
    get_variant,
    register_variant,
    tune,
    tune_decoupled,
    variant_names,
    variants,
)
from repro.advisor.algorithms import SelectionAlgorithm
from repro.advisor.candidates import (
    CandidateOptions,
    candidate_indexes,
    expand_compression_variants,
    mv_candidates,
)
from repro.advisor.enumeration import (
    EnumerationOptions,
    EnumerationResult,
    Enumerator,
)
from repro.advisor.merging import generate_merged_candidates, merge_pair
from repro.advisor.sweep import SweepResult, SweepRun, run_sweep
from repro.advisor.selection import (
    CandidateConfiguration,
    cluster_skyline,
    evaluate_candidates,
    evaluate_candidates_batch,
    select_skyline,
    select_top_k,
)

__all__ = [
    "AdvisorOptions",
    "AdvisorResult",
    "TuningAdvisor",
    "VariantSpec",
    "algorithms",
    "SelectionAlgorithm",
    "get_variant",
    "register_variant",
    "variant_names",
    "variants",
    "tune",
    "tune_decoupled",
    "run_sweep",
    "SweepResult",
    "SweepRun",
    "CandidateOptions",
    "candidate_indexes",
    "expand_compression_variants",
    "mv_candidates",
    "CandidateConfiguration",
    "evaluate_candidates",
    "evaluate_candidates_batch",
    "select_top_k",
    "select_skyline",
    "cluster_skyline",
    "merge_pair",
    "generate_merged_candidates",
    "EnumerationOptions",
    "EnumerationResult",
    "Enumerator",
]


def __getattr__(name: str):
    """``repro.advisor.VARIANTS`` forwards to the deprecated shim in
    :mod:`repro.advisor.advisor` (which emits the DeprecationWarning) —
    eagerly importing it here would warn on every package import."""
    if name == "VARIANTS":
        from repro.advisor import advisor as _advisor
        return _advisor.VARIANTS
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
