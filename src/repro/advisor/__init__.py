"""Physical design advisor: DTA baseline and compression-aware DTAc."""

from repro.advisor import algorithms
from repro.advisor.advisor import (
    AdvisorOptions,
    AdvisorResult,
    TuningAdvisor,
    VariantSpec,
    get_variant,
    register_variant,
    variant_names,
    variants,
)
from repro.advisor.algorithms import SelectionAlgorithm
from repro.advisor.candidates import (
    CandidateOptions,
    candidate_indexes,
    expand_compression_variants,
    mv_candidates,
)
from repro.advisor.enumeration import (
    EnumerationOptions,
    EnumerationResult,
    Enumerator,
)
from repro.advisor.merging import generate_merged_candidates, merge_pair
from repro.advisor.retune import (
    RetuneResult,
    TuningSession,
    configuration_diff,
    retune_run,
    retune_sequence,
)
from repro.advisor.sweep import SweepResult, SweepRun
from repro.advisor.selection import (
    CandidateConfiguration,
    cluster_skyline,
    evaluate_candidates,
    evaluate_candidates_batch,
    select_skyline,
    select_top_k,
)

__all__ = [
    "AdvisorOptions",
    "AdvisorResult",
    "TuningAdvisor",
    "VariantSpec",
    "algorithms",
    "SelectionAlgorithm",
    "get_variant",
    "register_variant",
    "variant_names",
    "variants",
    "tune",
    "tune_decoupled",
    "run_sweep",
    "TuningSession",
    "RetuneResult",
    "retune_run",
    "retune_sequence",
    "configuration_diff",
    "SweepResult",
    "SweepRun",
    "CandidateOptions",
    "candidate_indexes",
    "expand_compression_variants",
    "mv_candidates",
    "CandidateConfiguration",
    "evaluate_candidates",
    "evaluate_candidates_batch",
    "select_top_k",
    "select_skyline",
    "cluster_skyline",
    "merge_pair",
    "generate_merged_candidates",
    "EnumerationOptions",
    "EnumerationResult",
    "Enumerator",
]


def __getattr__(name: str):
    """Deprecated names forward to the shims in their home modules
    (which emit the DeprecationWarning) — eagerly importing them here
    would warn on every package import.  ``tune``/``tune_decoupled``/
    ``run_sweep`` moved to the :class:`repro.api.Session` facade."""
    if name == "VARIANTS":
        from repro.advisor import advisor as _advisor
        return _advisor.VARIANTS
    if name in ("tune", "tune_decoupled"):
        from repro.advisor import advisor as _advisor
        return getattr(_advisor, name)
    if name == "run_sweep":
        from repro.advisor import sweep as _sweep
        return _sweep.run_sweep
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
