"""Physical design advisor: DTA baseline and compression-aware DTAc."""

from repro.advisor.advisor import (
    VARIANTS,
    AdvisorOptions,
    AdvisorResult,
    TuningAdvisor,
    tune,
    tune_decoupled,
)
from repro.advisor.candidates import (
    CandidateOptions,
    candidate_indexes,
    expand_compression_variants,
    mv_candidates,
)
from repro.advisor.enumeration import (
    EnumerationOptions,
    EnumerationResult,
    Enumerator,
)
from repro.advisor.merging import generate_merged_candidates, merge_pair
from repro.advisor.sweep import SweepResult, SweepRun, run_sweep
from repro.advisor.selection import (
    CandidateConfiguration,
    cluster_skyline,
    evaluate_candidates,
    evaluate_candidates_batch,
    select_skyline,
    select_top_k,
)

__all__ = [
    "AdvisorOptions",
    "AdvisorResult",
    "TuningAdvisor",
    "VARIANTS",
    "tune",
    "tune_decoupled",
    "run_sweep",
    "SweepResult",
    "SweepRun",
    "CandidateOptions",
    "candidate_indexes",
    "expand_compression_variants",
    "mv_candidates",
    "CandidateConfiguration",
    "evaluate_candidates",
    "evaluate_candidates_batch",
    "select_top_k",
    "select_skyline",
    "cluster_skyline",
    "merge_pair",
    "generate_merged_candidates",
    "EnumerationOptions",
    "EnumerationResult",
    "Enumerator",
]
