"""Index merging (Chaudhuri & Narasayya, ICDE'99; Figure 1's Merging box).

Two candidates on the same table merge when one's key is a prefix of the
other's: the merged index takes the longer key and the union of included
columns, potentially serving both source queries with one structure.  The
advisor also generates compressed variants of merged indexes.

Section 6.2 closes by observing that merging was never revisited for
compression: "adding or removing some columns from the merged object
might improve the compression fraction".
:func:`compression_aware_variants` implements that revision — for
ORD-DEP methods (PAGE), the key order controls how values cluster on
pages, so a low-cardinality-first permutation of the same column set can
compress far better; likewise *promoting* a low-cardinality included
column into the leading key position groups the remaining columns into
longer runs.  Both reshapes are emitted as additional candidates and the
what-if optimizer arbitrates, exactly as for every other candidate.
"""

from __future__ import annotations

from typing import Callable

from repro.physical.index_def import IndexDef
from repro.storage.index_build import IndexKind

#: A column is a grouping lead when it has at most this many distinct
#: values per thousand rows (low cardinality relative to the table).
GROUPING_DISTINCT_PER_MILLE = 50.0


def merge_pair(a: IndexDef, b: IndexDef) -> IndexDef | None:
    """Merge two secondary candidates, or None when not mergeable."""
    if a.table != b.table:
        return None
    if a.kind is not IndexKind.SECONDARY or b.kind is not IndexKind.SECONDARY:
        return None
    if a.is_partial or b.is_partial or a.is_mv_index or b.is_mv_index:
        return None
    if a.method is not b.method:
        return None
    short, long_ = (a, b) if len(a.key_columns) <= len(b.key_columns) else (b, a)
    if long_.key_columns[: len(short.key_columns)] != short.key_columns:
        return None
    included = tuple(
        c
        for c in dict.fromkeys(short.included_columns + long_.included_columns)
        if c not in long_.key_columns
    )
    merged = IndexDef(
        table=long_.table,
        key_columns=long_.key_columns,
        included_columns=included,
        kind=IndexKind.SECONDARY,
        method=long_.method,
    )
    if merged == a or merged == b:
        return None
    return merged


def generate_merged_candidates(
    pool: list[IndexDef], max_new: int = 50
) -> list[IndexDef]:
    """All pairwise merges over the candidate pool (bounded)."""
    out: list[IndexDef] = []
    seen = set(pool)
    for i in range(len(pool)):
        for j in range(i + 1, len(pool)):
            if len(out) >= max_new:
                return out
            merged = merge_pair(pool[i], pool[j])
            if merged is not None and merged not in seen:
                seen.add(merged)
                out.append(merged)
    return out


def compression_aware_variants(
    index: IndexDef,
    n_distinct: Callable[[str, str], int],
    n_rows: Callable[[str], int],
) -> list[IndexDef]:
    """Column reshapes of one (merged) candidate that can improve its
    compression fraction (Section 6.2's closing note).

    Args:
        index: a secondary, non-partial, non-MV candidate.
        n_distinct: ``(table, column) ->`` distinct count.
        n_rows: ``table ->`` row count.

    Returns:
        Up to two variants: the low-cardinality-first key permutation,
        and the promotion of the lowest-cardinality included column to
        the head of the key.  Both preserve the stored column *set*, so
        they cover the same queries; only seek usability and compression
        behaviour differ — decisions the what-if optimizer owns.
    """
    if index.kind is not IndexKind.SECONDARY:
        return []
    if index.is_partial or index.is_mv_index:
        return []
    rows = max(1, n_rows(index.table))
    threshold = rows * GROUPING_DISTINCT_PER_MILLE / 1000.0

    def distinct(column: str) -> int:
        return max(1, n_distinct(index.table, column))

    out: list[IndexDef] = []

    reordered = tuple(
        sorted(index.key_columns, key=lambda c: (distinct(c), c))
    )
    if reordered != index.key_columns:
        out.append(
            IndexDef(
                table=index.table,
                key_columns=reordered,
                included_columns=index.included_columns,
                kind=IndexKind.SECONDARY,
                method=index.method,
            )
        )

    grouping = [
        c for c in index.included_columns if distinct(c) <= threshold
    ]
    if grouping:
        lead = min(grouping, key=lambda c: (distinct(c), c))
        promoted = IndexDef(
            table=index.table,
            key_columns=(lead, *index.key_columns),
            included_columns=tuple(
                c for c in index.included_columns if c != lead
            ),
            kind=IndexKind.SECONDARY,
            method=index.method,
        )
        if promoted not in out:
            out.append(promoted)
    return [v for v in out if v != index]
