"""Syntactically relevant candidate generation (the Candidate Selection
input of Figure 4).

For each SELECT, indexable columns come from equality/range predicates,
join columns, GROUP BY and ORDER BY; covering variants add the remaining
referenced columns as included columns.  With compression enabled, every
candidate is expanded into its ROW- and PAGE-compressed variants — the
paper's observation that the candidate space multiplies per compression
method.  Partial-index and MV candidates follow Appendix B's supported
shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Database
from repro.compression.base import ADVISOR_METHODS, CompressionMethod
from repro.physical.index_def import IndexDef
from repro.physical.mv_def import MVDefinition
from repro.storage.index_build import IndexKind
from repro.workload.query import SelectQuery, Statement


@dataclass(frozen=True)
class CandidateOptions:
    """Knobs of candidate generation.

    Attributes:
        enable_compression: also emit ROW/PAGE variants.
        enable_partial: emit partial (filtered) index candidates.
        enable_mv: emit MV + MV-index candidates.
        max_key_columns: cap on composite key length.
        max_candidates_per_query: cap before compression expansion.
    """

    enable_compression: bool = True
    enable_partial: bool = False
    enable_mv: bool = False
    max_key_columns: int = 4
    max_candidates_per_query: int = 10


def _table_predicate_columns(database: Database, query: SelectQuery,
                             table: str) -> tuple[list[str], list[str]]:
    eq_cols: list[str] = []
    range_cols: list[str] = []
    for p in query.predicates_of_table(database, table):
        for c in p.columns():
            if p.is_equality and c not in eq_cols:
                eq_cols.append(c)
            elif p.is_range and c not in range_cols:
                range_cols.append(c)
    return eq_cols, range_cols


def _join_columns(database: Database, query: SelectQuery,
                  table: str) -> list[str]:
    tbl = database.table(table)
    out = []
    for j in query.joins:
        for c in (j.left_column, j.right_column):
            if tbl.has_column(c) and c not in out:
                out.append(c)
    return out


def _of_table(database: Database, table: str, cols) -> list[str]:
    tbl = database.table(table)
    return [c for c in cols if tbl.has_column(c)]


def candidate_indexes(
    database: Database,
    query: Statement,
    options: CandidateOptions,
) -> list[IndexDef]:
    """Candidate indexes (and MV indexes) for one statement."""
    if not isinstance(query, SelectQuery):
        return []
    out: list[IndexDef] = []
    seen: set = set()

    def emit(index: IndexDef) -> None:
        key = (index.table, index.key_columns, index.included_columns,
               index.kind, index.filter, index.mv)
        if key not in seen:
            seen.add(key)
            out.append(index)

    for table in query.tables:
        eq_cols, range_cols = _table_predicate_columns(database, query, table)
        join_cols = _join_columns(database, query, table)
        group_cols = _of_table(database, table, query.group_by)
        order_cols = _of_table(database, table, query.order_by)
        needed = query.columns_of_table(database, table)
        mk = options.max_key_columns

        key_sets: list[tuple[str, ...]] = []

        def add_key(cols) -> None:
            cols = tuple(cols)[:mk]
            if cols and cols not in key_sets:
                key_sets.append(cols)

        add_key(eq_cols)
        add_key(eq_cols + range_cols[:1])
        for c in eq_cols[:2]:
            add_key([c])
        for c in range_cols[:1]:
            add_key([c])
            add_key([c] + eq_cols)
        for c in join_cols[:2]:
            add_key([c])
            add_key([c] + eq_cols)
        add_key(group_cols)
        add_key(order_cols)

        key_sets = key_sets[: options.max_candidates_per_query]
        for keys in key_sets:
            emit(IndexDef(table, keys, kind=IndexKind.SECONDARY))
            include = tuple(c for c in needed if c not in keys)
            if include:
                emit(
                    IndexDef(
                        table, keys, included_columns=include,
                        kind=IndexKind.SECONDARY,
                    )
                )
        # A clustered candidate on the primary sargable column set: changes
        # the table's base structure instead of adding a secondary.
        cluster_keys = (
            tuple(range_cols[:1] + eq_cols)[:mk]
            or tuple(group_cols)[:mk]
            or tuple(join_cols[:1])
        )
        if cluster_keys:
            emit(IndexDef(table, cluster_keys, kind=IndexKind.CLUSTERED))

        if options.enable_partial:
            for p in query.predicates_of_table(database, table):
                rest = [c for c in needed if c not in p.columns()]
                if not rest:
                    continue
                emit(
                    IndexDef(
                        table,
                        tuple(rest[:2]),
                        included_columns=tuple(rest[2:6]),
                        kind=IndexKind.SECONDARY,
                        filter=p,
                    )
                )

    if options.enable_mv and len(query.tables) > 1:
        for mv in mv_candidates(database, query):
            keys = mv.group_by or tuple(
                name for name, _ in mv.storage_columns(database)
            )[:2]
            emit(
                IndexDef(
                    mv.name,
                    tuple(keys),
                    kind=IndexKind.CLUSTERED,
                    mv=mv,
                )
            )

    return out


def mv_candidates(database: Database, query: SelectQuery) -> list[MVDefinition]:
    """MV candidates matching a join (+ optional group-by) query.

    Two shapes are proposed: the exact-match view (with the query's
    filters baked in) and the filter-free view (reusable across parameter
    values; residual predicates must then land on group-by columns —
    checked by :func:`repro.optimizer.statement_cost.mv_matches_query`).
    """
    if not query.joins:
        return []
    fact = query.root_table
    if not database.foreign_keys_from(fact):
        return []
    out = []
    base_name = "mv_" + "_".join(query.tables) + "_" + "_".join(
        query.group_by or ("proj",)
    )
    if query.group_by or query.aggregates:
        out.append(
            MVDefinition(
                name=base_name + "_exact",
                fact_table=fact,
                tables=tuple(query.tables),
                joins=query.joins,
                predicates=query.predicates,
                group_by=query.group_by,
                aggregates=query.aggregates,
            )
        )
        if query.group_by:
            out.append(
                MVDefinition(
                    name=base_name + "_general",
                    fact_table=fact,
                    tables=tuple(query.tables),
                    joins=query.joins,
                    predicates=(),
                    group_by=query.group_by,
                    aggregates=query.aggregates,
                )
            )
    return out


def expand_compression_variants(
    candidates: list[IndexDef],
    enable_compression: bool,
) -> list[IndexDef]:
    """Each candidate under every advisor compression package."""
    if not enable_compression:
        return [ix.with_method(CompressionMethod.NONE) for ix in candidates]
    out = []
    for ix in candidates:
        for method in ADVISOR_METHODS:
            out.append(ix.with_method(method))
    return out
