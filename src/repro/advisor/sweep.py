"""Sweep orchestration: a whole budget sweep / multi-seed ablation as
one job.

The paper's design experiments are dominated by *repeated* advisor runs
over the same workload — budget sweeps (Figures 12-17), sampling-seed
ablations, estimator comparisons.  PR 1's engine parallelizes within a
single run (one SampleCF batch, one configuration sweep); this module
shards at the level above: the work unit is an **entire advisor run**,
and one long-lived :class:`ParallelEngine` session serves every greedy
step of every (budget, seed) combination.

Determinism contract
--------------------
``run_sweep`` returns byte-identical :class:`AdvisorResult`\\ s to
looping :func:`repro.advisor.tune` sequentially with the same per-run
wiring, at any worker count.  Three design choices make that hold:

* Each run unit gets a **fresh** :class:`SizeEstimator` (its own
  :class:`SampleManager` seeded with the unit's seed), so no run's
  in-memory estimate state can steer another's deduction planning.
* Each run unit gets a :meth:`fork_view` snapshot of the persistent
  caches as they stood *before the sweep started* — whether the unit
  executes in the parent (``workers=1``) or in a forked worker, it sees
  the identical cache state; entries a sibling persists mid-sweep are
  invisible.  Fresh entries still merge into the shared cache directory
  on save, so the *next* sweep runs warm.
* What-if cost entries are keyed on the statement x sized-structure
  signatures (see :class:`repro.parallel.cache.CostCache`), so a cost
  hit replays arithmetic that is identical by construction — a warm
  cost cache can skip costing entirely without moving any result.
* The in-run delta memo
  (:class:`repro.optimizer.delta.DeltaWorkloadCoster`) follows the same
  fork-view discipline, taken to its limit: its keys deliberately do
  *not* embed size estimates, so each unit's :class:`TuningAdvisor`
  builds a fresh coster against its own seeded estimator — no unit can
  ever observe a sibling's memoized terms, and delta-costed units stay
  byte-identical to full-recost units whether they execute in the
  parent or in a forked worker.

Shared state that is *safe* to share — the database, the workload, and
:class:`DatabaseStats` (a pure function of the data) — is built once
and inherited by every worker through fork memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.advisor import algorithms
from repro.advisor.advisor import (
    AdvisorResult,
    TuningAdvisor,
    get_variant,
)
from repro.catalog.schema import Database
from repro.errors import AdvisorError
from repro.parallel.cache import CostCache, EstimationCache
from repro.parallel.engine import ParallelEngine
from repro.sampling.sample_manager import DEFAULT_SAMPLE_SEED, SampleManager
from repro.sizeest.estimator import SizeEstimator
from repro.stats.column_stats import DatabaseStats
from repro.workload.query import Workload


@dataclass
class SweepRun:
    """One completed unit of a sweep: the advisor result for a
    (sampling seed, storage budget) combination."""

    seed: int
    budget_bytes: float
    result: AdvisorResult


@dataclass
class SweepResult:
    """Outcome of one sweep job.

    ``runs`` is ordered seeds-outer, budgets-inner — the same order a
    sequential ``for seed: for budget: tune(...)`` loop would produce.
    Cache stats are aggregated across every unit (sums of hits/misses/
    stores, recomputed hit rate).
    """

    runs: list[SweepRun] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    workers: int = 1
    engine_stats: dict = field(default_factory=dict)
    estimation_cache_stats: dict = field(default_factory=dict)
    cost_cache_stats: dict = field(default_factory=dict)
    #: summed per-unit delta-costing counters (empty when delta costing
    #: was disabled for the sweep).
    delta_stats: dict = field(default_factory=dict)

    @property
    def results(self) -> list[AdvisorResult]:
        return [run.result for run in self.runs]

    def run_for(self, budget_bytes: float,
                seed: int | None = None) -> AdvisorResult:
        """The result for one (budget, seed); seed defaults to the
        sweep's only seed when unambiguous."""
        matches = [
            run for run in self.runs
            if run.budget_bytes == budget_bytes
            and (seed is None or run.seed == seed)
        ]
        if len(matches) != 1:
            raise AdvisorError(
                f"{len(matches)} sweep runs match budget={budget_bytes!r} "
                f"seed={seed!r}"
            )
        return matches[0].result


#: delta-stats keys that are per-unit gauges (table sizes), not event
#: counters — aggregated by max, never summed.
_DELTA_GAUGES = frozenset({
    "statements", "memo_entries", "probe_entries", "maintenance_entries",
})


def _aggregate_delta_stats(per_run: Sequence[dict]) -> dict:
    """Combine per-unit delta-costing stats into sweep totals: event
    counters sum, gauge-valued keys (statement count, memo/probe table
    sizes) take the per-unit maximum (empty when no unit had delta
    costing on)."""
    agg: dict = {}
    for stats in per_run:
        for key, value in stats.items():
            if not isinstance(value, (int, float)):
                continue
            if key in _DELTA_GAUGES:
                agg[key] = max(agg.get(key, 0), value)
            else:
                agg[key] = agg.get(key, 0) + value
    return agg


def _aggregate_cache_stats(per_run: Sequence[dict]) -> dict:
    """Sum per-run cache counters into sweep totals (empty when no run
    had a cache wired)."""
    agg = {"hits": 0, "misses": 0, "stores": 0, "entries": 0}
    seen = False
    for stats in per_run:
        if not stats:
            continue
        seen = True
        for key in ("hits", "misses", "stores"):
            agg[key] += stats.get(key, 0)
        agg["entries"] = max(agg["entries"], stats.get("entries", 0))
    if not seen:
        return {}
    lookups = agg["hits"] + agg["misses"]
    agg["hit_rate"] = agg["hits"] / lookups if lookups else 0.0
    return agg


class _SweepJob:
    """The fork context of one sweep: everything a worker needs to run
    any unit, inherited through fork memory (never pickled)."""

    def __init__(
        self,
        database: Database,
        workload: Workload,
        units: list[tuple[int, float]],
        variant: str,
        options_extra: dict,
        stats: DatabaseStats,
        estimation_cache: EstimationCache | None,
        cost_cache: CostCache | None,
    ) -> None:
        self.database = database
        self.workload = workload
        self.units = units
        self.variant = variant
        self.options_extra = options_extra
        self.stats = stats
        self.estimation_cache = estimation_cache
        self.cost_cache = cost_cache

    def run_unit(self, index: int, progress=None) -> AdvisorResult:
        """Run one (seed, budget) unit against a snapshot view of the
        pre-sweep cache state; identical in parent and worker.

        ``progress`` (parent-side sequential execution only — workers
        never carry a hook) forwards the unit's advisor events."""
        seed, budget = self.units[index]
        options = get_variant(self.variant).advisor_options(
            budget, **self.options_extra
        )
        estimator = SizeEstimator(
            self.database,
            stats=self.stats,
            manager=SampleManager(self.database, seed=seed),
            e=options.e,
            q=options.q,
            cache=(
                self.estimation_cache.fork_view()
                if self.estimation_cache is not None else None
            ),
        )
        advisor = TuningAdvisor(
            self.database,
            self.workload,
            options,
            estimator=estimator,
            stats=self.stats,
            engine=ParallelEngine(workers=1),
            cost_cache=(
                self.cost_cache.fork_view()
                if self.cost_cache is not None else None
            ),
            progress=progress,
        )
        return advisor.run()


def _run_unit_task(job: _SweepJob, index: int) -> AdvisorResult:
    """Worker task: one whole advisor run (the sweep's shard unit)."""
    return job.run_unit(index)


def __getattr__(name: str):
    """PEP 562 deprecation shim: ``run_sweep`` became
    ``repro.api.Session.sweep``.  The original function is returned
    unchanged (byte-identical behaviour) behind a warning."""
    if name == "run_sweep":
        import warnings

        warnings.warn(
            "repro.advisor.sweep.run_sweep() is deprecated; use "
            "repro.api.Session.sweep instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return _run_sweep
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def _run_sweep(
    database: Database,
    workload: Workload,
    budgets: Sequence[float],
    *,
    seeds: Sequence[int] | None = None,
    variant: str = "dtac-both",
    workers: int = 1,
    cache_dir: str | None = None,
    stats: DatabaseStats | None = None,
    engine: ParallelEngine | None = None,
    progress=None,
    **options_extra,
) -> SweepResult:
    """Run a full budget sweep / seed ablation as one sharded job.

    Args:
        database/workload: what to tune.
        budgets: absolute storage budgets in bytes, one advisor run per
            (seed, budget).
        seeds: sampling seeds to ablate over (default: the estimator's
            standard seed, i.e. a plain budget sweep).
        variant: advisor variant name (see :func:`repro.advisor.variants`).
        workers: pool size for run-level sharding (0 = one per CPU,
            1 = sequential); results are identical at any value.
        cache_dir: directory for the persistent size-estimate and
            what-if cost caches, shared by every unit and across sweeps
            (a rerun of the same sweep skips costing almost entirely).
        stats: precomputed :class:`DatabaseStats` (built once if
            omitted).
        engine: injected :class:`ParallelEngine` (tests); overrides
            ``workers``.
        progress: observational event hook (may raise to abort — the
            job layer's cancellation path).  Sequential execution
            forwards every unit's advisor events tagged with the unit
            index; sharded execution reports per-unit boundaries only
            (fan-out results come back all at once).
        **options_extra: extra :class:`AdvisorOptions` fields applied to
            every unit (e.g. ``e=0.25``, ``enable_mv=True``).

    Returns:
        A :class:`SweepResult`, runs ordered seeds-outer budgets-inner.
    """
    get_variant(variant)
    algorithms.get(options_extra.get("algorithm", algorithms.DEFAULT_ALGORITHM))
    for reserved in ("workers", "cache_dir", "budget_bytes"):
        if reserved in options_extra:
            raise AdvisorError(
                f"pass {reserved!r} as a run_sweep argument, not via "
                "advisor options — the sweep owns engine and cache wiring"
            )
    if not budgets:
        raise AdvisorError("run_sweep needs at least one budget")
    seeds = tuple(seeds) if seeds else (DEFAULT_SAMPLE_SEED,)
    units = [(seed, float(budget)) for seed in seeds for budget in budgets]

    start = time.perf_counter()
    stats = stats or DatabaseStats(database)
    estimation_cache = (
        EstimationCache(cache_dir) if cache_dir is not None else None
    )
    cost_cache = CostCache(cache_dir) if cache_dir is not None else None
    job = _SweepJob(
        database, workload, units, variant, dict(options_extra),
        stats, estimation_cache, cost_cache,
    )
    def emit(event: str, **fields) -> None:
        if progress is not None:
            progress({"event": event, **fields})

    owns_engine = engine is None
    engine = engine or ParallelEngine(workers)
    try:
        if engine.parallel and len(units) >= engine.min_batch:
            # One session for the whole sweep: workers fork once,
            # inherit the database/stats/cache snapshot, and serve
            # every greedy step of every unit until the sweep ends.
            emit("sweep_sharded", units=len(units),
                 workers=engine.workers)
            with engine.session(job):
                results = engine.map(_run_unit_task, range(len(units)), job)
            for i, (seed, budget) in enumerate(units):
                emit("sweep_unit", unit=i, units=len(units),
                     seed=seed, budget_bytes=budget, status="done")
        else:
            results = []
            for i, (seed, budget) in enumerate(units):
                emit("sweep_unit", unit=i, units=len(units),
                     seed=seed, budget_bytes=budget, status="started")
                unit_progress = (
                    (lambda ev, _i=i: progress({**ev, "unit": _i}))
                    if progress is not None else None
                )
                results.append(job.run_unit(i, progress=unit_progress))
                emit("sweep_unit", unit=i, units=len(units),
                     seed=seed, budget_bytes=budget, status="done")
    finally:
        if owns_engine:
            engine.shutdown()

    runs = [
        SweepRun(seed=seed, budget_bytes=budget, result=result)
        for (seed, budget), result in zip(units, results)
    ]
    return SweepResult(
        runs=runs,
        elapsed_seconds=time.perf_counter() - start,
        workers=engine.workers,
        engine_stats=engine.stats(),
        estimation_cache_stats=_aggregate_cache_stats(
            [run.result.cache_stats for run in runs]
        ),
        cost_cache_stats=_aggregate_cache_stats(
            [run.result.cost_cache_stats for run in runs]
        ),
        delta_stats=_aggregate_delta_stats(
            [run.result.delta_stats for run in runs]
        ),
    )
