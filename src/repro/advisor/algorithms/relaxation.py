"""Drop-based relaxation: start from everything, remove until it fits.

The mirror image of greedy construction (and the idiom of several
production tuners): materialize the *full* candidate pool on top of the
base configuration, then repeatedly drop the structure with the lowest
attributed benefit density until the budget is met, finishing with
cost-checked drop iterations that terminate at the first round where no
drop helps.

Phases:

1. **Saturate** — add every pool candidate to the base configuration.
   Method variants of the same logical index collapse to one structure
   (the smallest estimated variant), otherwise the start state would
   hold NONE/ROW/PAGE triplets of every candidate.
2. **Budget relaxation** — per-candidate benefits are attributed once
   (same machinery as the knapsack algorithm); while the configuration
   is over budget, drop the secondary/MV structure with the lowest
   benefit density (fewest uses first, display-name tie-break).
   Base-structure swaps are never dropped here: reverting a compressed
   heap *grows* consumption.
3. **Terminating drop iterations** — while over-budget or improving:
   batch-cost every single-structure removal and accept the one with
   the best true cost; stop at the first round where no removal lowers
   the cost (or, when still over budget, frees space at a cost increase
   below the acceptance threshold).  Each round removes one structure,
   so termination is structural, not clocked.
"""

from __future__ import annotations

from repro.advisor.algorithms.base import (
    EnumerationResult,
    SelectionAlgorithm,
    register,
)
from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.storage.index_build import IndexKind

#: method tie-break for equal quantized sizes: cheapest CPU first.
_METHOD_RANK = {"none": 0, "row": 1, "page": 2}


@register
class RelaxationAlgorithm(SelectionAlgorithm):
    """Start from the full expanded/merged pool and iteratively drop
    the lowest benefit-density structure until the budget fits."""

    name = "relaxation"
    summary = (
        "Saturate with the full candidate pool, then drop the lowest "
        "benefit-density structures until the budget fits"
    )

    def run(self, pool: list[IndexDef],
            base_config: Configuration) -> EnumerationResult:
        self._rebase(base_config)
        base_cost = self.workload_cost(base_config)
        steps: list[str] = []
        config = self._saturate(pool, base_config, steps)
        if config == base_config:
            return EnumerationResult(
                configuration=base_config,
                cost=base_cost,
                consumed_bytes=self.consumed(base_config),
                steps=steps,
            )
        benefits = {
            entry.index: entry
            for entry in self._attributed_benefits(pool, base_config)
        }
        self._rebase(config)
        config = self._relax_to_budget(config, base_config, benefits, steps)
        self._rebase(config)
        cost = self.batch_cost([config])[0]
        config, cost = self._drop_iterations(
            config, cost, base_config, steps
        )
        if cost > base_cost and self.fits(base_config):
            # Relaxation bottomed out worse than doing nothing.
            steps.append(f"relaxation floor: keep base {base_cost:.1f}")
            config, cost = base_config, base_cost
        return EnumerationResult(
            configuration=config,
            cost=cost,
            consumed_bytes=self.consumed(config),
            steps=steps,
        )

    # ------------------------------------------------------------------
    def _saturate(
        self,
        pool: list[IndexDef],
        base_config: Configuration,
        steps: list[str],
    ) -> Configuration:
        """Base + every pool candidate, one structure per logical index
        (the smallest method variant; NONE < ROW < PAGE tie-break keeps
        the choice deterministic under equal quantized sizes)."""
        by_identity: dict[tuple, IndexDef] = {}
        for ix in pool:
            identity = (
                ix.table, tuple(ix.key_columns),
                tuple(ix.included_columns), ix.kind, ix.filter,
                ix.is_mv_index,
            )
            best = by_identity.get(identity)
            if best is None or (
                self.index_size(ix), _METHOD_RANK[ix.method.value]
            ) < (self.index_size(best), _METHOD_RANK[best.method.value]):
                by_identity[identity] = ix
        config = base_config
        for ix in by_identity.values():
            if ix in config:
                continue
            candidate = config.add(ix)
            if candidate != config:
                config = candidate
        steps.append(
            f"saturate: {len(list(config))} structures, "
            f"{self.consumed(config):.0f} bytes"
        )
        self._emit_step("saturate", steps[-1], self.consumed(config))
        return config

    def _droppable(
        self, config: Configuration, base_config: Configuration
    ) -> list[IndexDef]:
        """Structures eligible for removal, in the stable member order:
        everything that is not part of the original base."""
        return [ix for ix in config.ordered() if ix not in base_config]

    def _relax_to_budget(
        self,
        config: Configuration,
        base_config: Configuration,
        benefits: dict,
        steps: list[str],
    ) -> Configuration:
        """Cheap relaxation: while over budget, drop the secondary/MV
        structure with the lowest attributed benefit density (fewest
        uses first, per the usage/size drop-candidate idiom) without
        recosting every round."""
        while not self.fits(config):
            self._emit("sweep", candidates=len(list(config)),
                       cost=self.consumed(config))
            candidates = [
                ix for ix in self._droppable(config, base_config)
                if ix.kind is IndexKind.SECONDARY or ix.is_mv_index
            ]
            if not candidates:
                break
            def drop_rank(ix: IndexDef):
                entry = benefits.get(ix)
                if entry is None:
                    return (0, 0.0, ix.display_name())
                return (entry.uses, entry.density(), ix.display_name())
            victim = min(candidates, key=drop_rank)
            config = config.remove(victim)
            steps.append(f"drop {victim.display_name()}")
            self._emit_step("drop", steps[-1], self.consumed(config))
        return config

    def _drop_iterations(
        self,
        config: Configuration,
        cost: float,
        base_config: Configuration,
        steps: list[str],
    ) -> tuple[Configuration, float]:
        """Terminating drop iterations: accept the single removal with
        the best true workload cost each round; stop when no removal
        lowers the cost (unless still over budget, where the cheapest
        space-freeing removal is accepted regardless)."""
        for _round in range(len(list(config)) + 1):
            droppable = self._droppable(config, base_config)
            if not droppable:
                break
            self._emit("sweep", candidates=len(droppable), cost=cost)
            removals = [
                self._revert_member(config, ix, base_config)
                for ix in droppable
            ]
            kept = [
                (ix, removed)
                for ix, removed in zip(droppable, removals)
                if removed != config
            ]
            costs = self.batch_cost([removed for _ix, removed in kept])
            best = None        # (cost, -freed, name) — comparable key
            best_config = None
            for (ix, removed), removed_cost in zip(kept, costs):
                freed = self.consumed(config) - self.consumed(removed)
                key = (removed_cost, -freed, ix.display_name())
                if best is None or key < best:
                    best, best_config = key, removed
            if best is None:
                break
            over_budget = not self.fits(config)
            improves = best[0] < cost - 1e-9
            frees = -best[1] > 0
            if not improves and not (over_budget and frees):
                break
            cost, config = best[0], best_config
            self._rebase(config)
            steps.append(f"relax {best[2]}: -> {cost:.1f}")
            self._emit_step("drop", steps[-1], cost)
        return config, cost
