"""IBM-style knapsack selection (Valentin et al., "DB2 Advisor: An
optimizer smart enough to recommend its own indexes", ICDE 2000).

Three phases over the shared candidate pool:

1. **Attribution** — every candidate's benefit is the weighted sum of
   the per-statement cost reductions it achieves *alone* on top of the
   base configuration (batched through the advisor's delta-aware
   query-cost hook).  Candidates whose key prefix and column set are
   covered by a wider same-method candidate are folded into it
   (*subsumption combining*), so the knapsack does not spend budget on
   redundant prefixes.
2. **Knapsack fill** — candidates are taken in benefit/size-ratio order
   while they fit the budget.  Base-structure swaps with a negative
   size delta (compressing a heap *frees* budget) rank first: they
   relax the constraint for everything after them.
3. **try_variations** — a budgeted random-swap refinement: remove a few
   members, refill by ratio order, keep the variation only when the
   true workload cost improves.  Unlike the original's wall-clock
   limit, the budget is an *iteration count* and the RNG is seeded per
   run, so recommendations are reproducible across machines, worker
   counts and hash seeds.
"""

from __future__ import annotations

import random

from repro.advisor.algorithms.base import (
    EnumerationResult,
    IndexBenefit,
    SelectionAlgorithm,
    register,
)
from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef


@register
class IBMKnapsackAlgorithm(SelectionAlgorithm):
    """Benefit/size-ratio knapsack with subsumption combining and a
    deterministic budgeted random-swap refinement."""

    name = "ibm"
    summary = (
        "Per-statement benefit attribution, benefit/size-ratio knapsack "
        "with subsumption combining, seeded try_variations refinement"
    )

    #: random-swap refinement budget — iterations, not seconds, so the
    #: search is wall-clock-free and reproducible.
    variation_iterations = 24
    #: at most this many members removed per variation.
    variation_max_remove = 2
    #: fixed RNG seed (the paper's publication date); per-run streams
    #: derive only from it and the deterministic member order.
    variation_seed = 20110829

    @classmethod
    def options_schema(cls) -> dict:
        return {
            **super().options_schema(),
            "variation_iterations": {
                "type": "integer", "default": cls.variation_iterations,
                "description": "random-swap refinement iterations "
                               "(class attribute; wall-clock-free)",
            },
        }

    def run(self, pool: list[IndexDef],
            base_config: Configuration) -> EnumerationResult:
        self._rebase(base_config)
        base_cost = self.workload_cost(base_config)
        self._emit("sweep", candidates=len(pool), cost=base_cost)
        entries = self._attributed_benefits(pool, base_config)
        entries = self._combine_subsumed(entries)
        order = self._fill_order(entries)
        steps: list[str] = []
        config = self._knapsack_fill(order, base_config, steps)
        if config == base_config:
            return EnumerationResult(
                configuration=base_config,
                cost=base_cost,
                consumed_bytes=self.consumed(base_config),
                steps=steps,
            )
        self._rebase(config)
        cost = self.batch_cost([config])[0]
        if cost >= base_cost:
            # Additive attribution over-promised (interactions, update
            # penalties): fall back to the base and let the variation
            # phase search for a configuration that actually helps.
            config, cost = base_config, base_cost
            steps.append(f"knapsack rejected: {base_cost:.1f} floor")
            self._rebase(config)
        config, cost = self._try_variations(
            order, config, cost, base_config, steps
        )
        return EnumerationResult(
            configuration=config,
            cost=cost,
            consumed_bytes=self.consumed(config),
            steps=steps,
        )

    # ------------------------------------------------------------------
    def _combine_subsumed(
        self, entries: list[IndexBenefit]
    ) -> list[IndexBenefit]:
        """Fold each candidate's benefit into the widest same-method
        candidate that subsumes it (key prefix + column subset), and
        drop the subsumed ones — they would only duplicate budget."""
        ranked = sorted(
            entries,
            key=lambda e: (-e.benefit, e.index.display_name()),
        )
        kept: list[IndexBenefit] = []
        for entry in ranked:
            winner = None
            for i, wider in enumerate(kept):
                if _subsumes(wider.index, entry.index):
                    winner = i
                    break
            if winner is None:
                kept.append(entry)
            else:
                wider = kept[winner]
                kept[winner] = IndexBenefit(
                    index=wider.index,
                    benefit=wider.benefit + entry.benefit,
                    uses=max(wider.uses, entry.uses),
                    delta_bytes=wider.delta_bytes,
                )
        return kept

    def _fill_order(
        self, entries: list[IndexBenefit]
    ) -> list[IndexBenefit]:
        """Knapsack order: space-freeing base swaps first (they relax
        the budget), then descending benefit/size ratio; display-name
        tie-break keeps the order hash-seed independent."""
        useful = [
            e for e in entries if e.benefit > 0 or e.delta_bytes < 0
        ]
        return sorted(
            useful,
            key=lambda e: (
                0 if e.delta_bytes < 0 else 1,
                -e.density(),
                e.index.display_name(),
            ),
        )

    def _knapsack_fill(
        self,
        order: list[IndexBenefit],
        base_config: Configuration,
        steps: list[str],
    ) -> Configuration:
        config = base_config
        for entry in order:
            candidate = config.add(entry.index)
            if candidate == config:
                continue
            if not self.fits(candidate):
                continue
            config = candidate
            steps.append(
                f"knapsack add {entry.index.display_name()} "
                f"(benefit {entry.benefit:.1f})"
            )
            self._emit_step("knapsack", steps[-1], entry.benefit)
        return config

    # ------------------------------------------------------------------
    def _try_variations(
        self,
        order: list[IndexBenefit],
        best_config: Configuration,
        best_cost: float,
        base_config: Configuration,
        steps: list[str],
    ) -> tuple[Configuration, float]:
        """Seeded random-swap refinement: remove up to
        ``variation_max_remove`` members, refill by ratio order, keep
        the variation only when the true workload cost improves."""
        rng = random.Random(self.variation_seed)
        for _it in range(self.variation_iterations):
            removable = [
                ix for ix in best_config.ordered()
                if ix not in base_config
            ]
            if not removable:
                break
            # A cancellation point per variation, like a greedy sweep.
            self._emit("sweep", candidates=len(removable), cost=best_cost)
            k = 1 + rng.randrange(
                min(self.variation_max_remove, len(removable))
            )
            removed = rng.sample(removable, k)
            work = best_config
            for ix in removed:
                work = self._revert_member(work, ix, base_config)
            banned = {ix.display_name() for ix in removed}
            for entry in order:
                if entry.index.display_name() in banned:
                    continue
                candidate = work.add(entry.index)
                if candidate == work:
                    continue
                if self.fits(candidate):
                    work = candidate
            if work == best_config:
                continue
            cost = self.batch_cost([work])[0]
            if cost < best_cost - 1e-9:
                best_config, best_cost = work, cost
                self._rebase(best_config)
                steps.append(f"variation: -> {best_cost:.1f}")
                self._emit_step("variation", steps[-1], best_cost)
        return best_config, best_cost


def _subsumes(wider: IndexDef, narrow: IndexDef) -> bool:
    """Whether ``wider`` makes ``narrow`` redundant: same table, kind
    and method, ``narrow``'s key is a prefix of ``wider``'s, and every
    column it carries is carried by ``wider`` too."""
    if wider.is_mv_index or narrow.is_mv_index:
        return False
    if (
        wider.table != narrow.table
        or wider.kind is not narrow.kind
        or wider.method is not narrow.method
        or wider.filter != narrow.filter
    ):
        return False
    n = len(narrow.key_columns)
    if n > len(wider.key_columns):
        return False
    if tuple(wider.key_columns[:n]) != tuple(narrow.key_columns):
        return False
    return set(narrow.column_sequence) <= set(wider.column_sequence)
