"""The paper's search: greedy over the candidate union (Section 6.2)
with seeded multi-start, per-step backtracking, and a final method
polish — extracted verbatim from the original ``Enumerator`` so golden
recommendations stay byte-identical.

Variants (all knobs on :class:`EnumerationOptions`):

* **pure greedy** — add the index with the largest workload-cost drop
  that still fits the budget (classic DTA).
* **density greedy** — rank by benefit per byte (DB2-advisor style).
* **backtracking** — when the best choice is oversized, try to *recover*
  it by swapping indexes of the tentative configuration to compressed
  variants until it fits (Figure 8), then compare against the feasible
  greedy choices as usual.
* **seeded multi-start** — greedy search is not monotone in the budget:
  with a large budget the single best first pick can be a huge covering
  index that strands the search in a poor local optimum. Like the
  Greedy(m,k) enumeration of the original index-selection work
  (Chaudhuri & Narasayya, VLDB 1997) that DTA itself uses, we run the
  greedy loop from each of the top ``seed_fanout`` first choices and
  keep the cheapest final configuration.
"""

from __future__ import annotations

from repro.advisor.algorithms.base import (
    EnumerationResult,
    SelectionAlgorithm,
    register,
)
from repro.compression.base import CompressionMethod
from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.storage.index_build import IndexKind


@register
class GreedyBacktrackAlgorithm(SelectionAlgorithm):
    """Runs the greedy/density/backtracking search."""

    name = "greedy-backtrack"
    summary = (
        "Seeded multi-start greedy with compression backtracking and a "
        "final method polish (the paper's DTA/DTAc search; default)"
    )

    @classmethod
    def options_schema(cls) -> dict:
        return {
            **super().options_schema(),
            "strategy": {
                "type": "string", "default": "greedy",
                "description": "'greedy' (cost drop) or 'density' "
                               "(cost drop per byte) step scoring",
            },
            "backtracking": {
                "type": "boolean", "default": False,
                "description": "recover oversized picks by compressing "
                               "members until they fit (Figure 8)",
            },
            "seed_fanout": {
                "type": "integer", "default": 3,
                "description": "distinct first choices to grow full "
                               "greedy runs from",
            },
        }

    def _bound_pruning_safe(self) -> bool:
        # Greedy scoring only: score == delta_cost, so a candidate whose
        # optimistic cap is strictly below a costed survivor's delta can
        # win neither selection channel.  Without backtracking that
        # yields the plain threshold prune; with backtracking the sweep
        # routes through the rescue prune (see
        # ``_rescue_candidate_costs``), which additionally protects the
        # best-oversized channel.  Density scoring stays unpruned: its
        # score is delta/size, so a tiny-delta candidate can outrank
        # arbitrarily large deltas.
        return self.options.strategy == "greedy"

    def run(self, pool: list[IndexDef],
            base_config: Configuration) -> EnumerationResult:
        """Search for the best configuration reachable from
        ``base_config`` by adding pool members: seeded multi-start
        greedy, per-step backtracking, and a final method polish."""
        self._rebase(base_config)
        base_cost = self.workload_cost(base_config)
        starts = self._starting_points(pool, base_config, base_cost)
        if not starts:
            return EnumerationResult(
                configuration=base_config,
                cost=base_cost,
                consumed_bytes=self.consumed(base_config),
                steps=[],
            )
        best: EnumerationResult | None = None
        for cost, config, label in starts:
            steps = [f"{label}: {base_cost:.1f} -> {cost:.1f}"]
            self._emit_step("seed", steps[0], cost)
            self._rebase(config)
            result = self._greedy_loop(pool, config, cost, steps)
            if best is None or result.cost < best.cost:
                best = result
        return self._polish(best)

    def _starting_points(
        self,
        pool: list[IndexDef],
        base: Configuration,
        base_cost: float,
    ) -> list[tuple[float, Configuration, str]]:
        """Top ``seed_fanout`` feasible first moves (by score), plus a
        backtrack-recovery of the best oversized move when enabled."""
        moves = []
        for ix in pool:
            if ix in base:
                continue
            candidate = base.add(ix)
            if candidate == base:
                continue
            moves.append((ix, candidate))
        # Zero-delta certificates only: bound pruning could drop a
        # tiny-improvement move that the full path would still seed a
        # greedy start from when fewer than ``seed_fanout`` moves score.
        costs = self._candidate_costs(
            [candidate for _ix, candidate in moves], None
        )
        scored: list[tuple[float, float, Configuration, str]] = []
        best_any = None  # (delta_cost, config)
        for (ix, candidate), cost in zip(moves, costs):
            if cost is None:
                continue
            delta_cost = base_cost - cost
            if delta_cost <= 0:
                continue
            delta_size = self.consumed(candidate) - self.consumed(base)
            if self.fits(candidate):
                scored.append((
                    self._score(delta_cost, delta_size),
                    cost,
                    candidate,
                    f"add {ix.display_name()}",
                ))
            if best_any is None or delta_cost > best_any[0]:
                best_any = (delta_cost, candidate)
        scored.sort(key=lambda entry: -entry[0])
        fanout = max(1, self.options.seed_fanout)
        starts = [
            (cost, config, label)
            for _score, cost, config, label in scored[:fanout]
        ]
        if (
            self.options.backtracking
            and best_any is not None
            and not self.fits(best_any[1])
        ):
            recovered = self._backtrack(best_any[1])
            if recovered is not None:
                rec_cost = self.workload_cost(recovered)
                if rec_cost < base_cost:
                    starts.append((rec_cost, recovered, "backtrack-recover"))
        return starts

    def _greedy_loop(
        self,
        pool: list[IndexDef],
        current: Configuration,
        current_cost: float,
        steps: list[str],
    ) -> EnumerationResult:
        options = self.options
        for _step in range(options.max_steps):
            best_feasible = None  # (score, cost, config, label)
            best_any = None       # (delta_cost, cost, config, index)
            moves = []
            for ix in pool:
                if ix in current:
                    continue
                candidate = current.add(ix)
                if candidate == current:
                    continue
                moves.append((ix, candidate))
            # A cancellation point even when no step gets accepted:
            # every candidate sweep reports in before costing.
            self._emit("sweep", candidates=len(moves), cost=current_cost)
            if self._prune_bounds and options.backtracking:
                costs = self._rescue_candidate_costs(
                    [candidate for _ix, candidate in moves], current_cost
                )
            else:
                threshold = None
                if self._prune_bounds:
                    # Half the acceptance threshold: the slack covers
                    # float accumulation differences between the
                    # optimistic bound and the full path's total, so a
                    # pruned move could at most be chosen-and-rejected
                    # below min_improvement.
                    threshold = 0.5 * options.min_improvement * max(
                        current_cost, 1e-9
                    )
                costs = self._candidate_costs(
                    [candidate for _ix, candidate in moves], threshold
                )
            for (ix, candidate), cost in zip(moves, costs):
                if cost is None:
                    continue
                delta_cost = current_cost - cost
                if delta_cost <= 0:
                    continue
                delta_size = self.consumed(candidate) - self.consumed(current)
                if self.fits(candidate):
                    score = self._score(delta_cost, delta_size)
                    if best_feasible is None or score > best_feasible[0]:
                        best_feasible = (
                            score, cost, candidate, ix.display_name()
                        )
                if best_any is None or delta_cost > best_any[0]:
                    best_any = (delta_cost, cost, candidate, ix)

            chosen = None
            if best_feasible is not None:
                chosen = (best_feasible[1], best_feasible[2],
                          f"add {best_feasible[3]}")

            if (
                options.backtracking
                and best_any is not None
                and not self.fits(best_any[2])
            ):
                recovered = self._backtrack(best_any[2])
                if recovered is not None:
                    rec_cost = self.workload_cost(recovered)
                    if (
                        rec_cost < current_cost
                        and (chosen is None or rec_cost < chosen[0])
                    ):
                        chosen = (rec_cost, recovered, "backtrack-recover")

            if chosen is None:
                break
            new_cost, new_config, label = chosen
            if (current_cost - new_cost) < options.min_improvement * max(
                current_cost, 1e-9
            ):
                break
            steps.append(f"{label}: {current_cost:.1f} -> {new_cost:.1f}")
            self._emit_step("greedy", steps[-1], new_cost)
            current, current_cost = new_config, new_cost
            self._rebase(current)

        return EnumerationResult(
            configuration=current,
            cost=current_cost,
            consumed_bytes=self.consumed(current),
            steps=steps,
        )

    def _rescue_candidate_costs(
        self, candidates: list, current_cost: float
    ) -> list:
        """Bound pruning for the *backtracking* sweep (the PR 3 open
        question): costs in candidate order, None for provably
        invisible candidates.

        Backtracking consumes a sweep through two channels — the best
        feasible pick and the best pick *including oversized ones*,
        whose Figure-8 recovery compresses current members and can
        therefore unlock improvements beyond the candidate's own delta.
        A cap below the acceptance threshold is no longer a safe prune
        by itself: the pruned candidate could have been the channel
        maximum.  So the sweep defers low-cap candidates, costs the
        rest, and then *rescues* (costs after all) every deferred
        candidate whose cap does not lose **strictly** to a costed
        survivor in each channel it can enter:

        * best-any channel: rescued unless some survivor's delta
          strictly exceeds the cap (ties rescue — pool order decides
          ties, and the candidate could be earlier);
        * best-feasible channel (fitting candidates only): same test
          against the best *fitting* survivor delta.

        A candidate left pruned has ``delta <= cap <`` both channel
        maxima, so under greedy scoring (score == delta) it can win
        neither selection — the sweep's outcome, tie-breaks included,
        is decision-identical to costing everything.  Rescued deltas
        are bounded by their caps, which lose to the precomputed
        maxima, so rescue can never shift the maxima and one pass
        suffices."""
        delta = self.delta
        threshold = 0.5 * self.options.min_improvement * max(
            current_cost, 1e-9
        )
        costs: list = [None] * len(candidates)
        deferred: list[int] = []
        to_cost: list[int] = []
        caps: dict[int, float] = {}
        for i, candidate in enumerate(candidates):
            if not delta.improvement_possible(candidate, None):
                continue  # zero-delta certificate: exact per strategy
            cap = delta.improvement_cap(candidate)
            if cap is not None and cap < threshold:
                caps[i] = cap
                deferred.append(i)
            else:
                to_cost.append(i)
        for i, cost in zip(
            to_cost, self.batch_cost([candidates[i] for i in to_cost])
        ):
            costs[i] = cost
        if not deferred:
            return costs
        max_any = None
        max_fit = None
        for i in to_cost:
            gain = current_cost - costs[i]
            if gain <= 0:
                continue
            if max_any is None or gain > max_any:
                max_any = gain
            if self.fits(candidates[i]) and (
                max_fit is None or gain > max_fit
            ):
                max_fit = gain
        rescued: list[int] = []
        for i in deferred:
            cap = caps[i]
            if max_any is None or cap >= max_any:
                rescued.append(i)
            elif self.fits(candidates[i]) and (
                max_fit is None or cap >= max_fit
            ):
                rescued.append(i)
        for i, cost in zip(
            rescued, self.batch_cost([candidates[i] for i in rescued])
        ):
            costs[i] = cost
        pruned = len(deferred) - len(rescued)
        if pruned:
            delta.note_bound_pruned(pruned)
        return costs

    # ------------------------------------------------------------------
    def _polish(self, result: EnumerationResult) -> EnumerationResult:
        """Final hill-climb over per-structure compression methods.

        Generalizes the backtracking swap of Figure 8 to the finished
        configuration and to *both* directions: compress a structure when
        the I/O savings beat the CPU overhead, decompress one when they
        do not.  Accepts any single method swap that lowers the workload
        cost while staying within budget, to a fixpoint.  Because the
        what-if cost is (near-)additive per structure, this reaches the
        per-structure best method without an exponential search.
        """
        config, cost = result.configuration, result.cost
        self._rebase(config)
        if self.options.allow_compression:
            methods = (CompressionMethod.NONE, CompressionMethod.ROW,
                       CompressionMethod.PAGE)
        else:
            methods = (CompressionMethod.NONE,)
        for _round in range(len(list(config)) * len(methods) + 1):
            best_swap = None  # (cost, config, label)
            swaps = []
            for ix in config.ordered():
                for method in methods:
                    if method is ix.method:
                        continue
                    swapped = config.replace(ix, ix.with_method(method))
                    if not self.fits(swapped):
                        continue
                    swaps.append((ix, method, swapped))
            swap_costs = self.batch_cost(
                [swapped for _ix, _m, swapped in swaps]
            )
            for (ix, method, swapped), swap_cost in zip(swaps, swap_costs):
                if swap_cost < cost - 1e-9 and (
                    best_swap is None or swap_cost < best_swap[0]
                ):
                    best_swap = (
                        swap_cost,
                        swapped,
                        f"polish {ix.display_name()} -> {method.name}",
                    )
            if best_swap is None:
                break
            cost, config = best_swap[0], best_swap[1]
            self._rebase(config)
            result.steps.append(f"{best_swap[2]}: -> {cost:.1f}")
            self._emit_step("polish", result.steps[-1], cost)
        return EnumerationResult(
            configuration=config,
            cost=cost,
            consumed_bytes=self.consumed(config),
            steps=result.steps,
        )

    # ------------------------------------------------------------------
    def _backtrack(self, oversized: Configuration) -> Configuration | None:
        """Figure 8: repeatedly swap members to compressed variants,
        choosing at each round the swap that performs fastest while
        shrinking, until the configuration fits (or no swap helps)."""
        config = oversized
        for _round in range(len(list(config)) + 1):
            if self.fits(config):
                return config
            best = None  # (cost, config)
            swaps = []
            for ix in config.ordered():
                if ix.is_compressed:
                    continue
                if ix.kind not in (IndexKind.SECONDARY, IndexKind.CLUSTERED,
                                   IndexKind.HEAP):
                    continue
                for method in (CompressionMethod.ROW, CompressionMethod.PAGE):
                    variant = ix.with_method(method)
                    swapped = config.replace(ix, variant)
                    if self.consumed(swapped) >= self.consumed(config):
                        continue
                    swaps.append(swapped)
            swap_costs = self.batch_cost(swaps)
            for swapped, swap_cost in zip(swaps, swap_costs):
                if best is None or swap_cost < best[0]:
                    best = (swap_cost, swapped)
            if best is None:
                return None
            config = best[1]
        return config if self.fits(config) else None
