"""Anytime greedy: every monotone improvement is published as a
``best_so_far`` progress event, so a ``/v1/jobs`` client can cancel the
run at any point and keep the last event as its result.

The search itself is the single-start pure-greedy loop (largest
feasible cost drop per step, same acceptance threshold as the default
algorithm) followed by the method polish — but *every* accepted step
emits, in addition to the usual ``greedy_step`` event, a
``best_so_far`` event carrying the full configuration (sorted display
names), its cost and its consumed bytes.  The contract tested by the
determinism suite: at any cancellation point the last emitted
``best_so_far`` equals the configuration the run held at that moment,
and an uncancelled run's final result equals its last event.

Cancellation rides the ordinary progress-hook unwind: the job layer's
hook raises :class:`repro.errors.JobCancelled` from inside ``_emit``,
the search aborts at that event, and the client keeps the
``best_so_far`` prefix it already streamed.
"""

from __future__ import annotations

from repro.advisor.algorithms.base import (
    EnumerationResult,
    SelectionAlgorithm,
    register,
)
from repro.compression.base import CompressionMethod
from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef


@register
class AnytimeGreedyAlgorithm(SelectionAlgorithm):
    """Greedy that streams each monotone improvement as a
    ``best_so_far`` job event for cancel-early clients."""

    name = "anytime"
    summary = (
        "Single-start greedy streaming each improvement as a "
        "best_so_far event; cancel early and keep the last one"
    )

    @classmethod
    def options_schema(cls) -> dict:
        return {
            **super().options_schema(),
            "strategy": {
                "type": "string", "default": "greedy",
                "description": "'greedy' or 'density' step scoring",
            },
        }

    def _bound_pruning_safe(self) -> bool:
        # Same argument as the default algorithm's pure-greedy path:
        # acceptance is best-feasible-above-threshold, no backtracking.
        return self.options.strategy == "greedy"

    def run(self, pool: list[IndexDef],
            base_config: Configuration) -> EnumerationResult:
        self._rebase(base_config)
        cost = self.workload_cost(base_config)
        config = base_config
        steps: list[str] = []
        self._improvement_seq = 0
        # Publish the base immediately: a client cancelling before the
        # first improvement still holds a well-defined best-so-far.
        self._publish(config, cost, "base")
        config, cost = self._greedy(pool, config, cost, steps)
        config, cost = self._polish(config, cost, steps)
        return EnumerationResult(
            configuration=config,
            cost=cost,
            consumed_bytes=self.consumed(config),
            steps=steps,
        )

    # ------------------------------------------------------------------
    def _publish(self, config: Configuration, cost: float,
                 label: str) -> None:
        self._improvement_seq += 1
        self._emit(
            "best_so_far",
            improvement_seq=self._improvement_seq,
            cost=cost,
            consumed_bytes=self.consumed(config),
            configuration=sorted(
                ix.display_name() for ix in config
            ),
            step=label,
        )

    def _accept(self, config: Configuration, cost: float, label: str,
                steps: list[str]) -> None:
        steps.append(label)
        self._emit_step("anytime", label, cost)
        self._rebase(config)
        self._publish(config, cost, label)

    # ------------------------------------------------------------------
    def _greedy(
        self,
        pool: list[IndexDef],
        current: Configuration,
        current_cost: float,
        steps: list[str],
    ) -> tuple[Configuration, float]:
        options = self.options
        for _step in range(options.max_steps):
            moves = []
            for ix in pool:
                if ix in current:
                    continue
                candidate = current.add(ix)
                if candidate == current:
                    continue
                moves.append((ix, candidate))
            # Cancellation point before each costing sweep.
            self._emit("sweep", candidates=len(moves), cost=current_cost)
            threshold = None
            if self._prune_bounds:
                threshold = 0.5 * options.min_improvement * max(
                    current_cost, 1e-9
                )
            costs = self._candidate_costs(
                [candidate for _ix, candidate in moves], threshold
            )
            best = None  # (score, cost, config, name)
            for (ix, candidate), move_cost in zip(moves, costs):
                if move_cost is None:
                    continue
                delta_cost = current_cost - move_cost
                if delta_cost <= 0:
                    continue
                if not self.fits(candidate):
                    continue
                delta_size = (
                    self.consumed(candidate) - self.consumed(current)
                )
                score = self._score(delta_cost, delta_size)
                if best is None or score > best[0]:
                    best = (score, move_cost, candidate, ix.display_name())
            if best is None:
                break
            _score, new_cost, new_config, name = best
            if (current_cost - new_cost) < options.min_improvement * max(
                current_cost, 1e-9
            ):
                break
            self._accept(
                new_config, new_cost,
                f"add {name}: {current_cost:.1f} -> {new_cost:.1f}",
                steps,
            )
            current, current_cost = new_config, new_cost
        return current, current_cost

    # ------------------------------------------------------------------
    def _polish(
        self,
        config: Configuration,
        cost: float,
        steps: list[str],
    ) -> tuple[Configuration, float]:
        """Method hill-climb, publishing each accepted swap."""
        if self.options.allow_compression:
            methods = (CompressionMethod.NONE, CompressionMethod.ROW,
                       CompressionMethod.PAGE)
        else:
            methods = (CompressionMethod.NONE,)
        for _round in range(len(list(config)) * len(methods) + 1):
            swaps = []
            for ix in config.ordered():
                for method in methods:
                    if method is ix.method:
                        continue
                    swapped = config.replace(ix, ix.with_method(method))
                    if not self.fits(swapped):
                        continue
                    swaps.append((ix, method, swapped))
            self._emit("sweep", candidates=len(swaps), cost=cost)
            swap_costs = self.batch_cost(
                [swapped for _ix, _m, swapped in swaps]
            )
            best = None  # (cost, config, label)
            for (ix, method, swapped), swap_cost in zip(swaps, swap_costs):
                if swap_cost < cost - 1e-9 and (
                    best is None or swap_cost < best[0]
                ):
                    best = (
                        swap_cost, swapped,
                        f"polish {ix.display_name()} -> {method.name}: "
                        f"-> {swap_cost:.1f}",
                    )
            if best is None:
                break
            cost, config = best[0], best[1]
            self._accept(config, cost, best[2], steps)
        return config, cost
