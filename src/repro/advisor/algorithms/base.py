"""The selection-algorithm contract: one abstract base every search
strategy implements, plus the registry ``AdvisorOptions.algorithm``
resolves through.

A :class:`SelectionAlgorithm` is handed the advisor's prepared state —
the candidate pool, the base configuration, a workload-cost callable
(optionally batched over the parallel engine, optionally delta-aware)
and a size callable — and returns an :class:`EnumerationResult`.  The
base class owns everything the strategies share:

* storage accounting (``consumed`` / ``fits``): secondary/MV indexes
  consume their full size; a base structure consumes the *difference*
  against the table's original base, so compressing a heap frees budget
  (Appendix D.2);
* progress events (``_emit`` / ``_emit_step``) — the tuning service's
  cancellation path rides these hooks;
* delta-coster integration (``_rebase`` / ``_candidate_costs``) with
  bound-based pruning gated per algorithm (only decision-identical
  under pure-greedy acceptance);
* per-statement benefit attribution (``_attributed_benefits``), shared
  by the knapsack and relaxation strategies.

Concrete strategies register with :func:`register` and are resolved by
name through :func:`get`; ``names()`` lists the valid set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import AdvisorError
from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.storage.index_build import IndexKind
from repro.workload.query import SelectQuery, Workload

#: Batched costing hook: all of one sweep's candidate configurations at
#: once, returning their workload costs in input order.  The advisor
#: wires the parallel engine in here; the default recomputes through the
#: per-configuration callable, so both paths see identical floats.
BatchCost = Callable[[Sequence[Configuration]], "list[float]"]

#: Per-statement costing hook: one query's costs under many (small)
#: configurations — the advisor's delta-aware/cache-aware batch API.
#: Strategies that attribute benefit per statement (knapsack,
#: relaxation) consume this; greedy strategies never touch it.
QueryCostBatch = Callable[
    [SelectQuery, Sequence[Configuration]], "list[float]"
]

#: Byte floor for benefit-per-byte densities: below one page, size
#: differences are quantization noise, not signal.
DENSITY_FLOOR_BYTES = 8192.0


@dataclass(frozen=True)
class EnumerationOptions:
    """Search knobs.

    Attributes:
        budget_bytes: storage budget for additional structures.
        strategy: 'greedy' or 'density'.
        backtracking: enable the oversized-choice recovery phase.
        max_steps: hard cap on greedy iterations.
        min_improvement: stop when the relative cost drop falls below it.
        seed_fanout: number of distinct first choices to grow a full
            greedy run from; the best final configuration wins.
        allow_compression: whether method-swap phases (backtracking,
            final polish) may introduce compressed variants; False for
            the compression-blind DTA baseline.
    """

    budget_bytes: float
    strategy: str = "greedy"
    backtracking: bool = False
    max_steps: int = 60
    min_improvement: float = 1e-4
    seed_fanout: int = 3
    allow_compression: bool = True


@dataclass
class EnumerationResult:
    """Final configuration of one selection run with its cost,
    storage consumption, and a human-readable step log."""
    configuration: Configuration
    cost: float
    consumed_bytes: float
    steps: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class IndexBenefit:
    """One candidate's attributed benefit: the weighted per-statement
    cost reduction of adding it alone to the base configuration,
    the number of statements it helps, and the budget bytes it would
    consume (negative for base-structure swaps that free space)."""

    index: IndexDef
    benefit: float
    uses: int
    delta_bytes: float

    def density(self) -> float:
        """Benefit per byte consumed, floored at one page so tiny
        structures cannot divide by quantization noise."""
        return self.benefit / max(self.delta_bytes, DENSITY_FLOOR_BYTES)


class SelectionAlgorithm:
    """Abstract search strategy over the advisor's candidate pool.

    Subclasses set :attr:`name` / :attr:`summary`, implement
    :meth:`run`, and may override :meth:`_bound_pruning_safe` when their
    acceptance rule makes the delta coster's bound pruning
    decision-identical (pure-greedy only; zero-delta certificates are
    exact under every strategy and always apply).
    """

    #: registry key (``AdvisorOptions.algorithm``); None = abstract.
    name: "str | None" = None
    #: one-line description for ``/v1/algorithms`` and the CLI table.
    summary: str = ""

    def __init__(
        self,
        workload: Workload,
        workload_cost: Callable[[Configuration], float],
        index_size: Callable[[IndexDef], float],
        original_base_sizes: Mapping[str, float],
        options: EnumerationOptions,
        batch_cost: BatchCost | None = None,
        delta: "object | None" = None,
        progress: "Callable[[dict], None] | None" = None,
        query_cost_batch: QueryCostBatch | None = None,
    ) -> None:
        self.workload = workload
        self.workload_cost = workload_cost
        self.index_size = index_size
        self.original_base_sizes = dict(original_base_sizes)
        self.options = options
        #: observational hook: one event per accepted search step (and
        #: one per candidate sweep), emitted in the parent process.  It
        #: may raise to abort the search — the tuning service cancels
        #: running jobs through exactly this path — but must never
        #: change a result.
        self.progress = progress
        self._step_seq = 0
        self.batch_cost = batch_cost or (
            lambda configs: [self.workload_cost(c) for c in configs]
        )
        self.query_cost_batch = query_cost_batch
        #: optional DeltaWorkloadCoster: candidate pruning + reference
        #: rebasing.  Bound-based pruning is only decision-identical to
        #: the full path under pure-greedy acceptance (a pruned
        #: candidate can then only ever be chosen-and-rejected below
        #: min_improvement, which leaves the same search state);
        #: zero-delta certificates are exact under every strategy.
        self.delta = delta
        self._prune_bounds = (
            delta is not None and self._bound_pruning_safe()
        )

    # -- registry metadata ---------------------------------------------
    @classmethod
    def options_schema(cls) -> dict:
        """JSON-able schema of the options this algorithm reads —
        served by ``GET /v1/algorithms``.  Every algorithm honors the
        shared budget/improvement knobs; subclasses extend with their
        own."""
        return {
            "budget_bytes": {
                "type": "number",
                "description": "storage budget for additional structures",
            },
            "min_improvement": {
                "type": "number", "default": 1e-4,
                "description": "relative cost-drop acceptance threshold",
            },
        }

    def _bound_pruning_safe(self) -> bool:
        """Whether the delta coster's bound pruning is decision-
        identical for this algorithm's acceptance rule.  Conservative
        default: no (zero-delta certificates still apply)."""
        return False

    # ------------------------------------------------------------------
    def consumed(self, config: Configuration) -> float:
        """Budget bytes a configuration consumes: secondary/MV indexes in
        full; base structures as the delta against the original base
        (compressing a heap *frees* budget)."""
        terms = []
        for ix in config:
            if ix.kind is IndexKind.SECONDARY or ix.is_mv_index:
                terms.append(self.index_size(ix))
            else:
                original = self.original_base_sizes.get(ix.table)
                if original is None:
                    raise AdvisorError(
                        f"no original base size for table {ix.table!r}"
                    )
                terms.append(self.index_size(ix) - original)
        # fsum: exact, hence independent of set iteration order — the
        # budget boundary must not wobble with PYTHONHASHSEED.
        return math.fsum(terms)

    def fits(self, config: Configuration) -> bool:
        """Whether a configuration stays within the storage budget."""
        return self.consumed(config) <= self.options.budget_bytes + 1e-6

    # ------------------------------------------------------------------
    def _emit(self, event: str, **fields) -> None:
        if self.progress is not None:
            self.progress({"event": event, **fields})

    def _emit_step(self, kind: str, step: str, cost: float) -> None:
        """One accepted search step (greedy add, backtrack recovery,
        polish swap, or a seeded start).  ``step_seq`` counts accepted
        steps across every seeded start (the job layer's ``seq`` is the
        event-log position, a different series), so the stream carries
        at least one event per greedy step of the winning start."""
        self._step_seq += 1
        self._emit("greedy_step", kind=kind, step=step, cost=cost,
                   step_seq=self._step_seq)

    def _score(self, delta_cost: float, delta_size: float) -> float:
        if self.options.strategy == "density":
            return delta_cost / max(delta_size, DENSITY_FLOOR_BYTES)
        return delta_cost

    def _rebase(self, config: Configuration) -> None:
        if self.delta is not None:
            self.delta.rebase(config)

    def _candidate_costs(
        self,
        candidates: Sequence[Configuration],
        threshold: float | None,
    ) -> "list[float | None]":
        """Costs of a candidate sweep, with None for candidates the
        delta coster proves cannot improve on the reference — the full
        path would compute ``delta_cost <= 0`` (zero-delta certificate)
        or an improvement below the acceptance threshold (bound prune),
        and skip them identically."""
        if self.delta is None:
            return list(self.batch_cost(candidates))
        decisions = [
            self.delta.improvement_possible(candidate, threshold)
            for candidate in candidates
        ]
        survivors = [
            candidate
            for candidate, keep in zip(candidates, decisions) if keep
        ]
        costs = iter(self.batch_cost(survivors))
        return [next(costs) if keep else None for keep in decisions]

    # ------------------------------------------------------------------
    def _attributed_benefits(
        self,
        pool: Sequence[IndexDef],
        base_config: Configuration,
    ) -> list[IndexBenefit]:
        """Per-candidate benefit attribution: for every pool member, the
        weighted sum over SELECT statements of the cost reduction it
        achieves *alone* on top of the base configuration.  Additive by
        construction (interactions between candidates are ignored —
        that is the knapsack/relaxation approximation), deterministic
        in pool order, and batched per statement through the delta-
        aware query-cost hook when the advisor wired one."""
        members: list[IndexDef] = []
        singletons: list[Configuration] = []
        for ix in pool:
            if ix in base_config:
                continue
            candidate = base_config.add(ix)
            if candidate == base_config:
                continue
            members.append(ix)
            singletons.append(candidate)
        benefits = [0.0] * len(members)
        uses = [0] * len(members)
        if self.query_cost_batch is not None:
            for ws in self.workload.queries:
                costs = self.query_cost_batch(
                    ws.statement, [base_config, *singletons]
                )
                base_cost = costs[0]
                for i, cost in enumerate(costs[1:]):
                    gain = base_cost - cost
                    if gain > 0:
                        benefits[i] += ws.weight * gain
                        uses[i] += 1
        else:
            # No per-statement hook (direct construction): fall back to
            # whole-workload costs — coarser but the same shape.
            base_cost = self.workload_cost(base_config)
            for i, cost in enumerate(self.batch_cost(singletons)):
                gain = base_cost - cost
                if gain > 0:
                    benefits[i] += gain
                    uses[i] += 1
        base_consumed = self.consumed(base_config)
        return [
            IndexBenefit(
                index=ix,
                benefit=benefits[i],
                uses=uses[i],
                delta_bytes=self.consumed(singletons[i]) - base_consumed,
            )
            for i, ix in enumerate(members)
        ]

    def _revert_member(
        self, config: Configuration, member: IndexDef,
        base_config: Configuration,
    ) -> Configuration:
        """Remove one structure from ``config``: secondary/MV indexes
        are dropped outright; a base-structure variant reverts to the
        table's original base structure (a table always keeps one)."""
        if (
            member.kind in (IndexKind.HEAP, IndexKind.CLUSTERED)
            and not member.is_mv_index
        ):
            original = base_config.base_structure(member.table)
            if original is None or original == member:
                return config
            return config.replace(member, original)
        return config.remove(member)

    # ------------------------------------------------------------------
    def run(self, pool: "list[IndexDef]",
            base_config: Configuration) -> EnumerationResult:
        """Search for the best configuration reachable from
        ``base_config`` by adding pool members (and swapping their
        compression methods), honoring the storage budget."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: "dict[str, type[SelectionAlgorithm]]" = {}

#: the algorithm ``AdvisorOptions.algorithm`` defaults to.
DEFAULT_ALGORITHM = "greedy-backtrack"


def register(cls: "type[SelectionAlgorithm]") -> "type[SelectionAlgorithm]":
    """Register a selection algorithm under its ``name`` (usable as a
    class decorator).  Re-registering a name is an error — silent
    replacement would let a typo shadow a built-in."""
    if not cls.name:
        raise AdvisorError(f"{cls.__name__} has no registry name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise AdvisorError(
            f"selection algorithm {cls.name!r} is already registered"
        )
    _REGISTRY[cls.name] = cls
    return cls


def get(name: str) -> "type[SelectionAlgorithm]":
    """Resolve an algorithm name; unknown names fail with the valid
    set spelled out (the service maps this to a 400)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise AdvisorError(
            f"unknown selection algorithm {name!r}; "
            f"choose from {sorted(_REGISTRY)}"
        ) from None


def names() -> "list[str]":
    """Registered algorithm names, sorted."""
    return sorted(_REGISTRY)


def registered() -> "dict[str, type[SelectionAlgorithm]]":
    """A copy of the registry (name -> class)."""
    return dict(_REGISTRY)
