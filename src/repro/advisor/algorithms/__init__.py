"""Pluggable selection algorithms.

``AdvisorOptions.algorithm`` names a strategy registered here; the
advisor resolves it through :func:`get` and hands it the shared
machinery (candidate pool, delta-aware batched costing, progress
hooks).  Importing this package registers the built-ins:

========================  ============================================
``greedy-backtrack``      the paper's DTA/DTAc search (default)
``ibm``                   benefit/size-ratio knapsack + try_variations
``relaxation``            drop from the full pool until the budget fits
``anytime``               greedy streaming ``best_so_far`` job events
========================  ============================================

Third-party strategies subclass :class:`SelectionAlgorithm` and call
:func:`register` (usable as a class decorator).
"""

from repro.advisor.algorithms.base import (
    DEFAULT_ALGORITHM,
    BatchCost,
    EnumerationOptions,
    EnumerationResult,
    IndexBenefit,
    QueryCostBatch,
    SelectionAlgorithm,
    get,
    names,
    register,
    registered,
)
from repro.advisor.algorithms.anytime import AnytimeGreedyAlgorithm
from repro.advisor.algorithms.greedy_backtrack import GreedyBacktrackAlgorithm
from repro.advisor.algorithms.ibm import IBMKnapsackAlgorithm
from repro.advisor.algorithms.relaxation import RelaxationAlgorithm

__all__ = [
    "DEFAULT_ALGORITHM",
    "BatchCost",
    "EnumerationOptions",
    "EnumerationResult",
    "IndexBenefit",
    "QueryCostBatch",
    "SelectionAlgorithm",
    "AnytimeGreedyAlgorithm",
    "GreedyBacktrackAlgorithm",
    "IBMKnapsackAlgorithm",
    "RelaxationAlgorithm",
    "get",
    "names",
    "register",
    "registered",
]
