"""The tuning advisor front end: DTA (baseline) and DTAc (compression
aware), mirroring the architecture of Figure 1/4 — candidate selection,
merging, enumeration — with the compression extensions of Sections 4-6.
"""

from __future__ import annotations

import hashlib
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping
from repro.advisor import algorithms
from repro.advisor.algorithms import EnumerationOptions
from repro.advisor.candidates import (
    CandidateOptions,
    candidate_indexes,
    expand_compression_variants,
)
from repro.advisor.merging import (
    compression_aware_variants,
    generate_merged_candidates,
)
from repro.advisor.selection import (
    CandidateConfiguration,
    cluster_skyline,
    evaluate_candidates,
    evaluate_candidates_batch,
    select_skyline,
    select_top_k,
)
from repro.catalog.schema import Database
from repro.compression.base import CompressionMethod
from repro.errors import AdvisorError
from repro.optimizer.constants import DEFAULT_COST_CONSTANTS, CostConstants
from repro.optimizer.whatif import WhatIfOptimizer
from repro.parallel.cache import CostCache, EstimationCache
from repro.parallel.engine import DirtyRelay, ParallelEngine
from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.sizeest.estimator import SizeEstimator
from repro.stats.column_stats import DatabaseStats
from repro.storage.index_build import IndexKind
from repro.storage.page import quantize_bytes
from repro.workload.query import SelectQuery, Workload


def default_base_configuration(database: Database) -> Configuration:
    """Uncompressed heaps for every table (the untuned database) — the
    single definition of the advisor's (and the tuning service's)
    starting point."""
    return Configuration(
        IndexDef(t.name, (), kind=IndexKind.HEAP)
        for t in database.tables
    )


def quantized_size_lookup(
    estimator: SizeEstimator, index: IndexDef
) -> tuple[float, float]:
    """(bytes, rows) as every cost consumer must see them: whole-page
    quantization at the consumer boundary — the advisor budgets real
    pages, while the estimator works in fractional bytes for deduction
    accuracy.  One definition, so the advisor's costings and the
    service's estimate/cost endpoints can never quantize differently."""
    return (
        quantize_bytes(estimator.estimate(index).est_bytes),
        estimator.sizer.estimated_rows(index),
    )


@dataclass(frozen=True)
class AdvisorOptions:
    """Advisor configuration.

    The paper's tool variants map to flags:

    * DTA:              ``enable_compression=False`` (top-k, pure greedy)
    * DTAc (None):      compression on, top-k, no backtracking
    * DTAc (Skyline):   compression on, skyline selection
    * DTAc (Backtrack): compression on, backtracking enumeration
    * DTAc (Both):      compression on, skyline + backtracking

    ``workers`` > 1 fans candidate evaluation over a process pool
    (``0`` = one per CPU); results are identical to ``workers=1``.
    ``delta_costing`` routes enumeration costing through the
    delta-aware :class:`~repro.optimizer.delta.DeltaWorkloadCoster`
    (statement-level memoization, access-path probes, bound-based
    candidate pruning); recommendations are byte-identical with it on
    or off, at any worker count — off only costs time.
    ``cache_dir`` persists size estimates *and* what-if costs across
    runs (``estimates.json`` / ``costs.json`` in the same directory).
    Caveat: with ``workers`` > 1 the enumeration costings happen in
    forked workers whose cost-cache entries die with the pool, so only
    parent-side costs are persisted from a single parallel run —
    :func:`repro.advisor.run_sweep` is the path that combines full
    cost persistence with parallelism (its shard unit is a whole run,
    costed in-process).
    """

    budget_bytes: float
    enable_compression: bool = True
    candidate_selection: str = "topk"  # 'topk' | 'skyline'
    top_k: int = 2
    strategy: str = "greedy"  # 'greedy' | 'density'
    backtracking: bool = False
    seed_fanout: int = 3
    #: greedy acceptance threshold (relative cost drop); also the scale
    #: of the delta coster's bound pruning — coarser values prune more
    #: candidates before they are ever costed.
    min_improvement: float = 1e-4
    enable_partial: bool = False
    enable_mv: bool = False
    enable_merging: bool = True
    compression_aware_merging: bool = True
    max_key_columns: int = 4
    skyline_cluster_max: int = 12
    e: float = 0.5
    q: float = 0.9
    workers: int = 1
    cache_dir: str | None = None
    delta_costing: bool = True
    #: costing-kernel backend for batch access-path evaluation:
    #: ``"auto"`` (numpy when importable, else the pure-python loop),
    #: ``"numpy"`` (required), ``"python"`` (forced scalar fallback).
    #: Backends are float-identical by the kernel identity contract —
    #: recommendations never depend on the choice.
    kernel: str = "auto"
    #: selection strategy over the shared candidate pool, resolved
    #: through :func:`repro.advisor.algorithms.get` — the default is
    #: the paper's greedy(+backtracking) search; alternatives are
    #: ``"ibm"`` (benefit/size knapsack), ``"relaxation"`` (drop from
    #: the full pool) and ``"anytime"`` (greedy streaming
    #: ``best_so_far`` events).  Orthogonal to ``variant``: a variant
    #: bundles candidate/costing flags, the algorithm picks the search.
    algorithm: str = "greedy-backtrack"


@dataclass
class AdvisorResult:
    """Outcome of a tuning run.

    ``improvement`` is the paper's metric: the relative drop in the
    optimizer-estimated weighted workload cost from the base configuration
    to the recommendation (0.75 = a 4x speedup).
    """

    configuration: Configuration
    base_configuration: Configuration
    base_cost: float
    final_cost: float
    consumed_bytes: float
    budget_bytes: float
    elapsed_seconds: float
    candidate_count: int
    pool_size: int
    sizes: dict[IndexDef, float] = field(default_factory=dict)
    steps: list[str] = field(default_factory=list)
    #: persistent estimation-cache counters for this run (empty when no
    #: cache is wired); see :meth:`EstimationCache.stats`.
    cache_stats: dict = field(default_factory=dict)
    #: persistent what-if cost-cache counters for this run (empty when
    #: no cache is wired); see :meth:`CostCache.stats`.  Parent-process
    #: counters only — like :attr:`optimizer_calls`, worker-side
    #: lookups/stores with ``workers > 1`` die with the pool.
    cost_cache_stats: dict = field(default_factory=dict)
    #: parallel-engine counters for this run; see :meth:`ParallelEngine.stats`.
    engine_stats: dict = field(default_factory=dict)
    #: costing-kernel counters (backend, lanes, batch split); see
    #: :meth:`repro.optimizer.kernels.CostKernel.stats`.
    kernel_stats: dict = field(default_factory=dict)
    #: delta-costing counters (parent-process side) for this run; see
    #: :meth:`DeltaWorkloadCoster.stats`.  Empty when delta costing is
    #: disabled.
    delta_stats: dict = field(default_factory=dict)
    #: what-if optimizer invocations in the *parent* process only —
    #: with ``workers > 1`` most costings happen in forked workers
    #: whose counters die with the pool, so this is not comparable
    #: across different worker counts.
    optimizer_calls: int = 0

    @property
    def improvement(self) -> float:
        if self.base_cost <= 0:
            return 0.0
        return 1.0 - self.final_cost / self.base_cost

    @property
    def improvement_pct(self) -> float:
        return 100.0 * self.improvement


#: Progress hook: called in the parent process with one small JSON-able
#: event dict per advisor milestone (phase transitions, every accepted
#: greedy step).  Purely observational — it must not change any result —
#: but it MAY raise (e.g. :class:`repro.errors.JobCancelled`) to abort
#: the run at the next event, which is how the tuning service cancels
#: running jobs with one-greedy-step latency.
ProgressHook = Callable[[dict], None]


def _task_advisor(context) -> "TuningAdvisor":
    """The advisor a worker task should evaluate against: the fork
    context itself, or — for service lanes that keep one pool warm
    across runs — the advisor the stable fork-context holder pointed at
    when this worker forked (see ``TuningAdvisor(fork_context=...)``)."""
    return getattr(context, "advisor", None) or context


def _eval_query_task(
    context, qi: int
) -> list[CandidateConfiguration]:
    """Worker task: evaluate one query's candidate set (step 2)."""
    advisor = _task_advisor(context)
    return evaluate_candidates(
        advisor.workload.queries[qi].statement,
        advisor._per_query[qi],
        advisor.base_config,
        advisor._query_cost,
        advisor._index_size,
        query_cost_batch=advisor._query_cost_batch,
    )


def _workload_cost_task(context, config) -> float:
    """Worker task: one configuration's full weighted workload cost."""
    return _task_advisor(context)._workload_cost(config)


class TuningAdvisor:
    """Runs one tuning session over a database + weighted workload."""

    def __init__(
        self,
        database: Database,
        workload: Workload,
        options: AdvisorOptions,
        estimator: SizeEstimator | None = None,
        stats: DatabaseStats | None = None,
        constants: CostConstants = DEFAULT_COST_CONSTANTS,
        base_config: Configuration | None = None,
        engine: ParallelEngine | None = None,
        cost_cache: CostCache | None = None,
        progress: ProgressHook | None = None,
        fork_context: "object | None" = None,
        fork_stale_ok: bool = False,
        algorithm_cls: "Callable[..., object] | None" = None,
        extra_candidates: "Iterable[IndexDef] | None" = None,
    ) -> None:
        self.database = database
        self.workload = workload
        self.options = options
        #: resolved up front so an unknown name fails before any
        #: estimation work (and so the service can 400 at submit time).
        #: A caller-supplied ``algorithm_cls`` (e.g. the retune search,
        #: which carries a previous configuration no registry name can)
        #: overrides the registry lookup but never skips it.
        self._algorithm_cls = algorithms.get(options.algorithm)
        if algorithm_cls is not None:
            self._algorithm_cls = algorithm_cls
        #: structures injected into the enumeration pool (and therefore
        #: the delta coster's registered universe) beyond what candidate
        #: generation finds — retunes pass the previous configuration's
        #: members so drops can be re-added and pruning bounds stay
        #: sound over the carried-over configuration.
        self._extra_candidates = list(extra_candidates or ())
        self.stats = stats or DatabaseStats(database)
        #: engines we created are ours to shut down when the run ends;
        #: injected engines (e.g. a sweep's shared session) belong to
        #: the caller.
        self._owns_engine = engine is None
        self.engine = engine or ParallelEngine(options.workers)
        self._constants = constants
        self.progress = progress
        #: the object engine sessions fork against.  Default: this
        #: advisor (a fresh pool per run).  A service lane passes a
        #: *stable* holder object instead — workers then resolve the
        #: advisor through ``holder.advisor`` at task time, and a later
        #: run with identical wiring (same context, seed, e/q, variant,
        #: options — everything but the budget, which never enters a
        #: worker-side float) can reuse the dormant pool via
        #: ``fork_stale_ok=True``: the inherited estimator already holds
        #: every estimate the rerun recomputes, bit-for-bit, so stale
        #: workers return exactly the floats fresh ones would.
        self._fork = fork_context if fork_context is not None else self
        self._fork_stale_ok = fork_stale_ok
        if fork_context is not None:
            # Before any fork, so freshly-forked workers inherit it.
            fork_context.advisor = self
        cache = (
            EstimationCache(options.cache_dir)
            if options.cache_dir is not None
            else None
        )
        if estimator is None:
            estimator = SizeEstimator(
                database, stats=self.stats, e=options.e, q=options.q,
                cache=cache,
                engine=(
                    DirtyRelay(self.engine)
                    if fork_context is not None else self.engine
                ),
            )
        else:
            # Attach this run's machinery to a shared estimator only
            # where it has none, so explicit caller wiring wins.
            if estimator.cache is None and cache is not None:
                estimator.cache = cache
            if estimator.engine is None and self.engine.parallel:
                # Warm-lane runs hand the estimator a relay: dirty
                # marks still reach the engine, but estimator-context
                # sessions (which would churn the lane's warm pool)
                # can never open — estimation stays in the parent.
                estimator.engine = (
                    DirtyRelay(self.engine)
                    if fork_context is not None else self.engine
                )
        est_engine = estimator.engine
        if isinstance(est_engine, DirtyRelay):
            est_engine = est_engine.engine
        if (
            est_engine is not None
            and est_engine is not self.engine
        ):
            # The estimator's dirty marks (fresh compressed estimates)
            # land on *its* engine, not ours — cross-session pool reuse
            # would hand enumeration workers forked before those
            # estimates existed.  Fork per session instead, which is
            # always correct.
            self.engine.keep_alive = False
        self.estimator = estimator
        if cost_cache is None and options.cache_dir is not None:
            cost_cache = CostCache(options.cache_dir)
        self.cost_cache = cost_cache
        self.whatif = WhatIfOptimizer(
            database, self.stats, sizes=self._size_lookup,
            constants=constants, cost_cache=cost_cache,
            cost_context=self._cost_context,
            kernel=options.kernel,
        )
        self.base_config = base_config or self.default_base_configuration()
        self._original_base_sizes = {
            ix.table: self._index_size(ix) for ix in self.base_config
        }
        #: delta-aware workload coster (per-run state: its memo keys do
        #: not embed sizes, so it must never outlive this estimator).
        self.delta = (
            self.whatif.delta_coster(workload)
            if options.delta_costing else None
        )
        self._per_query: dict[int, list[IndexDef]] = {}

    # ------------------------------------------------------------------
    def default_base_configuration(self) -> Configuration:
        """Uncompressed heaps for every table (the untuned database)."""
        return default_base_configuration(self.database)

    def _emit(self, event: str, **fields) -> None:
        """Report one progress event (no-op without a hook).  The hook
        may raise to abort the run — cancellation rides this path."""
        if self.progress is not None:
            self.progress({"event": event, **fields})

    # ------------------------------------------------------------------
    def _index_size(self, index: IndexDef) -> float:
        # Bytes only: must not touch estimated_rows, which samples the
        # MV for MV indexes (extra estimation work this path never did).
        return quantize_bytes(self.estimator.estimate(index).est_bytes)

    def _size_lookup(self, index: IndexDef) -> tuple[float, float]:
        return quantized_size_lookup(self.estimator, index)

    def _candidate_universe(self, pool: list[IndexDef]) -> list[IndexDef]:
        """Every structure enumeration could ever place in a
        configuration: the pool, the base structures, and the method
        variants the polish/backtracking phases may introduce — the
        closure the delta coster's lower bounds must cover to stay
        sound."""
        methods = [CompressionMethod.NONE]
        if self.options.enable_compression or self.options.backtracking:
            methods += [CompressionMethod.ROW, CompressionMethod.PAGE]
        members = list(dict.fromkeys(
            [*pool, *self.base_config.ordered()]
        ))
        return list(dict.fromkeys(
            ix.with_method(method)
            for ix in members for method in methods
        ))

    def _cost_context(self) -> str:
        """Fingerprint of every run-level input a persisted what-if cost
        depends on beyond the (statement, sized structures) key: the
        sampled data behind the size estimates, the accuracy constraint
        that shaped them, and the cost constants.  Resolved lazily on
        the first persistent cost lookup (the sample fingerprint is an
        O(rows) scan, computed once per estimator)."""
        est = self.estimator
        material = (
            f"fp={est.sample_fingerprint};"
            f"opts_e={self.options.e!r};opts_q={self.options.q!r};"
            f"est_e={est.e!r};est_q={est.q!r};"
            f"deduction={est.use_deduction};"
            f"default_fraction={est.default_fraction!r};"
            f"fractions={est.fractions!r};"
            f"constants={self._constants!r}"
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def _workload_cost(self, config: Configuration) -> float:
        if self.delta is not None:
            return self.delta.workload_cost(config)
        return self.whatif.workload_cost(self.workload, config)

    def _query_cost(self, query: SelectQuery, config: Configuration) -> float:
        if self.delta is not None:
            return self.delta.statement_cost(query, config)
        return self.whatif.cost(query, config).total

    def _query_cost_batch(self, query: SelectQuery, configs) -> list[float]:
        """One query's costs under many small configurations: through
        the delta coster when enabled, the (cache-aware) what-if batch
        API otherwise — identical floats either way."""
        if self.delta is not None:
            return [
                self.delta.statement_cost(query, config)
                for config in configs
            ]
        return [
            breakdown.total
            for breakdown in self.whatif.cost_batch(query, configs)
        ]

    def _batch_workload_cost(self, configs) -> list[float]:
        """Workload costs of a candidate sweep: fanned over the engine
        while its session is open, otherwise through the what-if
        optimizer's (cache-aware, delta-aware) sequential batch API."""
        if self.engine.in_session:
            return self.engine.map(_workload_cost_task, configs, context=self)
        return self.whatif.workload_cost_batch(
            self.workload, configs, delta=self.delta
        )

    def _size_if_known(self, index: IndexDef) -> "tuple[float, float] | None":
        """(bytes, rows) exactly as :meth:`_size_lookup` would report —
        but only when answering requires no new estimation work, so the
        delta coster's lower bounds can never reorder estimation between
        the delta-on and delta-off paths."""
        est = self.estimator.peek(index)
        if est is None:
            return None
        return (
            quantize_bytes(est.est_bytes),
            self.estimator.sizer.estimated_rows(index),
        )

    # ------------------------------------------------------------------
    def run(self) -> AdvisorResult:
        """Run one full tuning session: candidate generation, batch size
        estimation, per-query selection, merging, and enumeration.

        One engine pool serves the whole run: the enumeration session
        reuses the per-query evaluation session's workers whenever no
        new estimation state appeared in between (the estimator marks
        the engine dirty otherwise, forcing exactly the re-fork the old
        session-per-phase design always paid)."""
        try:
            return self._run()
        finally:
            if self._owns_engine:
                self.engine.shutdown()

    def _run(self) -> AdvisorResult:
        start = time.perf_counter()
        options = self.options
        self._emit("phase", phase="candidates",
                   queries=len(self.workload.queries))
        cand_options = CandidateOptions(
            enable_compression=options.enable_compression,
            enable_partial=options.enable_partial,
            enable_mv=options.enable_mv,
            max_key_columns=options.max_key_columns,
        )

        # 1. Per-query syntactic candidates, expanded per compression
        #    method, sizes estimated in one batch (Section 5's framework).
        per_query: dict[int, list[IndexDef]] = {}
        all_candidates: list[IndexDef] = []
        for qi, ws in enumerate(self.workload.queries):
            query = ws.statement
            base = candidate_indexes(self.database, query, cand_options)
            expanded = expand_compression_variants(
                base, options.enable_compression
            )
            per_query[qi] = expanded
            all_candidates.extend(expanded)
        unique_candidates = list(dict.fromkeys(all_candidates))
        compressed = [
            ix for ix in unique_candidates if ix.method.is_compressed
        ]
        if compressed:
            self.estimator.estimate_many(compressed, options.e, options.q)

        # 2. Candidate selection per query: top-k or skyline (Section 6.1).
        #    Queries are independent, so each one's candidate-set
        #    evaluation is one fan-out unit; the session forks *after*
        #    step 1 so workers inherit every size estimate.
        self._per_query = per_query
        n_queries = len(self.workload.queries)
        self._emit("phase", phase="selection",
                   candidates=len(unique_candidates))
        if self.delta is not None:
            # Base the delta coster before any candidate costing (and
            # before the fork below, so workers inherit the reference
            # terms instead of each re-deriving them).
            self.delta.rebase(self.base_config)
        if self.engine.parallel:
            with self.engine.session(self._fork,
                                     stale_ok=self._fork_stale_ok):
                per_query_configs = self.engine.map(
                    _eval_query_task, range(n_queries), context=self._fork
                )
        else:
            per_query_configs = evaluate_candidates_batch(
                [ws.statement for ws in self.workload.queries],
                [per_query[qi] for qi in range(n_queries)],
                self.base_config,
                self._query_cost,
                self._index_size,
                query_cost_batch=self._query_cost_batch,
            )
        pool: list[IndexDef] = []
        for qi, ws in enumerate(self.workload.queries):
            configs = per_query_configs[qi]
            if options.candidate_selection == "skyline":
                selected = select_skyline(configs)
                selected = cluster_skyline(
                    selected, options.skyline_cluster_max
                )
                # The skyline *adds* slow-but-small candidates; it must
                # not lose the fast ones top-k keeps (the second-best
                # may be dominated and off the skyline entirely).
                for keep in select_top_k(configs, options.top_k):
                    if keep not in selected:
                        selected.append(keep)
            elif options.candidate_selection == "topk":
                selected = select_top_k(configs, options.top_k)
            else:
                raise AdvisorError(
                    f"unknown selection {options.candidate_selection!r}"
                )
            for config in selected:
                # Stable order: pool order feeds greedy tie-breaking,
                # so it must not follow frozenset iteration.
                pool.extend(sorted(config.indexes, key=repr))
        pool = list(dict.fromkeys(pool))

        # 3. Merging (Figure 1): merged variants join the pool.  With
        #    compression enabled, each merged object also spawns the
        #    column reshapes of Section 6.2's closing note (key
        #    permutations / included-column promotion that improve the
        #    compression fraction).
        if options.enable_merging:
            merged = generate_merged_candidates(pool)
            if options.enable_compression and options.compression_aware_merging:
                reshaped: list[IndexDef] = []
                for m in merged:
                    reshaped.extend(
                        compression_aware_variants(
                            m,
                            lambda t, c: (
                                self.stats.table(t).column(c).n_distinct
                            ),
                            lambda t: self.database.table(t).num_rows,
                        )
                    )
                merged = merged + reshaped
            merged = expand_compression_variants(
                merged, options.enable_compression
            )
            new_compressed = [m for m in merged if m.method.is_compressed]
            if new_compressed:
                self.estimator.estimate_many(
                    new_compressed, options.e, options.q
                )
            pool.extend(dict.fromkeys(merged))

        # 3.5 Compressed variants of the existing base structures: DTAc
        #     can reclaim space — even at a 0% budget — by compressing a
        #     table's heap/clustered index and spending the savings on
        #     secondary indexes (Appendix D.2). These moves must be
        #     first-class pool members, not only backtracking swaps,
        #     or the greedy search can never reach them when nothing
        #     is oversized.
        if options.enable_compression:
            base_variants = [
                ix.with_method(method)
                for ix in self.base_config
                for method in (CompressionMethod.ROW, CompressionMethod.PAGE)
            ]
            self.estimator.estimate_many(base_variants, options.e, options.q)
            pool.extend(v for v in base_variants if v not in pool)

        # 3.6 Caller-seeded structures (retunes inject the previous
        #     configuration's members): candidate generation is
        #     weight-driven, so a structure chosen for an earlier phase
        #     may no longer surface on its own — but the search must
        #     still be able to keep or re-add it, and the delta coster's
        #     universe must cover it for its pruning floors to be sound.
        if self._extra_candidates:
            seeded = [
                ix for ix in dict.fromkeys(self._extra_candidates)
                if ix not in pool and ix not in self.base_config
            ]
            seeded_compressed = [
                ix for ix in seeded if ix.method.is_compressed
            ]
            if seeded_compressed:
                self.estimator.estimate_many(
                    seeded_compressed, options.e, options.q
                )
            pool.extend(seeded)

        # 4. Enumeration (Section 6.2).
        self._emit("phase", phase="enumeration", pool=len(pool),
                   algorithm=options.algorithm)
        enum_options = EnumerationOptions(
            budget_bytes=options.budget_bytes,
            strategy=options.strategy,
            backtracking=options.backtracking,
            min_improvement=options.min_improvement,
            seed_fanout=options.seed_fanout,
            allow_compression=options.enable_compression,
        )
        if self.delta is not None:
            self.delta.register_universe(
                self._candidate_universe(pool), self._size_if_known
            )
        search = self._algorithm_cls(
            self.workload,
            self._workload_cost,
            self._index_size,
            self._original_base_sizes,
            enum_options,
            batch_cost=self._batch_workload_cost,
            delta=self.delta,
            progress=self.progress,
            query_cost_batch=self._query_cost_batch,
        )
        if self.cost_cache is not None:
            # Resolve the persistent-key context (an O(rows) sample
            # fingerprint) in the parent, so enumeration workers inherit
            # it through fork instead of each recomputing it.
            self.whatif._context()
        base_cost = self._workload_cost(self.base_config)
        # Forked here: workers inherit the full estimate/sample state,
        # and each greedy sweep fans its candidate costings out.
        with self.engine.session(self._fork,
                                 stale_ok=self._fork_stale_ok):
            result = search.run(pool, self.base_config)

        sizes = {
            ix: self._index_size(ix) for ix in result.configuration
        }
        self._emit("phase", phase="finished",
                   final_cost=result.cost, base_cost=base_cost,
                   steps=len(result.steps))
        if self.cost_cache is not None:
            self.cost_cache.save()
        return AdvisorResult(
            configuration=result.configuration,
            base_configuration=self.base_config,
            base_cost=base_cost,
            final_cost=result.cost,
            consumed_bytes=result.consumed_bytes,
            budget_bytes=options.budget_bytes,
            elapsed_seconds=time.perf_counter() - start,
            candidate_count=len(unique_candidates),
            pool_size=len(pool),
            sizes=sizes,
            steps=result.steps,
            cache_stats=(
                self.estimator.cache.stats()
                if self.estimator.cache is not None else {}
            ),
            cost_cache_stats=(
                self.cost_cache.stats()
                if self.cost_cache is not None else {}
            ),
            engine_stats=self.engine.stats(),
            kernel_stats=self.whatif.kernel.stats(),
            delta_stats=(
                self.delta.stats() if self.delta is not None else {}
            ),
            optimizer_calls=self.whatif.optimizer_calls,
        )


@dataclass(frozen=True)
class VariantSpec:
    """One named advisor variant: a reviewed bundle of
    :class:`AdvisorOptions` overrides with a docstring.

    Variants bundle *what the advisor considers* (compression,
    candidate selection, backtracking); they are orthogonal to
    ``AdvisorOptions.algorithm``, which picks *how the pool is
    searched*.
    """

    name: str
    options: Mapping[str, object]
    doc: str = ""

    def advisor_options(self, budget_bytes: float,
                        **extra) -> AdvisorOptions:
        """Materialize options for one run: the variant's overrides,
        with ``extra`` winning on conflict."""
        return AdvisorOptions(
            budget_bytes=budget_bytes, **{**dict(self.options), **extra}
        )


_VARIANT_REGISTRY: "dict[str, VariantSpec]" = {}


def register_variant(spec: VariantSpec) -> VariantSpec:
    """Register a named variant; re-registering a name is an error."""
    if spec.name in _VARIANT_REGISTRY:
        raise AdvisorError(f"variant {spec.name!r} is already registered")
    _VARIANT_REGISTRY[spec.name] = spec
    return spec


def variants() -> "tuple[VariantSpec, ...]":
    """Every registered variant, in registration order."""
    return tuple(_VARIANT_REGISTRY.values())


def variant_names() -> "list[str]":
    """Registered variant names, sorted."""
    return sorted(_VARIANT_REGISTRY)


def get_variant(name: str) -> VariantSpec:
    """Resolve a variant name; unknown names fail with the valid set
    spelled out (the service maps this to a 400)."""
    try:
        return _VARIANT_REGISTRY[name]
    except KeyError:
        raise AdvisorError(
            f"unknown variant {name!r}; choose from {variant_names()}"
        ) from None


for _spec in (
    VariantSpec(
        "dta",
        dict(enable_compression=False, candidate_selection="topk",
             backtracking=False),
        "Compression-blind baseline (the paper's DTA): top-k candidate "
        "selection, pure greedy enumeration.",
    ),
    VariantSpec(
        "dtac-none",
        dict(enable_compression=True, candidate_selection="topk",
             backtracking=False),
        "Compression-aware, but with neither skyline selection nor "
        "backtracking — isolates the candidate-expansion machinery.",
    ),
    VariantSpec(
        "dtac-skyline",
        dict(enable_compression=True, candidate_selection="skyline",
             backtracking=False),
        "Adds skyline candidate selection (Section 6.1): keeps "
        "slow-but-small candidates top-k would discard.",
    ),
    VariantSpec(
        "dtac-backtrack",
        dict(enable_compression=True, candidate_selection="topk",
             backtracking=True),
        "Adds backtracking enumeration (Figure 8): recovers oversized "
        "greedy picks by compressing configuration members.",
    ),
    VariantSpec(
        "dtac-both",
        dict(enable_compression=True, candidate_selection="skyline",
             backtracking=True),
        "Skyline selection + backtracking (the paper's full DTAc; the "
        "default variant).",
    ),
):
    register_variant(_spec)
del _spec


def __getattr__(name: str):
    """Module-level deprecation shims.

    ``VARIANTS``: the string-keyed dict became the :class:`VariantSpec`
    registry.  Direct access still works (a fresh name -> overrides
    mapping is synthesized) but warns; mutations no longer reach the
    registry — use :func:`register_variant`.

    ``tune`` / ``tune_decoupled``: the free functions became methods of
    the ``repro.api.Session`` facade.  The originals are returned
    unchanged (byte-identical behaviour) behind a
    :class:`DeprecationWarning`.
    """
    if name == "VARIANTS":
        warnings.warn(
            "repro.advisor.advisor.VARIANTS is deprecated; use "
            "repro.advisor.variants() / get_variant(name) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return {spec.name: dict(spec.options) for spec in variants()}
    if name in ("tune", "tune_decoupled"):
        warnings.warn(
            f"repro.advisor.advisor.{name}() is deprecated; use "
            "repro.api.Session (Session.tune / Session.tune_decoupled) "
            "instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return globals()[f"_{name}"]
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def _tune(
    database: Database,
    workload: Workload,
    budget_bytes: float,
    variant: str = "dtac-both",
    estimator: SizeEstimator | None = None,
    stats: DatabaseStats | None = None,
    progress: ProgressHook | None = None,
    **extra,
) -> AdvisorResult:
    """One-call tuning with a named variant (see :func:`variants`)."""
    options = get_variant(variant).advisor_options(budget_bytes, **extra)
    advisor = TuningAdvisor(
        database, workload, options, estimator=estimator, stats=stats,
        progress=progress,
    )
    return advisor.run()


def _tune_decoupled(
    database: Database,
    workload: Workload,
    budget_bytes: float,
    estimator: SizeEstimator | None = None,
    stats: DatabaseStats | None = None,
    method: CompressionMethod = CompressionMethod.PAGE,
    **extra,
) -> AdvisorResult:
    """The staged strawman of Example 1/2: select indexes *without*
    considering compression, then blindly compress everything selected.
    Reproduces the paper's anecdote that decoupling can even slow a
    workload down as budgets grow (INSERT-intensive cases)."""
    options = get_variant("dta").advisor_options(budget_bytes, **extra)
    advisor = TuningAdvisor(
        database, workload, options, estimator=estimator, stats=stats
    )
    staged = advisor.run()
    compressed = Configuration(
        ix.with_method(method) for ix in staged.configuration
    )
    final_cost = advisor.whatif.workload_cost(workload, compressed)
    consumed = sum(
        advisor._index_size(ix) for ix in compressed
        if ix.kind is IndexKind.SECONDARY or ix.is_mv_index
    )
    consumed += sum(
        advisor._index_size(ix) - advisor._original_base_sizes[ix.table]
        for ix in compressed
        if ix.kind in (IndexKind.HEAP, IndexKind.CLUSTERED)
        and not ix.is_mv_index
    )
    return AdvisorResult(
        configuration=compressed,
        base_configuration=staged.base_configuration,
        base_cost=staged.base_cost,
        final_cost=final_cost,
        consumed_bytes=consumed,
        budget_bytes=budget_bytes,
        elapsed_seconds=staged.elapsed_seconds,
        candidate_count=staged.candidate_count,
        pool_size=staged.pool_size,
        sizes={ix: advisor._index_size(ix) for ix in compressed},
        steps=staged.steps + ["decoupled: compressed all selected indexes"],
    )
