"""Slotted-page layout constants and the exact page packer.

Pages are 8 KiB as in SQL Server.  The packer feeds values into the
per-column incremental codecs and starts a new page exactly when the next
row no longer fits, so page counts (and hence compression fractions) are
measured, not approximated.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Sequence

from repro.compression.base import ColumnCodec
from repro.errors import StorageError

PAGE_SIZE = 8192
PAGE_HEADER = 96
#: Slot array entry + record header per row.
ROW_OVERHEAD = 4

#: Bytes on a page available for row data.
PAGE_CAPACITY = PAGE_SIZE - PAGE_HEADER


@dataclass(frozen=True)
class PackResult:
    """Outcome of packing a row stream into pages.

    Attributes:
        pages: number of leaf data pages.
        used_bytes: bytes actually occupied (excluding page slack).
        rows: number of rows packed.
        extra_bytes: index-level overhead charged outside pages (e.g. a
            global dictionary), already included in ``total_bytes``.
    """

    pages: int
    used_bytes: int
    rows: int
    extra_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """Size as the storage layer accounts it: whole pages + extras."""
        return self.pages * PAGE_SIZE + self.extra_bytes

    @property
    def avg_rows_per_page(self) -> float:
        return self.rows / self.pages if self.pages else 0.0


def quantize_bytes(size: float) -> float:
    """Round a byte estimate up to whole pages (minimum one page), as
    the storage layer accounts space.  Estimation internals work with
    fractional bytes; consumers comparing against physically built
    structures apply this at their boundary."""
    pages = math.ceil(size / PAGE_SIZE)
    return float(max(1, pages) * PAGE_SIZE)


def pack_fixed_width(rows: int, row_width: int) -> PackResult:
    """Fast path for uncompressed data: fixed rows-per-page arithmetic."""
    per_row = row_width + ROW_OVERHEAD
    if per_row > PAGE_CAPACITY:
        raise StorageError(f"row of {row_width} bytes exceeds page capacity")
    if rows == 0:
        return PackResult(pages=0, used_bytes=0, rows=0)
    rows_per_page = PAGE_CAPACITY // per_row
    pages = -(-rows // rows_per_page)  # ceil division
    return PackResult(pages=pages, used_bytes=rows * per_row, rows=rows)


def pack_columns(
    stripped_columns: Sequence[Sequence[bytes]],
    codecs: Sequence[ColumnCodec],
    extra_bytes: int = 0,
    row_overhead: int = ROW_OVERHEAD,
) -> PackResult:
    """Pack rows (given column-wise, already padding-stripped) into pages.

    Args:
        stripped_columns: one sequence of stripped byte strings per column,
            all of equal length, in the desired row order.
        codecs: one incremental codec per column (reset by this function).
        extra_bytes: index-level overhead to charge on top of pages.
        row_overhead: per-row slot/record-header bytes; the row-store
            default is :data:`ROW_OVERHEAD`, column-store segments store
            dense arrays and pass 0.

    Returns:
        The exact :class:`PackResult`.
    """
    if len(stripped_columns) != len(codecs):
        raise StorageError("column/codec count mismatch")
    n_rows = len(stripped_columns[0]) if stripped_columns else 0
    for col in stripped_columns:
        if len(col) != n_rows:
            raise StorageError("ragged column data")
    for codec in codecs:
        codec.reset()
    if n_rows == 0:
        return PackResult(pages=0, used_bytes=0, rows=0,
                          extra_bytes=extra_bytes)

    pages = 1
    used = 0
    rows_on_page = 0
    closed_size = 0  # size of the current page before the latest row
    # codec.add() returns the column's exact on-page size, so the hot
    # loop sums the returns instead of a second size() pass per row.
    pairs = list(zip(stripped_columns, codecs))
    for i in range(n_rows):
        total = 0
        for col, codec in pairs:
            total += codec.add(col[i])
        rows_on_page += 1
        current = rows_on_page * row_overhead + total
        if current > PAGE_CAPACITY:
            if rows_on_page == 1:
                raise StorageError(
                    "a single compressed row exceeds page capacity"
                )
            # Close the page without this row, then re-add the row fresh.
            pages += 1
            used += closed_size
            for codec in codecs:
                codec.reset()
            total = 0
            for col, codec in pairs:
                total += codec.add(col[i])
            rows_on_page = 1
            current = row_overhead + total
        closed_size = current
    used += closed_size
    return PackResult(pages=pages, used_bytes=used, rows=n_rows,
                      extra_bytes=extra_bytes)


def btree_overhead_pages(leaf_pages: int, key_width: int) -> int:
    """Interior B-tree pages above ``leaf_pages`` leaves.

    Interior entries are uncompressed (key + child pointer), as in SQL
    Server where only leaf pages are page-compressed.
    """
    if leaf_pages <= 1:
        return 0
    fanout = max(2, PAGE_CAPACITY // (key_width + 8 + ROW_OVERHEAD))
    total = 0
    level = leaf_pages
    while level > 1:
        level = -(-level // fanout)
        total += level
    return total
