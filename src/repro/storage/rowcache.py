"""Per-table cache of serialized/stripped column bytes.

Building many candidate indexes over the same table re-serializes the same
values again and again; this cache does the (relatively expensive) fixed
width serialization and padding-stripping once per column and memoizes
sort orders per key-column sequence.
"""

from __future__ import annotations

from typing import Sequence

from repro.catalog.column import Column
from repro.catalog.datatypes import IntType
from repro.catalog.table import Table
from repro.compression.base import strip_value

#: Pseudo-column used as the row locator stored in secondary indexes.
RID_COLUMN = Column("_rid", IntType(8))

#: Column slot the RID blob is shared under (matches
#: :data:`repro.parallel.shm.RID_SLOT`; no real column may shadow the
#: pseudo-column's reserved name).
RID_SLOT = RID_COLUMN.name


def _sort_key_for(values: list):
    """Per-column sort keys tolerant of NULLs (None sorts first)."""
    return [((v is not None), v) for v in values]


class SerializedTable:
    """Lazy cache of stripped bytes, distinct stats and sort orders."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self._stripped: dict[str, list[bytes]] = {}
        self._distinct: dict[str, set[bytes]] = {}
        self._orders: dict[tuple[str, ...], list[int]] = {}
        self._rid_stripped: list[bytes] | None = None
        #: (store, key) after :meth:`share_to`: canonical bytes live in
        #: a shared-memory segment instead of this process's heap.
        self._shared = None

    # ------------------------------------------------------------------
    def stripped(self, column_name: str) -> list[bytes]:
        """Padding-stripped serialized bytes of one column, in row order."""
        cached = self._stripped.get(column_name)
        if cached is not None:
            return cached
        if self._shared is not None:
            store, key = self._shared
            out = store.column(key, column_name)
            if out is not None:
                self._stripped[column_name] = out
                return out
        column = self.table.column(column_name)
        encode = column.dtype.encode
        out = [strip_value(encode(v), column)
               for v in self.table.column_values(column_name)]
        self._stripped[column_name] = out
        return out

    def rid_stripped(self) -> list[bytes]:
        """Stripped RID bytes (row position as an 8-byte int), row order."""
        if self._rid_stripped is None:
            if self._shared is not None:
                store, key = self._shared
                out = store.column(key, RID_SLOT)
                if out is not None:
                    self._rid_stripped = out
                    return out
            encode = RID_COLUMN.dtype.encode
            self._rid_stripped = [
                strip_value(encode(i), RID_COLUMN)
                for i in range(self.table.num_rows)
            ]
        return self._rid_stripped

    # ------------------------------------------------------------------
    def shared_columns(self) -> dict[str, list[bytes]]:
        """The materialized column blobs this cache currently holds, in
        the shape :meth:`SharedSamplePages.publish` takes (RID under
        the reserved slot)."""
        columns: dict[str, list[bytes]] = dict(self._stripped)
        if self._rid_stripped is not None:
            columns[RID_SLOT] = self._rid_stripped
        return columns

    def share_to(self, store, key) -> None:
        """Switch this cache to read from ``store[key]`` (already
        published there) and drop the process-local value lists, so the
        shared segment is the single canonical copy the workers map."""
        self._shared = (store, key)
        self._stripped = {}
        self._rid_stripped = None

    # ------------------------------------------------------------------
    def distinct_stripped(self, column_name: str) -> set[bytes]:
        """Distinct stripped values of a column (global dictionary input)."""
        cached = self._distinct.get(column_name)
        if cached is None:
            cached = set(self.stripped(column_name))
            self._distinct[column_name] = cached
        return cached

    def n_distinct(self, column_name: str) -> int:
        return len(self.distinct_stripped(column_name))

    def distinct_bytes(self, column_name: str) -> int:
        """Global-dictionary overhead bytes for this column."""
        return sum(1 + len(v) for v in self.distinct_stripped(column_name))

    # ------------------------------------------------------------------
    def sort_order(self, key_columns: Sequence[str]) -> list[int]:
        """Row indices sorted by the key columns (memoized)."""
        key = tuple(key_columns)
        cached = self._orders.get(key)
        if cached is not None:
            return cached
        if not key:
            order = list(range(self.table.num_rows))
        else:
            col_keys = [
                _sort_key_for(self.table.column_values(name)) for name in key
            ]
            order = sorted(
                range(self.table.num_rows),
                key=lambda i: tuple(ck[i] for ck in col_keys),
            )
        self._orders[key] = order
        return order
