"""Physical index construction: measure the exact size of (compressed)
heaps and indexes by packing real serialized rows into pages.

This is the ground-truth generator behind SampleCF (built on samples) and
behind every "true size" an experiment compares an estimate against (built
on full tables).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.catalog.column import Column
from repro.compression.base import CompressionMethod
from repro.compression.packages import make_codecs
from repro.errors import StorageError
from repro.storage.page import (
    PAGE_SIZE,
    btree_overhead_pages,
    pack_columns,
    pack_fixed_width,
)
from repro.storage.rowcache import RID_COLUMN, SerializedTable


class IndexKind(enum.Enum):
    """Physical structure kinds the advisor designs over."""

    HEAP = "heap"
    CLUSTERED = "clustered"
    SECONDARY = "secondary"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class IndexSize:
    """Measured size of a physical structure.

    Attributes:
        leaf_pages: data pages.
        interior_pages: B-tree pages above the leaves (0 for heaps).
        rows: number of entries.
        used_bytes: bytes occupied inside leaf pages.
        extra_bytes: index-level overhead (global dictionary).
    """

    leaf_pages: int
    interior_pages: int
    rows: int
    used_bytes: int
    extra_bytes: int = 0

    @property
    def pages(self) -> int:
        return self.leaf_pages + self.interior_pages

    @property
    def total_bytes(self) -> int:
        return self.pages * PAGE_SIZE + self.extra_bytes


def stored_columns(
    serialized: SerializedTable,
    kind: IndexKind,
    key_columns: Sequence[str],
    included_columns: Sequence[str] = (),
) -> list[Column]:
    """The columns physically stored by a structure, in storage order.

    * HEAP / CLUSTERED: every table column (key first for clustered).
    * SECONDARY: key columns, then included columns, then the row locator.
    """
    table = serialized.table
    if kind in (IndexKind.HEAP, IndexKind.CLUSTERED):
        ordered = list(key_columns) + [
            c for c in table.column_names if c not in key_columns
        ]
        return [table.column(name) for name in ordered]
    cols = [table.column(name) for name in key_columns]
    cols += [
        table.column(name)
        for name in included_columns
        if name not in key_columns
    ]
    cols.append(RID_COLUMN)
    return cols


def measure_structure(
    serialized: SerializedTable,
    kind: IndexKind,
    key_columns: Sequence[str] = (),
    included_columns: Sequence[str] = (),
    method: CompressionMethod = CompressionMethod.NONE,
) -> IndexSize:
    """Build (size-wise) a heap/index over the cached table data.

    Args:
        serialized: the table's serialization cache.
        kind: heap, clustered, or secondary.
        key_columns: sort key (empty allowed only for heaps).
        included_columns: extra non-key columns (secondary only).
        method: compression package to apply.
    """
    table = serialized.table
    if kind is not IndexKind.HEAP and not key_columns:
        raise StorageError(f"{kind} requires key columns")
    columns = stored_columns(serialized, kind, key_columns, included_columns)

    order = (
        list(range(table.num_rows))
        if kind is IndexKind.HEAP
        else serialized.sort_order(key_columns)
    )

    # Gather per-column stripped bytes in storage (sorted) order.
    stripped_cols: list[list[bytes]] = []
    for col in columns:
        source = (
            serialized.rid_stripped()
            if col.name == RID_COLUMN.name
            else serialized.stripped(col.name)
        )
        stripped_cols.append([source[i] for i in order])

    row_width = sum(c.width for c in columns)
    if method is CompressionMethod.NONE:
        leaf = pack_fixed_width(table.num_rows, row_width)
    else:
        distincts = {
            col.name: (
                table.num_rows
                if col.name == RID_COLUMN.name
                else serialized.n_distinct(col.name)
            )
            for col in columns
        }
        extra = 0
        if method is CompressionMethod.GLOBAL_DICT:
            extra = sum(
                serialized.distinct_bytes(col.name)
                for col in columns
                if col.name != RID_COLUMN.name
            )
        codecs = make_codecs(method, columns, distincts)
        leaf = pack_columns(stripped_cols, codecs, extra_bytes=extra)

    interior = 0
    if kind is not IndexKind.HEAP:
        key_width = sum(table.column(c).width for c in key_columns) + 8
        interior = btree_overhead_pages(leaf.pages, key_width)
    return IndexSize(
        leaf_pages=leaf.pages,
        interior_pages=interior,
        rows=leaf.rows,
        used_bytes=leaf.used_bytes,
        extra_bytes=leaf.extra_bytes,
    )


def uncompressed_size(
    serialized: SerializedTable,
    kind: IndexKind,
    key_columns: Sequence[str] = (),
    included_columns: Sequence[str] = (),
) -> IndexSize:
    """Shortcut: size of the structure without compression."""
    return measure_structure(
        serialized, kind, key_columns, included_columns,
        CompressionMethod.NONE,
    )


def compression_fraction(
    serialized: SerializedTable,
    kind: IndexKind,
    key_columns: Sequence[str],
    included_columns: Sequence[str],
    method: CompressionMethod,
) -> float:
    """Measured CF = compressed bytes / uncompressed bytes (Section 2.2)."""
    compressed = measure_structure(
        serialized, kind, key_columns, included_columns, method
    )
    plain = measure_structure(
        serialized, kind, key_columns, included_columns,
        CompressionMethod.NONE,
    )
    if plain.total_bytes == 0:
        return 1.0
    return compressed.total_bytes / plain.total_bytes
