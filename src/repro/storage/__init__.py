"""Storage engine: pages, heaps, index packing, serialization cache."""

from repro.storage.index_build import (
    IndexKind,
    IndexSize,
    compression_fraction,
    measure_structure,
    stored_columns,
    uncompressed_size,
)
from repro.storage.page import (
    PAGE_CAPACITY,
    PAGE_HEADER,
    PAGE_SIZE,
    ROW_OVERHEAD,
    PackResult,
    btree_overhead_pages,
    pack_columns,
    pack_fixed_width,
)
from repro.storage.rowcache import RID_COLUMN, SerializedTable

__all__ = [
    "PAGE_SIZE",
    "PAGE_HEADER",
    "PAGE_CAPACITY",
    "ROW_OVERHEAD",
    "PackResult",
    "pack_columns",
    "pack_fixed_width",
    "btree_overhead_pages",
    "SerializedTable",
    "RID_COLUMN",
    "IndexKind",
    "IndexSize",
    "measure_structure",
    "uncompressed_size",
    "compression_fraction",
    "stored_columns",
]
