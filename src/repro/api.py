"""`repro.api` — the one public entry point for tuning.

The historical free functions (``repro.advisor.advisor.tune``,
``tune_decoupled``, ``repro.advisor.sweep.run_sweep``) drifted into
three overlapping signatures, each re-plumbing database, workload,
stats, caches, and variant on every call.  :class:`Session` owns that
context once — database, workload, variant + option defaults, shared
:class:`DatabaseStats`, persistent (or in-memory) estimate/cost caches,
and the previous configuration — and exposes every tuning mode as a
method:

* :meth:`Session.tune` — one cold advisor run.
* :meth:`Session.retune` — incremental continuous-tuning run from the
  previous configuration (drop decayed structures, greedy re-fill).
* :meth:`Session.tune_decoupled` — the paper's staged
  select-then-compress strawman (Example 1/2).
* :meth:`Session.sweep` — sharded budget sweep / seed ablation.

The old callables remain importable as thin PEP 562 shims that emit a
:class:`DeprecationWarning` and return the original implementation
unchanged (byte-identical results).  For callers that genuinely want
the one-shot functional form (explicit estimators, ad-hoc engines —
mostly tests and benchmarks), this module also re-exports it under its
supported home: ``repro.api.tune`` / ``tune_decoupled`` / ``run_sweep``
are the same objects the deprecated paths shim to, without the
warning.

Example::

    from repro.api import Session
    from repro import sales_database, sales_workload

    db = sales_database(scale=0.1)
    session = Session(db, sales_workload(db), budget_fraction=0.25)
    cold = session.tune()
    ...                      # workload drifts
    delta = session.retune(workload=new_workload)
    print(delta.dropped, delta.added)
"""

from __future__ import annotations

from repro.advisor.advisor import AdvisorResult, _tune, _tune_decoupled
from repro.advisor.retune import RetuneResult, TuningSession
from repro.advisor.sweep import SweepResult, _run_sweep
from repro.compression.base import CompressionMethod
from repro.workload.query import Workload

#: supported functional aliases (same objects as the deprecated paths).
tune = _tune
tune_decoupled = _tune_decoupled
run_sweep = _run_sweep

__all__ = [
    "Session",
    "RetuneResult",
    "SweepResult",
    "TuningSession",
    "run_sweep",
    "tune",
    "tune_decoupled",
]


class Session(TuningSession):
    """Facade session: :class:`TuningSession` (tune/retune + session
    state) extended with the remaining public tuning modes."""

    def tune_decoupled(
        self,
        budget_bytes: float | None = None,
        *,
        budget_fraction: float | None = None,
        workload: Workload | None = None,
        method: CompressionMethod = CompressionMethod.PAGE,
        **extra,
    ) -> AdvisorResult:
        """The staged strawman of Example 1/2: select indexes without
        considering compression, then blindly compress everything
        selected.  Does not advance the session's configuration — it is
        a comparison arm, not a deployable recommendation."""
        workload = self._resolve_workload(workload)
        budget = self._resolve_budget(budget_bytes, budget_fraction)
        return _tune_decoupled(
            self.database,
            workload,
            budget,
            stats=self.stats,
            method=method,
            **{**self.options_extra, **extra},
        )

    def sweep(
        self,
        budgets,
        *,
        seeds=None,
        workers: int = 1,
        workload: Workload | None = None,
        **extra,
    ) -> SweepResult:
        """Sharded budget sweep / seed ablation over this session's
        context (database, variant, stats, cache directory).  Does not
        advance the session's configuration — a sweep is many
        hypothetical runs, not one deployment decision."""
        workload = self._resolve_workload(workload)
        return _run_sweep(
            self.database,
            workload,
            budgets,
            seeds=seeds,
            variant=self.variant,
            workers=workers,
            cache_dir=self.cache_dir,
            stats=self.stats,
            progress=self.progress,
            **{**self.options_extra, **extra},
        )
