"""The sample manager: amortized sampling for size estimation.

Section 4.1's first optimization: taking a fresh uniform sample per
SampleCF invocation is infeasible, so the manager takes **one sample per
table** (per fraction) and reuses it for every index on that table.  It
also owns the filtered samples (partial indexes), join synopses and MV
samples of Appendix B, and records how much time was spent building each
category — the instrumentation behind the paper's Figure 11 breakdown.
"""

from __future__ import annotations

import random
import time
import zlib
from collections import defaultdict

from repro.catalog.schema import Database
from repro.catalog.table import Table
from repro.physical.mv_def import MVDefinition
from repro.sampling.join_synopsis import build_join_synopsis
from repro.sampling.mv_sample import MVSample, build_mv_sample
from repro.storage.rowcache import SerializedTable
from repro.workload.expr import Predicate

#: Sampling fractions the size-estimation planner may choose between.
DEFAULT_FRACTIONS = (0.01, 0.025, 0.05, 0.075, 0.10)

#: Default base RNG seed (the paper's submission date); sweep seed
#: ablations vary this, so it is named once here.
DEFAULT_SAMPLE_SEED = 20110829


class SampleManager:
    """Caches per-table samples, filtered samples, synopses, MV samples.

    Args:
        database: the database to sample.
        seed: base RNG seed (each (table, fraction) pair derives its own
            deterministic stream).
        min_sample_rows: lower bound on sample size; tiny tables are
            sampled at a higher effective fraction so SampleCF has enough
            rows to pack at least a few pages.
    """

    def __init__(
        self,
        database: Database,
        seed: int = DEFAULT_SAMPLE_SEED,
        min_sample_rows: int = 200,
    ) -> None:
        self.database = database
        self.seed = seed
        self.min_sample_rows = min_sample_rows
        self._samples: dict[tuple[str, float], SerializedTable] = {}
        self._filtered: dict[tuple, SerializedTable] = {}
        self._synopses: dict[tuple[str, float], Table] = {}
        self._mv_samples: dict[tuple, MVSample] = {}
        #: seconds spent building each artifact category
        self.timings: dict[str, float] = defaultdict(float)
        #: build counters per category
        self.counts: dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    def _rng(self, *key) -> random.Random:
        """Deterministic per-(purpose, table, fraction) RNG stream.

        Seeded from a *stable* digest of the key's repr — never from
        builtin ``hash()``, whose string hashing is randomized per
        process (PYTHONHASHSEED) and would make every run draw
        different samples.
        """
        material = repr((self.seed,) + tuple(key)).encode()
        return random.Random(zlib.crc32(material))

    def effective_fraction(self, table_name: str, fraction: float) -> float:
        """Raise tiny-table fractions so samples stay usable."""
        table = self.database.table(table_name)
        if table.num_rows == 0:
            return fraction
        needed = self.min_sample_rows / table.num_rows
        return min(1.0, max(fraction, needed))

    # ------------------------------------------------------------------
    def table_sample(self, table_name: str, fraction: float) -> SerializedTable:
        """The (cached) uniform sample of a table at ``fraction``."""
        fraction = self.effective_fraction(table_name, fraction)
        key = (table_name, round(fraction, 6))
        cached = self._samples.get(key)
        if cached is not None:
            return cached
        start = time.perf_counter()
        table = self.database.table(table_name)
        sample = table.sample(fraction, self._rng("table", key))
        serialized = SerializedTable(sample)
        self._samples[key] = serialized
        self.timings["table_sample"] += time.perf_counter() - start
        self.counts["table_sample"] += 1
        return serialized

    # ------------------------------------------------------------------
    def filtered_sample(
        self,
        table_name: str,
        predicates: tuple[Predicate, ...],
        fraction: float,
    ) -> SerializedTable:
        """Filtered sample for a partial index (Appendix B.1): the WHERE
        clause applied to the base table sample."""
        fraction = self.effective_fraction(table_name, fraction)
        key = (table_name, round(fraction, 6), predicates)
        cached = self._filtered.get(key)
        if cached is not None:
            return cached
        base = self.table_sample(table_name, fraction).table
        start = time.perf_counter()
        out = base.empty_clone(f"{table_name}_filtered")
        names = base.column_names
        for raw in base.iter_rows():
            row = dict(zip(names, raw))
            if all(p.evaluate(row) for p in predicates):
                out.append_row(raw)
        serialized = SerializedTable(out)
        self._filtered[key] = serialized
        self.timings["filtered_sample"] += time.perf_counter() - start
        self.counts["filtered_sample"] += 1
        return serialized

    # ------------------------------------------------------------------
    def join_synopsis(self, fact_table: str, fraction: float) -> Table:
        """The (cached) join synopsis rooted at ``fact_table``."""
        fraction = self.effective_fraction(fact_table, fraction)
        key = (fact_table, round(fraction, 6))
        cached = self._synopses.get(key)
        if cached is not None:
            return cached
        fact_sample = self.table_sample(fact_table, fraction).table
        start = time.perf_counter()
        synopsis = build_join_synopsis(self.database, fact_sample, fact_table)
        self._synopses[key] = synopsis
        self.timings["join_synopsis"] += time.perf_counter() - start
        self.counts["join_synopsis"] += 1
        return synopsis

    # ------------------------------------------------------------------
    def mv_sample(self, mv: MVDefinition, fraction: float) -> MVSample:
        """The (cached) MV sample + cardinality estimate (Appendix B.3)."""
        fraction = self.effective_fraction(mv.fact_table, fraction)
        key = (mv, round(fraction, 6))
        cached = self._mv_samples.get(key)
        if cached is not None:
            return cached
        synopsis = self.join_synopsis(mv.fact_table, fraction)
        start = time.perf_counter()
        sample = build_mv_sample(
            self.database, mv, synopsis, synopsis.num_rows, fraction
        )
        self._mv_samples[key] = sample
        self.timings["mv_sample"] += time.perf_counter() - start
        self.counts["mv_sample"] += 1
        return sample

    # ------------------------------------------------------------------
    def sample_for_index(self, index, fraction: float) -> SerializedTable:
        """Route an :class:`~repro.physical.index_def.IndexDef` to the
        right sample kind: MV sample, filtered sample, or plain sample."""
        if index.is_mv_index:
            mv_sample = self.mv_sample(index.mv, fraction)
            return SerializedTable(mv_sample.table)
        if index.is_partial:
            preds = (index.filter,)
            return self.filtered_sample(index.table, preds, fraction)
        return self.table_sample(index.table, fraction)

    def share_samples(self, store) -> int:
        """Publish every cached sample's materialized column blobs into
        ``store`` (a :class:`~repro.parallel.shm.SharedSamplePages`) and
        repoint the caches at the shared segment.

        Called by the parallel engine right before its pool forks:
        workers then map the one shared segment instead of breaking
        copy-on-write on heap-resident value lists.  Returns the number
        of samples published (0 when nothing is materialized yet).
        """
        start = time.perf_counter()
        shareable = []
        for kind, cache in (("table", self._samples),
                            ("filtered", self._filtered)):
            for key, serialized in cache.items():
                columns = serialized.shared_columns()
                if columns:
                    shareable.append(((kind,) + key, serialized, columns))
        published = store.publish(
            (key, columns) for key, serialized, columns in shareable
        )
        if published:
            for key, serialized, _ in shareable:
                serialized.share_to(store, key)
        self.timings["share_samples"] += time.perf_counter() - start
        self.counts["share_samples"] += published
        return published

    def reset_timings(self) -> None:
        self.timings.clear()
        self.counts.clear()
