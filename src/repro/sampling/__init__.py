"""Sampling: sample manager, filtered samples, join synopses, MV samples."""

from repro.sampling.join_synopsis import build_join_synopsis
from repro.sampling.mv_sample import MVSample, build_mv_sample
from repro.sampling.sample_manager import (
    DEFAULT_FRACTIONS,
    DEFAULT_SAMPLE_SEED,
    SampleManager,
)

__all__ = [
    "SampleManager",
    "DEFAULT_FRACTIONS",
    "DEFAULT_SAMPLE_SEED",
    "build_join_synopsis",
    "MVSample",
    "build_mv_sample",
]
