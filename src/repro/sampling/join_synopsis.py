"""Join synopses (Acharya et al.): pre-joined fact-table samples.

Joining two independent table samples yields almost no matches, so MV
samples are instead built from a *join synopsis*: a uniform sample of the
fact table joined (on declared foreign keys) with the **full** dimension
tables, so every sampled fact row finds its matching dimension rows
(Appendix B.2).
"""

from __future__ import annotations

from repro.catalog.schema import Database
from repro.catalog.table import Table
from repro.errors import SamplingError


def build_join_synopsis(database: Database, fact_sample: Table,
                        fact_table: str) -> Table:
    """Join a fact-table sample with all FK-reachable dimension tables.

    Args:
        database: catalog holding the full dimension tables and FKs.
        fact_sample: a uniform sample of the fact table.
        fact_table: the fact table's name.

    Returns:
        A wide table containing every column of the fact table and of all
        (transitively) referenced dimension tables.  Column names must be
        database-unique (bundled datasets guarantee this by prefixing).
    """
    columns = list(fact_sample.columns)
    data: dict[str, list] = {
        c.name: list(fact_sample.column_values(c.name)) for c in columns
    }
    joined_tables = {fact_table}

    # Follow the FK closure breadth-first; each edge appends the referenced
    # table's columns aligned to the current synopsis rows.
    pending = list(database.foreign_keys_from(fact_table))
    while pending:
        fk = pending.pop(0)
        if fk.dst_table in joined_tables:
            continue
        if fk.src_column not in data:
            # The source side has not been joined in yet; retry later.
            if any(
                f.dst_table == fk.src_table or f.src_table == fk.src_table
                for f in pending
            ):
                pending.append(fk)
                continue
            raise SamplingError(
                f"cannot resolve join path for {fk} in synopsis"
            )
        dim = database.table(fk.dst_table)
        key_to_row: dict = {}
        dim_rows = dim.rows()
        key_pos = dim.column_names.index(fk.dst_column)
        for row in dim_rows:
            key_to_row[row[key_pos]] = row
        src_keys = data[fk.src_column]
        matches = []
        for k in src_keys:
            row = key_to_row.get(k)
            if row is None:
                raise SamplingError(
                    f"dangling foreign key value {k!r} for {fk}"
                )
            matches.append(row)
        for pos, col in enumerate(dim.columns):
            if col.name in data:
                raise SamplingError(
                    f"duplicate column {col.name!r} joining {fk.dst_table}"
                )
            data[col.name] = [m[pos] for m in matches]
            columns.append(col)
        joined_tables.add(fk.dst_table)
        pending.extend(database.foreign_keys_from(fk.dst_table))

    out = Table(f"synopsis_{fact_table}", columns)
    for col in columns:
        out.set_column_data(col.name, data[col.name])
    return out
