"""MV samples: grouped samples of materialized views (Appendix B.3).

An MV sample is built by filtering + grouping a join synopsis.  Because
grouping a sample does *not* scale linearly to the full data, the number
of tuples in the real MV is estimated with the Adaptive Estimator from the
per-group COUNT(*) column, exactly as the paper's ``CreateMVSample``
algorithm does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.column import Column
from repro.catalog.schema import Database
from repro.catalog.table import Table
from repro.errors import SamplingError
from repro.physical.mv_def import MVDefinition, aggregate_column_name
from repro.stats.distinct import adaptive_estimator, frequency_statistics
from repro.workload.query import Aggregate


@dataclass
class MVSample:
    """A sample of an MV plus the cardinality estimate for the full MV.

    Attributes:
        mv: the view definition.
        table: the grouped (or projected) sample rows, including the
            implicit ``count_all`` column for aggregated views.
        sample_rows: tuples of the synopsis that satisfied the filter
            (the paper's ``r``).
        sample_groups: groups in the sample (the paper's ``d``).
        est_base_rows: estimated tuples feeding the view in the full
            database (the paper's ``n``).
        est_rows: estimated tuples *in* the full MV (AE for aggregated
            views; ``n`` for projection-only views).
        fraction: the sampling fraction of the underlying synopsis.
    """

    mv: MVDefinition
    table: Table
    sample_rows: int
    sample_groups: int
    est_base_rows: float
    est_rows: float
    fraction: float


def _agg_state_init(agg: Aggregate):
    if agg.func in ("SUM", "AVG", "COUNT"):
        return 0
    return None  # MIN / MAX


def _agg_value(agg: Aggregate, row: dict):
    if not agg.columns:
        return 1
    value = 1
    for col in agg.columns:
        v = row[col]
        if v is None:
            return None
        value *= v
    return value


def _agg_step(agg: Aggregate, state, row: dict):
    v = _agg_value(agg, row)
    if agg.func == "COUNT":
        return state + (1 if v is not None else 0)
    if v is None:
        return state
    if agg.func in ("SUM", "AVG"):
        return state + v
    if agg.func == "MIN":
        return v if state is None or v < state else state
    return v if state is None or v > state else state


def _agg_final(agg: Aggregate, state, count: int):
    if agg.func == "AVG":
        return state // count if count else None
    return state


def build_mv_sample(
    database: Database,
    mv: MVDefinition,
    synopsis: Table,
    synopsis_rows_total: int,
    fraction: float,
) -> MVSample:
    """Materialize the MV over a join synopsis and estimate its size.

    Args:
        database: the catalog (for output column types).
        mv: the view definition.
        synopsis: join synopsis covering ``mv``'s tables/columns.
        synopsis_rows_total: rows in the synopsis (before filtering).
        fraction: sampling fraction the synopsis was built with.
    """
    needed = mv.referenced_base_columns()
    missing = [c for c in needed if not synopsis.has_column(c)]
    if missing:
        raise SamplingError(
            f"synopsis for {mv.fact_table!r} lacks columns {missing}"
        )

    out_columns = [
        Column(name, dtype) for name, dtype in mv.storage_columns(database)
    ]
    out = Table(mv.name, out_columns)

    names = list(dict.fromkeys(list(needed) + list(mv.group_by)))
    rows = synopsis.iter_rows(names)
    predicates = mv.predicates

    if not mv.has_aggregation:
        # Projection-only view: each qualifying base row is one MV row.
        kept = 0
        group_cols = [c for c, _ in mv.storage_columns(database)]
        for raw in rows:
            row = dict(zip(names, raw))
            if all(p.evaluate(row) for p in predicates):
                kept += 1
                out.append_row([row[c] for c in group_cols])
        filter_factor = kept / synopsis_rows_total if synopsis_rows_total else 0.0
        fact_rows = database.table(mv.fact_table).num_rows
        est_base = fact_rows * filter_factor
        return MVSample(
            mv=mv,
            table=out,
            sample_rows=kept,
            sample_groups=kept,
            est_base_rows=est_base,
            est_rows=est_base,
            fraction=fraction,
        )

    groups: dict[tuple, list] = {}
    counts: dict[tuple, int] = {}
    kept = 0
    for raw in rows:
        row = dict(zip(names, raw))
        if not all(p.evaluate(row) for p in predicates):
            continue
        kept += 1
        key = tuple(row[c] for c in mv.group_by)
        state = groups.get(key)
        if state is None:
            state = [_agg_state_init(a) for a in mv.aggregates]
            groups[key] = state
            counts[key] = 0
        counts[key] += 1
        for i, agg in enumerate(mv.aggregates):
            state[i] = _agg_step(agg, state[i], row)

    out_names = [c.name for c in out_columns]
    for key, state in groups.items():
        count = counts[key]
        row_map = dict(zip(mv.group_by, key))
        for agg, st in zip(mv.aggregates, state):
            row_map[aggregate_column_name(agg)] = _agg_final(agg, st, count)
        row_map.setdefault("count_all", count)
        out.append_row([row_map[name] for name in out_names])

    r = kept
    d = len(groups)
    filter_factor = r / synopsis_rows_total if synopsis_rows_total else 0.0
    fact_rows = database.table(mv.fact_table).num_rows
    n = fact_rows * filter_factor
    if d == 0:
        est = 0.0
    else:
        freq = frequency_statistics(list(counts.values()))
        est = adaptive_estimator(freq, d, r, max(int(round(n)), r))
    return MVSample(
        mv=mv,
        table=out,
        sample_rows=r,
        sample_groups=d,
        est_base_rows=n,
        est_rows=est,
        fraction=fraction,
    )
