"""Projection sizing: ground truth, sampling, and RLE deduction.

Three estimators, in decreasing cost / accuracy order, mirroring the
paper's Section 4/5 toolbox one storage model over:

* :meth:`ProjectionSizer.measure` — pack the full table (ground truth).
* :meth:`ProjectionSizer.estimate_from_sample` — SampleCF for
  projections: measure the projection on a row sample and scale the
  per-column compression fractions up to the full row count.
* :meth:`ProjectionSizer.deduce_rle_column` — the Section 4.2 ORD-DEP
  run-length deduction applied to an RLE column: the paper notes the
  estimation "is also applicable to RLE"; this makes the claim concrete
  and testable.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.catalog.table import Table
from repro.columnstore.encodings import COLUMN_ENCODINGS, best_encoding
from repro.columnstore.projection import ProjectionDef, ProjectionSize
from repro.compression.base import CompressionMethod
from repro.compression.rle import RUN_COUNTER, VALUE_HEADER
from repro.errors import SizeEstimationError
from repro.storage.page import PAGE_SIZE
from repro.storage.rowcache import SerializedTable


def estimate_rle_run_length(
    n_rows: int, joint_distinct: int
) -> float:
    """Average run length of a column under a sort order (Section 4.2).

    For a projection sorted by ``(S1..Sk)`` with target column ``Y``
    stored in that order, the expected run length of ``Y`` is the number
    of tuples per distinct ``(S1..Sk, Y)`` combination — the paper's
    ``L(I_BA, A) = L(I_A, A) * |A| / |AB| = #tuples / |AB|`` — using the
    *joint* distinct count so correlated columns are handled (the paper's
    warning against simply dividing by ``|B|``).
    """
    if n_rows < 0 or joint_distinct <= 0:
        raise SizeEstimationError(
            "run length needs n_rows >= 0 and joint_distinct > 0"
        )
    return n_rows / joint_distinct


class ProjectionSizer:
    """Sizes projections of one table (shares a SerializedTable cache)."""

    def __init__(self, table: Table,
                 serialized: SerializedTable | None = None) -> None:
        self.table = table
        self.serialized = serialized or SerializedTable(table)

    # ------------------------------------------------------------------
    def _ordered_stripped(
        self, projection: ProjectionDef, column: str,
        serialized: SerializedTable | None = None,
    ) -> list[bytes]:
        ser = serialized or self.serialized
        order = ser.sort_order(projection.sort_columns)
        stripped = ser.stripped(column)
        return [stripped[i] for i in order]

    def measure(
        self,
        projection: ProjectionDef,
        encodings: Sequence[CompressionMethod] = COLUMN_ENCODINGS,
    ) -> ProjectionSize:
        """Ground-truth size: pack every column in projection order and
        keep the smallest encoding per column."""
        return self._measure_on(projection, self.serialized, encodings)

    def _measure_on(
        self,
        projection: ProjectionDef,
        serialized: SerializedTable,
        encodings: Sequence[CompressionMethod] = COLUMN_ENCODINGS,
    ) -> ProjectionSize:
        table = serialized.table
        column_bytes: dict[str, int] = {}
        column_used: dict[str, int] = {}
        chosen: dict[str, CompressionMethod] = {}
        runs: dict[str, int] = {}
        for name in projection.columns:
            column = table.column(name)
            ordered = self._ordered_stripped(projection, name, serialized)
            result = best_encoding(
                column,
                ordered,
                n_distinct=serialized.n_distinct(name),
                dictionary_bytes=serialized.distinct_bytes(name),
                encodings=encodings,
            )
            column_bytes[name] = result.bytes
            column_used[name] = result.used_bytes
            chosen[name] = result.encoding
            if result.encoding is CompressionMethod.RLE:
                runs[name] = result.runs if result.runs is not None else 0
        return ProjectionSize(
            projection=projection,
            bytes=sum(column_bytes.values()),
            rows=table.num_rows,
            column_bytes=column_bytes,
            column_used_bytes=column_used,
            encodings=chosen,
            runs=runs,
        )

    # ------------------------------------------------------------------
    def estimate_from_sample(
        self,
        projection: ProjectionDef,
        fraction: float,
        seed: int = 0,
        encodings: Sequence[CompressionMethod] = COLUMN_ENCODINGS,
    ) -> ProjectionSize:
        """SampleCF for projections.

        Measures the projection on a Bernoulli row sample, derives each
        column's compression fraction against its fixed-width size on
        the sample, and applies those fractions to the full table's
        fixed-width sizes.  Whole-page quantization is reapplied at full
        scale so tiny samples do not over-round.
        """
        if not 0.0 < fraction <= 1.0:
            raise SizeEstimationError(f"sample fraction {fraction} not in (0,1]")
        sample = self.table.sample(fraction, random.Random(seed))
        if sample.num_rows == 0:
            raise SizeEstimationError(
                f"sample of {self.table.name} at f={fraction} is empty"
            )
        sample_ser = SerializedTable(sample)
        measured = self._measure_on(projection, sample_ser, encodings)
        n_full = self.table.num_rows
        column_bytes: dict[str, int] = {}
        column_used: dict[str, int] = {}
        for name in projection.columns:
            column = self.table.column(name)
            # Compression fraction from the *pre-quantization* bytes so a
            # small sample's whole-page rounding does not inflate it.
            sample_fixed = max(1, sample.num_rows * column.width)
            cf = measured.column_used_bytes[name] / sample_fixed
            full_fixed = n_full * column.width
            est = cf * full_fixed
            column_used[name] = int(est)
            # Re-apply whole-page quantization at full scale.
            column_bytes[name] = max(
                PAGE_SIZE, int(-(-est // PAGE_SIZE) * PAGE_SIZE)
            )
        return ProjectionSize(
            projection=projection,
            bytes=sum(column_bytes.values()),
            rows=n_full,
            column_bytes=column_bytes,
            column_used_bytes=column_used,
            encodings=dict(measured.encodings),
            runs={
                name: int(r / max(fraction, 1e-9))
                for name, r in measured.runs.items()
            },
        )

    # ------------------------------------------------------------------
    def deduce_rle_column(
        self,
        projection: ProjectionDef,
        column_name: str,
        distincts: Mapping[str, int] | None = None,
    ) -> int:
        """Deduce the RLE-encoded bytes of one column without touching
        the data order (Section 4.2's ORD-DEP deduction for RLE).

        The expected run count is ``rows / L`` with ``L`` from
        :func:`estimate_rle_run_length`; the joint distinct count of the
        sort prefix plus the target column defaults to the measured
        per-column distincts combined under independence (capped at the
        row count), which is exactly the statistics-only setting the
        advisor faces before any index exists.
        """
        if column_name not in projection.columns:
            raise SizeEstimationError(
                f"{column_name!r} is not stored by {projection.name}"
            )
        n_rows = self.table.num_rows
        if n_rows == 0:
            return 0
        group = [c for c in projection.sort_columns]
        if column_name not in group:
            group.append(column_name)
        if distincts is None:
            joint = 1
            for c in group:
                joint *= max(1, self.serialized.n_distinct(c))
                if joint >= n_rows:
                    break
            joint = min(n_rows, joint)
        else:
            joint = min(n_rows, max(1, distincts[column_name]))
        run_length = estimate_rle_run_length(n_rows, joint)
        est_runs = max(1, round(n_rows / max(run_length, 1.0)))
        avg_len = _avg_stripped_len(self.serialized.stripped(column_name))
        body = est_runs * (VALUE_HEADER + avg_len + RUN_COUNTER)
        pages = max(1, -(-int(body) // PAGE_SIZE))
        return pages * PAGE_SIZE


def _avg_stripped_len(stripped: Sequence[bytes]) -> float:
    if not stripped:
        return 0.0
    return sum(len(v) for v in stripped) / len(stripped)
