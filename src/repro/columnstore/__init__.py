"""Column-store physical design (the paper's Section 8 future work).

The paper closes by naming physical design for column stores — where RLE
"can make column data several orders of magnitude smaller" but "is quite
sensitive to the sort orders" — as the open problem its techniques point
at.  This subpackage builds that design tool on the library's substrate:

* :mod:`repro.columnstore.encodings` — per-column encodings (RLE, delta,
  bit packing, global dictionary, raw) measured by packing real stripped
  bytes, exactly as the row-store side does.
* :mod:`repro.columnstore.projection` — projections (C-Store style column
  groups with a sort order) and their measured / estimated sizes.
* :mod:`repro.columnstore.sizing` — projection sizing: full-data ground
  truth, SampleCF-style sampling, and the paper's Section 4.2 ORD-DEP
  run-length deduction applied to RLE columns (the claim "in principle,
  this estimation is also applicable to RLE" made testable).
* :mod:`repro.columnstore.cost` — scan cost model with column pruning,
  late materialization discounts for RLE, and per-encoding decompression
  CPU following Appendix A's shape.
* :mod:`repro.columnstore.advisor` — a compression-aware projection
  advisor (candidates -> skyline -> seeded greedy), mirroring the DTAc
  architecture one level down the storage stack.
"""

from repro.columnstore.advisor import (
    ColumnStoreAdvisor,
    ColumnStoreOptions,
    ColumnStoreResult,
    tune_columnstore,
)
from repro.columnstore.cost import ProjectionCostModel, ProjectionScanCost
from repro.columnstore.encodings import (
    COLUMN_ENCODINGS,
    EncodedColumnSize,
    best_encoding,
    measure_column,
)
from repro.columnstore.projection import (
    ProjectionDef,
    ProjectionSize,
    super_projection,
)
from repro.columnstore.sizing import (
    ProjectionSizer,
    estimate_rle_run_length,
)

__all__ = [
    "COLUMN_ENCODINGS",
    "EncodedColumnSize",
    "measure_column",
    "best_encoding",
    "ProjectionDef",
    "ProjectionSize",
    "super_projection",
    "ProjectionSizer",
    "estimate_rle_run_length",
    "ProjectionCostModel",
    "ProjectionScanCost",
    "ColumnStoreAdvisor",
    "ColumnStoreOptions",
    "ColumnStoreResult",
    "tune_columnstore",
]
