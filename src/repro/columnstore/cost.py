"""Scan/update cost model for projections.

Follows the shape of the row-store model (Appendix A) with the two
column-store twists the paper's Section 8 alludes to:

* **column pruning** — a scan only reads the pages of the columns the
  query references, so I/O is proportional to the *referenced* bytes;
* **operate-on-runs** — RLE columns can be filtered/aggregated per run
  without materializing tuples, so their per-value CPU is charged per
  run, not per row (the reason RLE + the right sort order is "several
  orders of magnitude" better).

Predicates on a prefix of the projection's sort key prune the scan to
the qualifying fraction of positions, the columnar analogue of a
clustered-index range seek.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.catalog.schema import Database
from repro.columnstore.projection import ProjectionDef, ProjectionSize
from repro.compression.base import CompressionMethod
from repro.errors import OptimizerError
from repro.optimizer.constants import DEFAULT_COST_CONSTANTS, CostConstants
from repro.stats.column_stats import DatabaseStats
from repro.stats.selectivity import predicate_selectivity
from repro.storage.page import PAGE_SIZE
from repro.workload.query import InsertQuery, SelectQuery, Statement


@dataclass(frozen=True)
class ProjectionScanCost:
    """Cost of answering one query's per-table scan via a projection."""

    projection: ProjectionDef
    io: float
    cpu: float

    @property
    def total(self) -> float:
        return self.io + self.cpu


class ProjectionCostModel:
    """Costs statements against a set of sized projections."""

    def __init__(
        self,
        database: Database,
        stats: DatabaseStats,
        constants: CostConstants = DEFAULT_COST_CONSTANTS,
    ) -> None:
        self.database = database
        self.stats = stats
        self.constants = constants

    # ------------------------------------------------------------------
    def scan_cost(
        self,
        query: SelectQuery,
        table: str,
        size: ProjectionSize,
    ) -> ProjectionScanCost | None:
        """Cost of scanning ``table``'s part of ``query`` off one
        projection; None when the projection does not cover the query."""
        projection = size.projection
        if projection.table != table:
            raise OptimizerError(
                f"projection on {projection.table!r} costed against "
                f"table {table!r}"
            )
        needed = query.columns_of_table(self.database, table)
        if not projection.covers(needed):
            return None
        read_cols = needed or projection.columns[:1]
        table_stats = self.stats.table(table)
        n_rows = max(1, size.rows)

        # Sort-key pruning: predicates on a prefix of the sort key cut
        # the scanned position range of *every* referenced column.
        fraction = 1.0
        predicates = list(query.predicates_of_table(self.database, table))
        for sort_col in projection.sort_columns:
            hit = [
                p for p in predicates if sort_col in p.columns()
            ]
            if not hit:
                break
            for p in hit:
                fraction *= predicate_selectivity(table_stats, p)
        fraction = max(fraction, 1.0 / n_rows)

        io = (
            size.bytes_of(tuple(read_cols))
            / PAGE_SIZE
            * fraction
            * self.constants.io_seq_page
        )
        cpu = 0.0
        rows_scanned = n_rows * fraction
        for name in read_cols:
            encoding = size.encodings.get(name, CompressionMethod.NONE)
            values = rows_scanned
            if encoding is CompressionMethod.RLE:
                total_runs = size.runs.get(name, n_rows)
                values = max(1.0, total_runs * fraction)
            cpu += self.constants.cpu_tuple * values
            cpu += self.constants.decompress_cpu(encoding, values, 1)
        residual = [
            p for p in predicates
            if not any(c in projection.sort_columns for c in p.columns())
        ]
        cpu += (
            self.constants.cpu_predicate * rows_scanned * len(residual)
        )
        group_cols = [
            c for c in query.group_by
            if self.database.table(table).has_column(c)
        ]
        if group_cols or query.aggregates:
            cpu += self.constants.cpu_group * rows_scanned
        return ProjectionScanCost(projection=projection, io=io, cpu=cpu)

    # ------------------------------------------------------------------
    def insert_cost(
        self,
        query: InsertQuery,
        sizes: Mapping[ProjectionDef, ProjectionSize],
    ) -> float:
        """Maintenance cost of a bulk load against every projection of
        the target table (each projection is one more sorted, encoded
        copy to maintain)."""
        rows = float(query.n_rows)
        cost = 0.0
        table = None
        for projection, size in sizes.items():
            if projection.table != query.table:
                continue
            if table is None:
                table = self.database.table(query.table)
            cost += self.constants.cpu_insert_per_index * rows
            width = sum(
                table.column(c).width for c in projection.columns
            )
            ratio = size.bytes / max(1, size.rows * width)
            cost += rows * width * min(1.0, ratio) / PAGE_SIZE
            for name in projection.columns:
                encoding = size.encodings.get(name, CompressionMethod.NONE)
                cost += self.constants.compress_cpu(encoding, rows)
        return cost

    # ------------------------------------------------------------------
    def statement_cost(
        self,
        statement: Statement,
        sizes: Mapping[ProjectionDef, ProjectionSize],
    ) -> float:
        """Best-projection cost of one statement.

        SELECTs charge, per referenced table, the cheapest covering
        projection (joins then probe across per-table streams, costed
        with the same probe constant the row model uses); inserts charge
        maintenance on every projection of the target table.
        """
        if isinstance(statement, SelectQuery):
            total = 0.0
            for table in statement.tables:
                best: float | None = None
                for projection, size in sizes.items():
                    if projection.table != table:
                        continue
                    scan = self.scan_cost(statement, table, size)
                    if scan is not None and (
                        best is None or scan.total < best
                    ):
                        best = scan.total
                if best is None:
                    raise OptimizerError(
                        f"no covering projection for table {table!r}; "
                        "configurations must include super projections"
                    )
                total += best
            if statement.joins:
                fact = self.stats.table(statement.root_table)
                rows = fact.column(
                    fact.column_names[0]
                ).n_rows
                total += (
                    self.constants.cpu_join_probe
                    * rows
                    * len(statement.joins)
                )
            return total
        if isinstance(statement, InsertQuery):
            return self.insert_cost(statement, sizes)
        raise OptimizerError(
            f"column-store cost model cannot cost {type(statement).__name__}"
        )

    def workload_cost(
        self,
        workload,
        sizes: Mapping[ProjectionDef, ProjectionSize],
    ) -> float:
        """Weighted workload cost under a projection configuration."""
        return sum(
            ws.weight * self.statement_cost(ws.statement, sizes)
            for ws in workload
        )
