"""Projection definitions: C-Store style sorted column groups.

A projection stores a subset of a table's columns, column-wise, with all
columns ordered by the projection's sort key.  A table needs at least one
*super projection* containing every column; additional projections trade
space for queries that match their sort order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.catalog.table import Table
from repro.compression.base import CompressionMethod
from repro.errors import AdvisorError


@dataclass(frozen=True)
class ProjectionDef:
    """A projection of one table.

    Attributes:
        table: the base table name.
        columns: stored columns, in storage order.
        sort_columns: leading sort key (must be a subset of ``columns``).
    """

    table: str
    columns: tuple[str, ...]
    sort_columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.columns:
            raise AdvisorError(
                f"projection on {self.table!r} needs at least one column"
            )
        if len(set(self.columns)) != len(self.columns):
            raise AdvisorError("duplicate columns in projection")
        missing = [c for c in self.sort_columns if c not in self.columns]
        if missing:
            raise AdvisorError(
                f"sort columns {missing} not stored by the projection"
            )

    @property
    def name(self) -> str:
        cols = "_".join(self.columns)
        order = "_".join(self.sort_columns) or "unsorted"
        return f"proj_{self.table}_{cols}__by_{order}"

    def covers(self, needed: tuple[str, ...]) -> bool:
        """Whether the projection stores every needed column."""
        return all(c in self.columns for c in needed)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class ProjectionSize:
    """Measured or estimated size of a projection.

    Attributes:
        projection: the definition.
        bytes: total bytes over all columns.
        rows: row count.
        column_bytes: per-column byte breakdown (page quantized).
        column_used_bytes: per-column bytes before page quantization.
        encodings: the chosen encoding per column.
        runs: per-column RLE run counts (columns not RLE-encoded omitted).
    """

    projection: ProjectionDef
    bytes: int
    rows: int
    column_bytes: Mapping[str, int] = field(default_factory=dict)
    column_used_bytes: Mapping[str, int] = field(default_factory=dict)
    encodings: Mapping[str, CompressionMethod] = field(default_factory=dict)
    runs: Mapping[str, int] = field(default_factory=dict)

    def bytes_of(self, columns: tuple[str, ...]) -> int:
        """Bytes of a column subset (for pruned scans)."""
        return sum(self.column_bytes[c] for c in columns)


def super_projection(table: Table) -> ProjectionDef:
    """The default all-columns projection, sorted by the primary key
    (or by the first column when the table has no declared key)."""
    sort = table.primary_key or (table.column_names[0],)
    return ProjectionDef(
        table=table.name,
        columns=table.column_names,
        sort_columns=tuple(sort),
    )
