"""Compression-aware projection advisor: DTAc one storage model down.

The advisor answers the open problem of the paper's Section 8 with the
paper's own architecture: per-query candidate generation (which columns,
which sort order), skyline candidate selection over (size, cost), and a
seeded greedy enumeration under a storage budget.  The base
configuration is one super projection per table (every table must stay
scannable); additional projections consume budget.

The ``compression_aware`` flag is this tool's integration/decoupling
switch: when off, candidate projections are *sized and costed* as plain
fixed-width columns (the decoupled tool's view of the world) and only
the final recommendation is re-measured with encodings — reproducing the
paper's core observation, now for sort orders: a tool blind to RLE's
order sensitivity picks the wrong projections.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.catalog.schema import Database
from repro.columnstore.cost import ProjectionCostModel
from repro.columnstore.encodings import COLUMN_ENCODINGS
from repro.columnstore.projection import (
    ProjectionDef,
    ProjectionSize,
    super_projection,
)
from repro.columnstore.sizing import ProjectionSizer
from repro.compression.base import CompressionMethod
from repro.errors import AdvisorError
from repro.optimizer.constants import DEFAULT_COST_CONSTANTS, CostConstants
from repro.stats.column_stats import DatabaseStats
from repro.workload.query import SelectQuery, Workload

#: Fixed-width-only "encoding" set used by the compression-blind variant.
UNCOMPRESSED_ONLY = (CompressionMethod.NONE,)


@dataclass(frozen=True)
class ColumnStoreOptions:
    """Projection-advisor knobs.

    Attributes:
        budget_bytes: budget for projections beyond the super projections.
        compression_aware: size/cost candidates with real encodings
            (True) or as fixed-width columns (False, the decoupled
            strawman).
        max_sort_candidates: sort orders proposed per query and table.
        seed_fanout: greedy multi-start width (as in the row advisor).
        sample_fraction: when set, size candidates from a row sample of
            this fraction instead of the full table (SampleCF mode).
        max_steps: greedy iteration cap.
    """

    budget_bytes: float
    compression_aware: bool = True
    max_sort_candidates: int = 3
    seed_fanout: int = 3
    sample_fraction: float | None = None
    max_steps: int = 40


@dataclass
class ColumnStoreResult:
    """Outcome of a projection-tuning run."""

    projections: list[ProjectionDef]
    sizes: dict[ProjectionDef, ProjectionSize]
    base_cost: float
    final_cost: float
    consumed_bytes: float
    budget_bytes: float
    elapsed_seconds: float
    candidate_count: int
    steps: list[str] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        if self.base_cost <= 0:
            return 0.0
        return 1.0 - self.final_cost / self.base_cost

    @property
    def improvement_pct(self) -> float:
        return 100.0 * self.improvement


class ColumnStoreAdvisor:
    """Recommends projections for a workload under a storage budget."""

    def __init__(
        self,
        database: Database,
        workload: Workload,
        options: ColumnStoreOptions,
        stats: DatabaseStats | None = None,
        constants: CostConstants = DEFAULT_COST_CONSTANTS,
    ) -> None:
        self.database = database
        self.workload = workload
        self.options = options
        self.stats = stats or DatabaseStats(database)
        self.cost_model = ProjectionCostModel(
            database, self.stats, constants
        )
        self._sizers = {
            t.name: ProjectionSizer(t) for t in database.tables
        }
        self._size_cache: dict[tuple[ProjectionDef, bool], ProjectionSize] = {}

    # ------------------------------------------------------------------
    def size_of(
        self, projection: ProjectionDef, aware: bool | None = None
    ) -> ProjectionSize:
        """(Cached) size of a projection, encoded or fixed width."""
        aware = self.options.compression_aware if aware is None else aware
        key = (projection, aware)
        cached = self._size_cache.get(key)
        if cached is not None:
            return cached
        sizer = self._sizers[projection.table]
        encodings = COLUMN_ENCODINGS if aware else UNCOMPRESSED_ONLY
        if self.options.sample_fraction is not None:
            size = sizer.estimate_from_sample(
                projection, self.options.sample_fraction,
                encodings=encodings,
            )
        else:
            size = sizer.measure(projection, encodings=encodings)
        self._size_cache[key] = size
        return size

    # ------------------------------------------------------------------
    def candidate_projections(self) -> list[ProjectionDef]:
        """Per-query candidates: the referenced columns of each table
        under a few sort orders (range/equality predicate columns and
        group-by columns lead; the paper's sort-order sensitivity makes
        these the interesting axes)."""
        out: list[ProjectionDef] = []
        seen: set[ProjectionDef] = set()
        for ws in self.workload.queries:
            query = ws.statement
            if not isinstance(query, SelectQuery):
                continue
            for table in query.tables:
                tbl = self.database.table(table)
                needed = query.columns_of_table(self.database, table)
                if not needed:
                    continue
                sort_leads: list[str] = []
                for p in query.predicates_of_table(self.database, table):
                    for c in p.columns():
                        if c not in sort_leads:
                            sort_leads.append(c)
                for c in query.group_by:
                    if tbl.has_column(c) and c not in sort_leads:
                        sort_leads.append(c)
                if not sort_leads:
                    sort_leads = [needed[0]]
                for lead in sort_leads[: self.options.max_sort_candidates]:
                    rest = [c for c in needed if c != lead]
                    projection = ProjectionDef(
                        table=table,
                        columns=(lead, *rest),
                        sort_columns=(lead,),
                    )
                    if projection not in seen:
                        seen.add(projection)
                        out.append(projection)
        return out

    # ------------------------------------------------------------------
    def _config_sizes(
        self, projections: frozenset[ProjectionDef], aware: bool
    ) -> dict[ProjectionDef, ProjectionSize]:
        return {p: self.size_of(p, aware) for p in projections}

    def _workload_cost(
        self, projections: frozenset[ProjectionDef], aware: bool
    ) -> float:
        return self.cost_model.workload_cost(
            self.workload, self._config_sizes(projections, aware)
        )

    def _consumed(
        self, projections: frozenset[ProjectionDef],
        base: frozenset[ProjectionDef], aware: bool
    ) -> float:
        return sum(
            self.size_of(p, aware).bytes
            for p in projections
            if p not in base
        )

    # ------------------------------------------------------------------
    def run(self) -> ColumnStoreResult:
        """Greedy (multi-start) projection selection under the budget."""
        start = time.perf_counter()
        options = self.options
        aware = options.compression_aware
        base = frozenset(
            super_projection(t) for t in self.database.tables
        )
        # The base is always measured compression-aware: it physically
        # exists; only *candidate reasoning* is blinded in the ablation.
        base_cost = self._workload_cost(base, True)
        candidates = self.candidate_projections()

        def search_cost(config: frozenset[ProjectionDef]) -> float:
            return self._workload_cost(config, aware)

        def fits(config: frozenset[ProjectionDef]) -> bool:
            return (
                self._consumed(config, base, aware)
                <= options.budget_bytes + 1e-6
            )

        # Seeded greedy, as in the row-store enumeration.
        first_moves: list[tuple[float, ProjectionDef]] = []
        blind_base_cost = search_cost(base)
        for p in candidates:
            config = base | {p}
            if not fits(config):
                continue
            cost = search_cost(config)
            if cost < blind_base_cost:
                first_moves.append((cost, p))
        first_moves.sort(key=lambda t: t[0])

        best_config = base
        best_cost = blind_base_cost
        steps: list[str] = []
        seeds = first_moves[: max(1, options.seed_fanout)] or []
        for seed_cost, seed in seeds or [(blind_base_cost, None)]:
            config = base if seed is None else base | {seed}
            cost = seed_cost
            local_steps = (
                [] if seed is None else [f"seed {seed.name}"]
            )
            for _step in range(options.max_steps):
                move = None
                for p in candidates:
                    if p in config:
                        continue
                    cand = config | {p}
                    if not fits(cand):
                        continue
                    cand_cost = search_cost(cand)
                    if cand_cost < cost - 1e-9 and (
                        move is None or cand_cost < move[0]
                    ):
                        move = (cand_cost, cand, p)
                if move is None:
                    break
                cost, config = move[0], move[1]
                local_steps.append(f"add {move[2].name}")
            if cost < best_cost:
                best_config, best_cost, steps = config, cost, local_steps

        # Final accounting is always compression aware: the storage
        # engine encodes whatever the tool chose (this is where the
        # blind variant discovers its recommendation's true size/cost —
        # and pays for any budget overrun by dropping projections).
        final = self._enforce_budget(best_config, base)
        sizes = self._config_sizes(final, True)
        final_cost = self.cost_model.workload_cost(self.workload, sizes)
        return ColumnStoreResult(
            projections=sorted(final, key=lambda p: p.name),
            sizes=sizes,
            base_cost=base_cost,
            final_cost=final_cost,
            consumed_bytes=self._consumed(final, base, True),
            budget_bytes=options.budget_bytes,
            elapsed_seconds=time.perf_counter() - start,
            candidate_count=len(candidates),
            steps=steps,
        )

    def _enforce_budget(
        self,
        config: frozenset[ProjectionDef],
        base: frozenset[ProjectionDef],
    ) -> frozenset[ProjectionDef]:
        """Drop the largest extra projections until the *true* encoded
        sizes fit (only the blind variant ever needs this)."""
        current = config
        for _ in range(len(config)):
            if (
                self._consumed(current, base, True)
                <= self.options.budget_bytes + 1e-6
            ):
                return current
            extras = [p for p in current if p not in base]
            if not extras:
                return current
            largest = max(
                extras, key=lambda p: self.size_of(p, True).bytes
            )
            current = frozenset(p for p in current if p != largest)
        return current


def tune_columnstore(
    database: Database,
    workload: Workload,
    budget_bytes: float,
    compression_aware: bool = True,
    **extra,
) -> ColumnStoreResult:
    """One-call projection tuning."""
    options = ColumnStoreOptions(
        budget_bytes=budget_bytes,
        compression_aware=compression_aware,
        **extra,
    )
    if budget_bytes < 0:
        raise AdvisorError("budget must be non-negative")
    return ColumnStoreAdvisor(database, workload, options).run()
