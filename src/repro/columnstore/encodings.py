"""Per-column encodings and their measured sizes.

A column store encodes each column independently; the profitable encoding
depends on the column's data *and* on the projection's sort order (RLE
and delta collapse when the column is sorted or correlates with the sort
key).  Sizes here are measured by feeding real stripped bytes through the
library's incremental codecs and packing 8 KiB pages — the same
ground-truth discipline the row-store side uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.catalog.column import Column
from repro.compression.base import CompressionMethod
from repro.compression.packages import make_codec
from repro.errors import CompressionError
from repro.storage.page import pack_columns

#: Encodings a column-store column may use.  GLOBAL_DICT charges for its
#: dictionary; BITPACK models code columns whose decode needs no stored
#: dictionary (ordinals); NONE is the fixed-width fallback.
COLUMN_ENCODINGS: tuple[CompressionMethod, ...] = (
    CompressionMethod.NONE,
    CompressionMethod.RLE,
    CompressionMethod.DELTA,
    CompressionMethod.BITPACK,
    CompressionMethod.GLOBAL_DICT,
)


@dataclass(frozen=True)
class EncodedColumnSize:
    """Measured size of one column under one encoding.

    Attributes:
        column: column name.
        encoding: the compression method applied.
        pages: 8 KiB pages the encoded column occupies.
        bytes: total bytes (pages * 8192 + index-level extras).
        used_bytes: bytes the codec actually produced, before page
            quantization (what sampling scales by).
        rows: encoded value count.
        runs: number of RLE runs (None for non-RLE encodings); feeds both
            the run-length statistics of the deduction and the
            operate-on-runs CPU discount of the cost model.
    """

    column: str
    encoding: CompressionMethod
    pages: int
    bytes: int
    used_bytes: int
    rows: int
    runs: int | None = None


def measure_column(
    column: Column,
    stripped: Sequence[bytes],
    encoding: CompressionMethod,
    n_distinct: int | None = None,
    dictionary_bytes: int = 0,
) -> EncodedColumnSize:
    """Measure one column under ``encoding`` in the given row order.

    Args:
        column: the column definition.
        stripped: padding-stripped serialized values, in projection order.
        encoding: one of :data:`COLUMN_ENCODINGS`.
        n_distinct: column-wide distinct count (BITPACK / GLOBAL_DICT).
        dictionary_bytes: stored-dictionary overhead for GLOBAL_DICT.
    """
    if encoding not in COLUMN_ENCODINGS:
        raise CompressionError(
            f"{encoding} is not a column-store encoding"
        )
    codec = make_codec(encoding, column, n_distinct)
    extra = (
        dictionary_bytes
        if encoding is CompressionMethod.GLOBAL_DICT
        else 0
    )
    runs: int | None = None
    if encoding is CompressionMethod.RLE:
        # Count runs over the full column (not per page): the scan-time
        # CPU discount operates on the column's logical run stream.
        runs = _count_runs(stripped)
    packed = pack_columns(
        [list(stripped)], [codec], extra_bytes=extra, row_overhead=0
    )
    return EncodedColumnSize(
        column=column.name,
        encoding=encoding,
        pages=packed.pages,
        bytes=packed.total_bytes,
        used_bytes=packed.used_bytes + extra,
        rows=packed.rows,
        runs=runs,
    )


def best_encoding(
    column: Column,
    stripped: Sequence[bytes],
    n_distinct: int,
    dictionary_bytes: int,
    encodings: Sequence[CompressionMethod] = COLUMN_ENCODINGS,
) -> EncodedColumnSize:
    """The smallest measured encoding for a column in a given order."""
    results = [
        measure_column(column, stripped, e, n_distinct, dictionary_bytes)
        for e in encodings
    ]
    # Page-quantized bytes decide; pre-quantization bytes break ties so
    # a dominant encoding still wins inside a single shared page.
    return min(
        results, key=lambda r: (r.bytes, r.used_bytes, r.encoding.value)
    )


def _count_runs(stripped: Sequence[bytes]) -> int:
    runs = 0
    last: bytes | None = None
    first = True
    for value in stripped:
        if first or value != last:
            runs += 1
            last = value
            first = False
    return runs
