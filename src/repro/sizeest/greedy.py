"""The paper's greedy graph-search algorithm (Section 5.2).

Processes target indexes from narrow to wide and, for each, prefers (a) a
deduction whose children are already decided, then (b) a deduction whose
children can be sampled for less than sampling the target itself, then
(c) sampling the target.  Runs in seconds for hundreds of indexes where
the exact algorithm (Appendix D, :mod:`repro.sizeest.optimal`) takes
exponential time.
"""

from __future__ import annotations

from repro.sizeest.graph import NodeState
from repro.sizeest.plan import EstimationPlan, PlanEvaluator, finalize_plan


def plan_greedy(
    evaluator: PlanEvaluator,
    e: float,
    q: float,
) -> EstimationPlan:
    """Assign SAMPLED/DEDUCED states greedily (paper's pseudocode).

    Args:
        evaluator: wraps the graph (with targets and existing indexes
            already added), the error model and the sampling fraction.
        e: tolerable error ratio.
        q: required probability that the error stays within ``e``.
    """
    graph = evaluator.graph
    # Line 3: iterate targets from narrower to wider (ties: stable order).
    targets = sorted(
        graph.targets(),
        key=lambda n: (n.width, n.key[0], n.key[1], n.key[2],
                       n.key[3].value),
    )
    for node in targets:
        if node.state is not NodeState.NONE:
            continue  # decided earlier, e.g. sampled as someone's child
        # Lines 4-5: materialize child deductions and their children.
        deductions = graph.expand_node(node.key)

        # Lines 6-7: a ready deduction (all children decided) that meets
        # the accuracy constraint; prefer the highest probability.
        best_ready = None
        best_ready_prob = 0.0
        for ded in deductions:
            if not all(graph.decided(c) for c in ded.children):
                continue
            prob = evaluator.deduced_error(ded).prob_within(e)
            if prob >= q and prob > best_ready_prob:
                best_ready, best_ready_prob = ded, prob
        if best_ready is not None:
            node.state = NodeState.DEDUCED
            node.chosen_deduction = best_ready
            continue

        # Lines 8-9: enable a deduction by sampling its undecided children
        # if that costs less than sampling this node; prefer least cost.
        own_cost = evaluator.sampling_cost(node.key)
        best_enable = None
        best_enable_cost = own_cost
        for ded in deductions:
            undecided = [c for c in ded.children if not graph.decided(c)]
            if not undecided:
                continue
            cost = sum(evaluator.sampling_cost(c) for c in undecided)
            if cost >= best_enable_cost:
                continue
            # Tentatively sample the children to evaluate the error.
            for c in undecided:
                graph.nodes[c].state = NodeState.SAMPLED
            prob = evaluator.deduced_error(ded).prob_within(e)
            for c in undecided:
                graph.nodes[c].state = NodeState.NONE
            if prob >= q:
                best_enable, best_enable_cost = (ded, undecided), cost
        if best_enable is not None:
            ded, undecided = best_enable
            for c in undecided:
                graph.nodes[c].state = NodeState.SAMPLED
            node.state = NodeState.DEDUCED
            node.chosen_deduction = ded
            continue

        # Line 11: fall back to SampleCF on the node itself.
        node.state = NodeState.SAMPLED

    # Lines 13-14: prune helper nodes that ended up unused, then total up.
    return finalize_plan(evaluator, e, q)


def plan_all_sampled(
    evaluator: PlanEvaluator,
    e: float,
    q: float,
) -> EstimationPlan:
    """The "All" baseline of Table 4: SampleCF on every target."""
    graph = evaluator.graph
    for node in graph.targets():
        if node.state is NodeState.NONE:
            node.state = NodeState.SAMPLED
    return finalize_plan(evaluator, e, q)
