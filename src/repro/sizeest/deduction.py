"""Size deduction: infer a compressed index's size from other indexes
whose sizes are known (Section 4.2) — at virtually zero cost.

Three deductions are implemented:

* **ColSet** (ORD-IND): two indexes over the same column *set* compress to
  the same size regardless of key order.
* **ColExt, order-independent**: the size reduction achieved by
  compressing a composite index equals the sum of its parts' reductions:
  ``Size(C_AB) = Size(AB) - R(A) - R(B)``.
* **ColExt, order-dependent**: parts' reductions are scaled by the
  fragmentation factor ``F(I, Y) = (T - DV(I, Y)) / T`` built from average
  run lengths ``L`` and per-page distinct value counts ``DV`` exactly as
  the paper derives them; multi-column distinct counts come from the
  table sample via the Adaptive Estimator.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.catalog.schema import Database
from repro.errors import SizeEstimationError
from repro.physical.index_def import IndexDef
from repro.sampling.sample_manager import SampleManager
from repro.sizeest.analytic import AnalyticSizer, avg_rid_stripped_len
from repro.sizeest.samplecf import SizeEstimate
from repro.stats.distinct import adaptive_estimator, frequency_statistics
from repro.storage.page import PAGE_CAPACITY, PAGE_SIZE, ROW_OVERHEAD
from repro.storage.rowcache import RID_COLUMN


class MultiColumnDistinct:
    """Distinct-count estimates for column *combinations* of a table.

    Single-column distinct counts live in the catalog statistics, but the
    ORD-DEP deduction needs |AB|-style combination cardinalities.  These
    are estimated from the amortized table sample with the Adaptive
    Estimator (no index build, no sort — effectively free)."""

    def __init__(self, database: Database, manager: SampleManager,
                 fraction: float = 0.01) -> None:
        self.database = database
        self.manager = manager
        self.fraction = fraction
        self._cache: dict[tuple, float] = {}

    def estimate(self, table_name: str, columns: Sequence[str]) -> float:
        key = (table_name, tuple(columns))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        table = self.database.table(table_name)
        n = table.num_rows
        sample = self.manager.table_sample(table_name, self.fraction).table
        r = sample.num_rows
        if r == 0 or n == 0:
            self._cache[key] = 1.0
            return 1.0
        counts: dict[tuple, int] = {}
        for row in sample.iter_rows(columns):
            counts[row] = counts.get(row, 0) + 1
        d = len(counts)
        freq = frequency_statistics(list(counts.values()))
        est = max(1.0, adaptive_estimator(freq, d, r, max(n, r)))
        self._cache[key] = est
        return est


class DeductionEngine:
    """Computes deduced size estimates given children estimates."""

    def __init__(
        self,
        database: Database,
        sizer: AnalyticSizer,
        distinct: MultiColumnDistinct,
    ) -> None:
        self.database = database
        self.sizer = sizer
        self.distinct = distinct

    # ------------------------------------------------------------------
    # ColSet
    # ------------------------------------------------------------------
    def colset(self, target: IndexDef, source: SizeEstimate) -> float:
        """Deduced bytes of ``target`` from an index on the same column
        set compressed with the same ORD-IND method."""
        if target.method.is_order_dependent:
            raise SizeEstimationError("ColSet applies to ORD-IND only")
        if source.index.method is not target.method:
            raise SizeEstimationError("ColSet requires identical methods")
        return source.est_bytes

    # ------------------------------------------------------------------
    # ColExt
    # ------------------------------------------------------------------
    def colext(
        self,
        target: IndexDef,
        parts: Sequence[SizeEstimate],
    ) -> float:
        """Deduced bytes of ``target`` from estimates of indexes over the
        segments of its column sequence."""
        u_target = self.sizer.uncompressed_bytes(target)
        total_reduction = 0.0
        for part in parts:
            u_part = self.sizer.uncompressed_bytes(part.index)
            reduction = max(0.0, u_part - part.est_bytes)
            if target.method.is_order_dependent:
                # PAGE-style packages contain an order-independent (NULL
                # suppression) share that survives any fragmentation; only
                # the order-dependent share gets the F-ratio penalty.
                ns_share = min(
                    reduction, self.sizer.ns_reduction_bytes(part.index)
                )
                dep_share = reduction - ns_share
                scale = self._fragmentation_scale(target, part.index)
                reduction = ns_share + dep_share * scale
            total_reduction += reduction
        total_reduction -= self._rid_overcount(target, parts)
        est = u_target - total_reduction
        # A size can never deduce above uncompressed, nor below one page
        # plus one byte per row (no codec stores a row for free); parts'
        # own page quantization can otherwise stack reductions into a
        # nonsensical near-zero deduction.
        rows = self.sizer.estimated_rows(target)
        floor = max(float(PAGE_SIZE), rows)
        return min(u_target, max(floor, est))

    # ------------------------------------------------------------------
    def _rid_overcount(self, target: IndexDef,
                       parts: Sequence[SizeEstimate]) -> float:
        """Each secondary-index part carries its own row locator whose
        compression savings would otherwise be counted ``a`` times."""
        secondary_parts = [
            p for p in parts if p.index.kind.name == "SECONDARY"
        ]
        extra = len(secondary_parts) - (
            1 if target.kind.name == "SECONDARY" else 0
        )
        if extra <= 0:
            return 0.0
        rows = self.sizer.estimated_rows(target)
        avg_rid = avg_rid_stripped_len(int(rows))
        per_row_saving = RID_COLUMN.width - (1 + avg_rid)
        return extra * rows * max(0.0, per_row_saving)

    # ------------------------------------------------------------------
    # ORD-DEP fragmentation machinery (the paper's F / DV / L)
    # ------------------------------------------------------------------
    def _tuples_per_page(self, index: IndexDef) -> float:
        per_row = self.sizer.row_width(index) + ROW_OVERHEAD
        return max(1.0, PAGE_CAPACITY / per_row)

    def _run_length(self, index: IndexDef, column: str) -> float:
        """L(I, Y): average run length of ``column`` in ``index``.

        For an index sorted by (c1..ck), the run length of cj is
        n / |c1..cj| — consecutive equal values survive as long as the
        leading prefix does not fragment them.
        """
        seq = index.column_sequence
        pos = seq.index(column)
        prefix = seq[: pos + 1]
        n = max(1.0, self.sizer.estimated_rows(index))
        d_prefix = self.distinct.estimate(index.table, prefix)
        return max(1.0, n / max(1.0, d_prefix))

    def _distinct_per_page(self, index: IndexDef, column: str) -> float:
        """DV(I, Y) per the paper: T/L when runs are longer than one
        tuple, else the expected number of distinct sides of a |Y|-sided
        die thrown T times."""
        t = self._tuples_per_page(index)
        run = self._run_length(index, column)
        if run > 1.0:
            return min(t, t / run)
        y = self.distinct.estimate(index.table, (column,))
        return y * (1.0 - math.pow(1.0 - 1.0 / y, t))

    def _fragmentation(self, index: IndexDef, column: str) -> float:
        """F(I, Y) = (T - DV) / T: fraction of values on a page that a
        local dictionary can replace."""
        t = self._tuples_per_page(index)
        dv = self._distinct_per_page(index, column)
        return max(0.0, min(1.0, (t - dv) / t))

    def _fragmentation_scale(self, target: IndexDef,
                             part: IndexDef) -> float:
        """Mean over the part's columns of F(target, Y) / F(part, Y) —
        how much of the part's measured reduction survives once its
        columns are fragmented by the target's leading key."""
        ratios: list[float] = []
        for column in part.column_sequence:
            if column == RID_COLUMN.name:
                continue
            f_part = self._fragmentation(part, column)
            f_target = self._fragmentation(target, column)
            if f_part <= 1e-9:
                ratios.append(1.0 if f_target <= 1e-9 else 1.0)
            else:
                ratios.append(min(2.0, f_target / f_part))
        return sum(ratios) / len(ratios) if ratios else 1.0
