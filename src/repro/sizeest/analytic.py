"""Analytic (statistics-only) sizing of *uncompressed* structures.

For an uncompressed index the size follows from the row count and the
fixed row width (Section 1: "straightforward once the number of rows and
average row length is known").  This module provides those numbers for
plain, partial and MV indexes; compressed sizes need SampleCF/deduction.
"""

from __future__ import annotations

from repro.catalog.schema import Database
from repro.errors import SizeEstimationError
from repro.physical.index_def import IndexDef
from repro.sampling.sample_manager import SampleManager
from repro.stats.column_stats import DatabaseStats
from repro.stats.selectivity import conjunction_selectivity
from repro.storage.index_build import IndexKind
from repro.storage.page import (
    PAGE_CAPACITY,
    PAGE_SIZE,
    ROW_OVERHEAD,
    btree_overhead_pages,
)
from repro.storage.rowcache import RID_COLUMN


def avg_rid_stripped_len(rows: int) -> float:
    """Average padding-stripped byte length of row ids 0..rows-1."""
    if rows <= 1:
        return 1.0
    total = 0.0
    covered = 0
    width = 1
    while covered < rows:
        hi = min(rows, 256 ** width)
        total += (hi - covered) * width
        covered = hi
        width += 1
    return total / rows


class AnalyticSizer:
    """Row counts, row widths and uncompressed sizes for index defs."""

    def __init__(
        self,
        database: Database,
        stats: DatabaseStats,
        manager: SampleManager,
        mv_fraction: float = 0.01,
    ) -> None:
        self.database = database
        self.stats = stats
        self.manager = manager
        self.mv_fraction = mv_fraction

    # ------------------------------------------------------------------
    def estimated_rows(self, index: IndexDef) -> float:
        """Estimated number of entries in the structure."""
        if index.is_mv_index:
            return self.manager.mv_sample(index.mv, self.mv_fraction).est_rows
        table_stats = self.stats.table(index.table)
        rows = float(table_stats.n_rows)
        if index.is_partial:
            rows *= conjunction_selectivity(table_stats, (index.filter,))
        return rows

    # ------------------------------------------------------------------
    def stored_column_widths(self, index: IndexDef) -> list[int]:
        """Byte widths of the columns the structure stores, leaf order."""
        if index.is_mv_index:
            all_cols = dict(index.mv.storage_columns(self.database))
            if index.kind is IndexKind.SECONDARY:
                names = list(index.column_sequence)
                widths = [all_cols[n].width for n in names]
                widths.append(RID_COLUMN.width)
                return widths
            return [dtype.width for dtype in all_cols.values()]
        table = self.database.table(index.table)
        if index.kind in (IndexKind.HEAP, IndexKind.CLUSTERED):
            return [c.width for c in table.columns]
        widths = [table.column(n).width for n in index.column_sequence]
        widths.append(RID_COLUMN.width)
        return widths

    def row_width(self, index: IndexDef) -> int:
        return sum(self.stored_column_widths(index))

    def key_width(self, index: IndexDef) -> int:
        if index.kind is IndexKind.HEAP:
            return 8
        if index.is_mv_index:
            all_cols = dict(index.mv.storage_columns(self.database))
            return sum(all_cols[n].width for n in index.key_columns) + 8
        table = self.database.table(index.table)
        return sum(table.column(n).width for n in index.key_columns) + 8

    # ------------------------------------------------------------------
    def uncompressed_leaf_pages(self, index: IndexDef) -> float:
        rows = self.estimated_rows(index)
        per_row = self.row_width(index) + ROW_OVERHEAD
        if per_row > PAGE_CAPACITY:
            raise SizeEstimationError(
                f"row of {per_row} bytes exceeds page capacity"
            )
        rows_per_page = PAGE_CAPACITY // per_row
        return rows / rows_per_page

    def uncompressed_pages(self, index: IndexDef) -> float:
        # Deliberately fractional: the deduction engine differences these
        # values, and whole-page rounding would swamp small reductions.
        # Consumers that need storage-accounting sizes apply
        # :func:`repro.storage.page.quantize_bytes` at their boundary.
        leaf = self.uncompressed_leaf_pages(index)
        if index.kind is IndexKind.HEAP:
            return leaf
        interior = btree_overhead_pages(
            max(1, int(round(leaf))), self.key_width(index)
        )
        return leaf + interior

    def uncompressed_bytes(self, index: IndexDef) -> float:
        return self.uncompressed_pages(index) * PAGE_SIZE

    # ------------------------------------------------------------------
    def ns_reduction_bytes(self, index: IndexDef) -> float:
        """Analytic size reduction NULL suppression alone would achieve —
        the order-*independent* share of any compression package's
        reduction (plain table indexes only; needs column statistics)."""
        if index.is_mv_index:
            raise SizeEstimationError(
                "ns_reduction_bytes supports plain table indexes only"
            )
        table = self.database.table(index.table)
        stats = self.stats.table(index.table)
        rows = self.estimated_rows(index)
        if index.kind is IndexKind.SECONDARY:
            names = list(index.column_sequence)
        else:
            names = list(table.column_names)
        ns_row = 0.0
        raw_row = 0.0
        for name in names:
            col = table.column(name)
            ns_row += 1.0 + stats.column(name).avg_stripped_len
            raw_row += col.width
        if index.kind is IndexKind.SECONDARY:
            ns_row += 1.0 + avg_rid_stripped_len(int(rows))
            raw_row += RID_COLUMN.width
        return max(0.0, rows * (raw_row - ns_row))

    # ------------------------------------------------------------------
    def samplecf_cost(self, index: IndexDef, fraction: float) -> float:
        """Cost of a SampleCF run, as Section 5.1 defines it: the number
        of (uncompressed) data pages of the index built on the sample."""
        fraction = self.manager.effective_fraction(index.table if not index.is_mv_index
                                                   else index.mv.fact_table, fraction)
        return max(1.0, self.uncompressed_leaf_pages(index) * fraction)
