"""SampleCF: sampling-based compressed-size estimation (Sections 2.2/4.1).

``SampleCF(I)`` builds index ``I`` on a (cached, amortized) sample, both
uncompressed and compressed, and returns the ratio as the compression
fraction.  The full compressed size estimate is then
``CF * analytic uncompressed size``.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass

from repro.compression.base import CompressionMethod
from repro.physical.index_def import IndexDef
from repro.sampling.sample_manager import SampleManager
from repro.sizeest.analytic import AnalyticSizer, avg_rid_stripped_len
from repro.sizeest.error_model import ErrorModel, ErrorRV
from repro.storage.index_build import IndexKind, measure_structure
from repro.storage.page import PAGE_CAPACITY, PAGE_SIZE, btree_overhead_pages
from repro.storage.rowcache import SerializedTable


def extrapolate_size(
    rows: float,
    bytes_per_row: float,
    key_width: int,
    is_heap: bool = False,
) -> float:
    """Full-index size from a measured per-row byte footprint.

    Packs ``rows`` rows of ``bytes_per_row`` bytes into pages the same way
    the storage layer would, then adds B-tree interior pages.
    """
    if rows <= 0:
        return 0.0
    rows_per_page = max(1.0, PAGE_CAPACITY // max(1.0, bytes_per_row))
    leaf_pages = max(1, -(-int(round(rows)) // int(rows_per_page)))
    interior = 0 if is_heap else btree_overhead_pages(leaf_pages, key_width)
    return float((leaf_pages + interior) * PAGE_SIZE)


@dataclass(frozen=True)
class SizeEstimate:
    """An estimated compressed-index size.

    Attributes:
        index: what was estimated.
        est_bytes: estimated full-size bytes.
        compression_fraction: estimated CF (compressed/uncompressed).
        source: 'exact' | 'samplecf' | 'colset' | 'colext'.
        error: the composed error RV of this estimate.
        cost: estimation cost charged (uncompressed sample pages indexed;
            0 for deductions and exact sizes).
        fraction: sampling fraction used (0 for deductions/exact).
    """

    index: IndexDef
    est_bytes: float
    compression_fraction: float
    source: str
    error: ErrorRV
    cost: float
    fraction: float = 0.0


def index_category(index: IndexDef) -> str:
    """Fig 11 category of an index: 'mv' / 'partial' / 'table'."""
    if index.is_mv_index:
        return "mv"
    if index.is_partial:
        return "partial"
    return "table"


class SampleCFRunner:
    """Executes SampleCF runs with timing instrumentation."""

    def __init__(
        self,
        manager: SampleManager,
        sizer: AnalyticSizer,
        error_model: ErrorModel,
    ) -> None:
        self.manager = manager
        self.sizer = sizer
        self.error_model = error_model
        #: seconds spent building indexes on samples, per category
        self.timings: dict[str, float] = defaultdict(float)
        self.run_count = 0
        self._mv_serialized: dict = {}

    # ------------------------------------------------------------------
    def _sample_for(self, index: IndexDef, fraction: float) -> SerializedTable:
        if index.is_mv_index:
            mv_sample = self.manager.mv_sample(index.mv, fraction)
            key = (index.mv, round(mv_sample.fraction, 6))
            cached = self._mv_serialized.get(key)
            if cached is None:
                cached = SerializedTable(mv_sample.table)
                self._mv_serialized[key] = cached
            return cached
        if index.is_partial:
            return self.manager.filtered_sample(
                index.table, (index.filter,), fraction
            )
        return self.manager.table_sample(index.table, fraction)

    # ------------------------------------------------------------------
    def measure_bytes_per_row(
        self, index: IndexDef, fraction: float
    ) -> tuple[float, float]:
        """Build the index on its sample, both compressed and plain.

        Returns ``(compressed bytes/row, index-level extra bytes)`` —
        per-row byte footprints transfer from sample to full data (page
        counts do not: a 1.5k-row sample quantizes to a handful of pages).
        """
        sample = self._sample_for(index, fraction)
        start = time.perf_counter()
        try:
            if sample.table.num_rows == 0:
                return float(self.sizer.row_width(index)), 0.0
            compressed = measure_structure(
                sample, index.kind, index.key_columns,
                index.included_columns, index.method,
            )
            if compressed.rows == 0:
                return float(self.sizer.row_width(index)), 0.0
            bytes_per_row = compressed.used_bytes / compressed.rows
            return bytes_per_row, float(compressed.extra_bytes)
        finally:
            self.timings[index_category(index)] += (
                time.perf_counter() - start
            )
            self.run_count += 1

    def measure_cf(self, index: IndexDef, fraction: float) -> float:
        """Measured compression fraction (estimated full compressed size
        over analytic uncompressed size)."""
        est = self.run(index, fraction)
        return est.compression_fraction

    def _rid_correction(self, index: IndexDef, sample_rows: int,
                        full_rows: float) -> float:
        """Secondary-index row locators on a sample are drawn from a much
        smaller id domain than on the full table, so their suppressed
        width under-represents the real one; correct analytically."""
        if index.kind is not IndexKind.SECONDARY or not index.method.is_compressed:
            return 0.0
        if index.method is CompressionMethod.GLOBAL_DICT:
            return 0.0
        return avg_rid_stripped_len(int(full_rows)) - avg_rid_stripped_len(
            max(1, sample_rows)
        )

    def run(self, index: IndexDef, fraction: float) -> SizeEstimate:
        """Full SampleCF estimate of a compressed index's size."""
        bytes_per_row, extra = self.measure_bytes_per_row(index, fraction)
        sample_rows = self._sample_for(index, fraction).table.num_rows
        rows = self.sizer.estimated_rows(index)
        bytes_per_row += self._rid_correction(index, sample_rows, rows)
        est_bytes = extrapolate_size(
            rows, bytes_per_row, self.sizer.key_width(index),
            is_heap=index.kind is IndexKind.HEAP,
        ) + extra
        uncompressed = self.sizer.uncompressed_bytes(index)
        cf = est_bytes / uncompressed if uncompressed else 1.0
        scope = index.mv.fact_table if index.is_mv_index else index.table
        effective = self.manager.effective_fraction(scope, fraction)
        return SizeEstimate(
            index=index,
            est_bytes=est_bytes,
            compression_fraction=cf,
            source="samplecf",
            error=self.error_model.samplecf_rv(index.method, effective),
            cost=self.sizer.samplecf_cost(index, fraction),
            fraction=effective,
        )

    def reset_timings(self) -> None:
        self.timings.clear()
        self.run_count = 0
