"""SizeEstimator: the public facade of the size-estimation framework.

The advisor hands it batches of candidate compressed indexes; it plans a
SampleCF/deduction strategy under an (e, q) accuracy constraint, executes
the plan, and caches the resulting :class:`SizeEstimate` objects.  Partial
and MV indexes are estimated by SampleCF on filtered/MV samples directly
(Appendix B); plain table indexes flow through the deduction graph.

``use_deduction=False`` reproduces the paper's "DTAc w/o deduction"
baseline from Figure 11 (every index pays a SampleCF run).
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Iterable, Sequence

from repro.catalog.schema import Database
from repro.physical.index_def import IndexDef
from repro.sampling.sample_manager import DEFAULT_FRACTIONS, SampleManager
from repro.sizeest.analytic import AnalyticSizer
from repro.sizeest.deduction import DeductionEngine, MultiColumnDistinct
from repro.sizeest.error_model import DEFAULT_ERROR_MODEL, ErrorModel, ErrorRV
from repro.sizeest.graph import node_key
from repro.sizeest.planner import choose_plan, execute_plan
from repro.sizeest.samplecf import SampleCFRunner, SizeEstimate, index_category
from repro.stats.column_stats import DatabaseStats
from repro.storage.index_build import measure_structure
from repro.storage.rowcache import SerializedTable


class SizeEstimator:
    """Estimates (compressed) index sizes with tunable accuracy.

    Args:
        database: the database the indexes live on.
        stats: per-table statistics (built lazily when omitted).
        manager: the shared sample manager.
        error_model: fitted error coefficients.
        e, q: default accuracy constraint for batch planning.
        default_fraction: sampling fraction for one-off estimates.
        use_deduction: disable to force SampleCF on everything.
    """

    def __init__(
        self,
        database: Database,
        stats: DatabaseStats | None = None,
        manager: SampleManager | None = None,
        error_model: ErrorModel = DEFAULT_ERROR_MODEL,
        e: float = 0.5,
        q: float = 0.9,
        default_fraction: float = 0.05,
        fractions: Sequence[float] = DEFAULT_FRACTIONS,
        use_deduction: bool = True,
    ) -> None:
        self.database = database
        self.stats = stats or DatabaseStats(database)
        self.manager = manager or SampleManager(database)
        self.error_model = error_model
        self.e = e
        self.q = q
        self.default_fraction = default_fraction
        self.fractions = tuple(fractions)
        self.use_deduction = use_deduction

        self.sizer = AnalyticSizer(database, self.stats, self.manager)
        self.runner = SampleCFRunner(self.manager, self.sizer, error_model)
        self.distinct = MultiColumnDistinct(database, self.manager)
        self.deduction = DeductionEngine(database, self.sizer, self.distinct)

        self._cache: dict[IndexDef, SizeEstimate] = {}
        self._existing: list[IndexDef] = []
        self._full_serialized: dict[str, SerializedTable] = {}
        #: planning/estimation wall-clock per category (Fig 11)
        self.timings: dict[str, float] = defaultdict(float)

    # ------------------------------------------------------------------
    def register_existing(self, indexes: Iterable[IndexDef]) -> None:
        """Declare indexes that already exist (exact size, zero cost)."""
        for index in indexes:
            self._existing.append(index)
            self._cache[index] = SizeEstimate(
                index=index,
                est_bytes=self.true_size(index),
                compression_fraction=1.0,
                source="exact",
                error=ErrorRV.exact(),
                cost=0.0,
            )

    # ------------------------------------------------------------------
    def uncompressed_bytes(self, index: IndexDef) -> float:
        """Analytic size of the uncompressed variant (always cheap)."""
        return self.sizer.uncompressed_bytes(index.uncompressed())

    def estimate(self, index: IndexDef) -> SizeEstimate:
        """Estimated size of one index (cached)."""
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        if not index.method.is_compressed:
            est = SizeEstimate(
                index=index,
                est_bytes=self.sizer.uncompressed_bytes(index),
                compression_fraction=1.0,
                source="exact",
                error=ErrorRV.exact(),
                cost=0.0,
            )
        else:
            self.estimate_many([index])
            return self._cache[index]
        self._cache[index] = est
        return est

    def estimate_many(
        self,
        indexes: Sequence[IndexDef],
        e: float | None = None,
        q: float | None = None,
    ) -> dict[IndexDef, SizeEstimate]:
        """Plan + execute size estimation for a batch of indexes."""
        e = self.e if e is None else e
        q = self.q if q is None else q
        pending = [
            ix for ix in indexes
            if ix not in self._cache and ix.method.is_compressed
        ]
        for ix in indexes:
            if ix not in self._cache and not ix.method.is_compressed:
                self.estimate(ix)

        # Partial and MV indexes: direct SampleCF on their special samples.
        direct = [ix for ix in pending if ix.is_partial or ix.is_mv_index]
        for ix in direct:
            start = time.perf_counter()
            self._cache[ix] = self.runner.run(ix, self.default_fraction)
            self.timings[index_category(ix)] += time.perf_counter() - start

        plain = [ix for ix in pending if not (ix.is_partial or ix.is_mv_index)]
        if plain:
            start = time.perf_counter()
            if self.use_deduction:
                result = choose_plan(
                    plain, self._existing, self.error_model, self.sizer,
                    self.manager, e, q, self.fractions, algorithm="greedy",
                )
                plan = result.plan
            else:
                result = choose_plan(
                    plain, self._existing, self.error_model, self.sizer,
                    self.manager, e, q, (self.default_fraction,),
                    algorithm="all",
                )
                plan = result.plan
            estimates = execute_plan(
                plan, self.runner, self.deduction, self.error_model,
                self.manager, exact_size_fn=self.true_size,
            )
            for ix in plain:
                key = node_key(ix)
                if key in estimates:
                    self._cache[ix] = SizeEstimate(
                        index=ix,
                        est_bytes=estimates[key].est_bytes,
                        compression_fraction=estimates[key].compression_fraction,
                        source=estimates[key].source,
                        error=estimates[key].error,
                        cost=estimates[key].cost,
                        fraction=estimates[key].fraction,
                    )
            self.timings["table"] += time.perf_counter() - start

        return {ix: self._cache[ix] for ix in indexes}

    # ------------------------------------------------------------------
    def true_size(self, index: IndexDef) -> float:
        """Ground truth: build the structure on the FULL data and measure
        (used by experiments to quantify estimation error, and for
        existing indexes whose size the catalog would know)."""
        if index.is_mv_index or index.is_partial:
            serialized = self._full_structure_data(index)
        else:
            serialized = self._full_serialized.get(index.table)
            if serialized is None:
                serialized = SerializedTable(self.database.table(index.table))
                self._full_serialized[index.table] = serialized
        size = measure_structure(
            serialized, index.kind, index.key_columns,
            index.included_columns, index.method,
        )
        return float(size.total_bytes)

    def _full_structure_data(self, index: IndexDef) -> SerializedTable:
        """Materialize the full rows behind a partial index or MV."""
        from repro.sampling.mv_sample import build_mv_sample
        from repro.sampling.join_synopsis import build_join_synopsis

        if index.is_partial:
            table = self.database.table(index.table)
            out = table.empty_clone(f"{index.table}_full_filtered")
            names = table.column_names
            for raw in table.iter_rows():
                row = dict(zip(names, raw))
                if index.filter.evaluate(row):
                    out.append_row(raw)
            return SerializedTable(out)
        mv = index.mv
        fact = self.database.table(mv.fact_table)
        synopsis = build_join_synopsis(self.database, fact, mv.fact_table)
        sample = build_mv_sample(
            self.database, mv, synopsis, synopsis.num_rows, 1.0
        )
        return SerializedTable(sample.table)

    def reset_instrumentation(self) -> None:
        self.timings.clear()
        self.runner.reset_timings()
        self.manager.reset_timings()
